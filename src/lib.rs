//! # eclat-repro — facade crate
//!
//! One-stop re-export of the whole workspace: a faithful, production-grade
//! Rust reproduction of
//!
//! > M. J. Zaki, S. Parthasarathy, W. Li.
//! > *A Localized Algorithm for Parallel Association Mining.* SPAA 1997.
//!
//! ## Quick start
//!
//! ```
//! use eclat_repro::prelude::*;
//!
//! // 1. Generate a small Quest-style market-basket database.
//! let params = QuestParams::tiny(2_000, 42);
//! let txns = QuestGenerator::new(params).generate_all();
//! let db = HorizontalDb::from_transactions(txns);
//!
//! // 2. Mine frequent itemsets with sequential Eclat at 1 % support
//! //    (singletons included so the result is downward closed).
//! let minsup = MinSupport::from_percent(1.0);
//! let mut meter = mining_types::OpMeter::new();
//! let frequent = eclat::sequential::mine_with(
//!     &db,
//!     minsup,
//!     &eclat::EclatConfig::with_singletons(),
//!     &mut meter,
//! );
//! assert!(!frequent.is_empty());
//!
//! // 3. Turn them into association rules at 60 % confidence.
//! let rules = assoc_rules::generate(&frequent, 0.6);
//! for r in rules.iter().take(3) {
//!     println!("{r}");
//! }
//! ```
//!
//! See the crate-level docs of each member for the full story:
//!
//! * [`eclat`] — the paper's contribution (sequential, rayon-parallel,
//!   simulated-cluster, and hybrid variants, plus the clique clustering
//!   and MaxEclat companions of its reference \[18\]),
//! * [`apriori`] / [`parbase`] — the baselines it is compared against
//!   (Apriori, Count/Candidate Distribution, shared-memory CCPD, the
//!   Partition algorithm, sampling with Toivonen's negative border),
//! * [`tidlist`] — the vertical-layout intersection kernels,
//! * [`questgen`] — the IBM-Quest synthetic data generator,
//! * [`dbstore`] — horizontal/vertical layouts and the binary format,
//! * [`memchannel`] — the simulated DEC Memory Channel cluster,
//! * [`eclat_net`] — the *real* distributed runtime (coordinator/worker
//!   mining over TCP, mirroring the simulated phases),
//! * [`wire`] — the shared length-prefixed frame codec,
//! * [`assoc_rules`] — rule generation.

pub use apriori;
pub use assoc_rules;
pub use dbstore;
pub use eclat;
pub use eclat_net;
pub use eclat_seq;
pub use memchannel;
pub use mining_types;
pub use parbase;
pub use questgen;
pub use tidlist;
pub use wire;

/// Convenient glob-import of the most common types.
pub mod prelude {
    pub use crate::{apriori, assoc_rules, eclat};
    pub use dbstore::{HorizontalDb, VerticalDb};
    pub use memchannel::{ClusterConfig, CostModel};
    pub use mining_types::{ItemId, Itemset, MinSupport, Tid};
    pub use questgen::{QuestGenerator, QuestParams};
    pub use tidlist::TidList;
}
