//! Cross-variant equivalence on Quest-structured data: every Eclat
//! flavor — prefix classes, clique clusters, diffsets, rayon, plus
//! MaxEclat's frontier — must agree, under every config combination.

use dbstore::HorizontalDb;
use eclat::{EclatConfig, ScheduleHeuristic};
use mining_types::{FrequentSet, MinSupport, OpMeter};
use proptest::prelude::*;
use questgen::{QuestGenerator, QuestParams};

fn quest(d: usize, seed: u64) -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::tiny(d, seed)).generate_all())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_variants_agree_on_quest_data(seed in 0u64..1000, pct in 1.0f64..6.0) {
        let db = quest(800, seed);
        let minsup = MinSupport::from_percent(pct);
        let reference = eclat::sequential::mine(&db, minsup);

        let mut meter = OpMeter::new();
        let clique = eclat::clique::mine_with(&db, minsup, &EclatConfig::default(), &mut meter);
        prop_assert_eq!(&clique, &reference, "clique clustering");

        let par = eclat::parallel::mine(&db, minsup);
        prop_assert_eq!(&par, &reference, "rayon");

        // maximal frontier consistency
        let max = eclat::maximal::mine_maximal(&db, minsup);
        let oracle = eclat::maximal::maximal_of(&reference);
        prop_assert_eq!(&max, &oracle, "MaxEclat");
        // every frequent itemset is under some maximal one
        for (is, _) in reference.iter() {
            prop_assert!(
                max.iter().any(|(m, _)| is.is_subset_of(m)),
                "{} not covered by any maximal set", is
            );
        }
    }

    #[test]
    fn config_matrix_agrees(seed in 0u64..200, sc in any::<bool>(), prune in any::<bool>()) {
        let db = quest(500, seed);
        let minsup = MinSupport::from_percent(2.0);
        let reference = eclat::sequential::mine(&db, minsup);
        let cfg = EclatConfig {
            short_circuit: sc,
            prune,
            heuristic: ScheduleHeuristic::GreedyPairs,
            ..Default::default()
        };
        let mut meter = OpMeter::new();
        prop_assert_eq!(
            eclat::sequential::mine_with(&db, minsup, &cfg, &mut meter),
            reference
        );
    }

    #[test]
    fn buffer_size_never_changes_cluster_results(
        seed in 0u64..100,
        buffer_kb in 1u64..64,
        hosts in 1usize..4,
        ppn in 1usize..3,
    ) {
        let db = quest(400, seed);
        let minsup = MinSupport::from_percent(2.0);
        let topo = memchannel::ClusterConfig::new(hosts, ppn);
        let cost = memchannel::CostModel::dec_alpha_1997();
        let reference = eclat::sequential::mine(&db, minsup);
        let cfg = EclatConfig {
            buffer_bytes: buffer_kb * 1024,
            ..Default::default()
        };
        let rep = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg);
        prop_assert_eq!(&rep.frequent, &reference);
        // smaller buffers → at least as many exchange rounds
        prop_assert!(rep.exchange_rounds < 100_000);
    }
}

#[test]
fn smaller_exchange_buffers_mean_more_rounds() {
    let db = quest(1_500, 9);
    let minsup = MinSupport::from_percent(1.0);
    let topo = memchannel::ClusterConfig::new(4, 1);
    let cost = memchannel::CostModel::dec_alpha_1997();
    let run = |kb: u64| {
        eclat::cluster::mine_cluster(
            &db,
            minsup,
            &topo,
            &cost,
            &EclatConfig {
                buffer_bytes: kb * 1024,
                ..Default::default()
            },
        )
    };
    let small = run(2);
    let large = run(2048);
    assert_eq!(small.frequent, large.frequent);
    assert!(
        small.exchange_rounds >= large.exchange_rounds,
        "{} vs {}",
        small.exchange_rounds,
        large.exchange_rounds
    );
    // more lock-step rounds must not make the simulated time *smaller*
    // by more than noise
    assert!(small.total_secs() >= large.total_secs() * 0.99);
}

#[test]
fn support_monotonicity() {
    // Raising the threshold can only shrink the answer, and surviving
    // supports are unchanged.
    let db = quest(1_000, 4);
    let lo = eclat::sequential::mine(&db, MinSupport::from_percent(1.0));
    let hi = eclat::sequential::mine(&db, MinSupport::from_percent(3.0));
    assert!(hi.len() < lo.len());
    for (is, sup) in hi.iter() {
        assert_eq!(lo.support_of(is), Some(sup), "{is}");
    }
    let lo_threshold = MinSupport::from_percent(3.0).count_threshold(db.num_transactions());
    let surviving: FrequentSet = lo
        .iter()
        .filter(|&(_, s)| s >= lo_threshold)
        .map(|(is, s)| (is.clone(), s))
        .collect();
    assert_eq!(surviving, hi);
}
