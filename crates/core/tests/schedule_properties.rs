//! Property-based tests of the §5.2.1 class scheduler.

use eclat::schedule::{schedule_weights, Assignment, ScheduleHeuristic};
use proptest::prelude::*;

/// Reference implementation of the greedy assignment: the original
/// O(classes × procs) least-loaded scan that the `BinaryHeap` version
/// replaced. `min_by_key` returns the first minimum, i.e. the smaller
/// processor id on load ties — the paper's tie-break.
fn schedule_weights_scan(weights: &[u64], num_procs: usize) -> Assignment {
    let mut owner = vec![0usize; weights.len()];
    let mut load = vec![0u64; num_procs];
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    for c in order {
        let p = (0..num_procs).min_by_key(|&p| (load[p], p)).unwrap();
        owner[c] = p;
        load[p] += weights[c];
    }
    Assignment { owner, load }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heap_and_scan_produce_identical_assignments(
        weights in proptest::collection::vec(0u64..1000, 0..64),
        procs in 1usize..9,
    ) {
        let reference = schedule_weights_scan(&weights, procs);
        for h in [ScheduleHeuristic::GreedyPairs, ScheduleHeuristic::SupportWeighted] {
            let heap = schedule_weights(&weights, procs, h);
            prop_assert_eq!(&heap.owner, &reference.owner, "{:?}", h);
            prop_assert_eq!(&heap.load, &reference.load, "{:?}", h);
        }
    }

    #[test]
    fn every_class_assigned_and_loads_conserved(
        weights in proptest::collection::vec(0u64..10_000, 0..200),
        procs in 1usize..33,
    ) {
        for h in [ScheduleHeuristic::GreedyPairs, ScheduleHeuristic::RoundRobin, ScheduleHeuristic::SupportWeighted] {
            let a = schedule_weights(&weights, procs, h);
            prop_assert_eq!(a.owner.len(), weights.len());
            prop_assert!(a.owner.iter().all(|&p| p < procs));
            prop_assert_eq!(a.load.len(), procs);
            let total: u64 = weights.iter().sum();
            prop_assert_eq!(a.load.iter().sum::<u64>(), total, "load conservation");
            // per-proc load equals the sum of its classes' weights
            for p in 0..procs {
                let mine: u64 = a.classes_of(p).iter().map(|&c| weights[c]).sum();
                prop_assert_eq!(mine, a.load[p]);
            }
        }
    }

    #[test]
    fn greedy_respects_the_lpt_bound(
        weights in proptest::collection::vec(1u64..10_000, 1..150),
        procs in 1usize..17,
    ) {
        // Sorted-descending greedy is LPT: max load ≤ (4/3 − 1/(3m))·OPT,
        // and OPT ≥ max(w_max, total/m).
        let a = schedule_weights(&weights, procs, ScheduleHeuristic::GreedyPairs);
        let total: u64 = weights.iter().sum();
        let wmax = *weights.iter().max().unwrap();
        let opt_lower = (total as f64 / procs as f64).max(wmax as f64);
        let max_load = *a.load.iter().max().unwrap() as f64;
        let bound = (4.0 / 3.0) * opt_lower + 1.0;
        prop_assert!(
            max_load <= bound,
            "max load {max_load} exceeds LPT bound {bound} (opt_lower {opt_lower})"
        );
    }

    #[test]
    fn greedy_within_lpt_bound_of_round_robin(
        weights in proptest::collection::vec(1u64..10_000, 2..100),
        procs in 2usize..9,
    ) {
        // LPT is not *pointwise* better than round-robin (proptest found
        // counterexamples), but LPT ≤ (4/3)·OPT and OPT ≤ rr-makespan,
        // so the 4/3 bound relates the two unconditionally.
        let g = schedule_weights(&weights, procs, ScheduleHeuristic::GreedyPairs);
        let rr = schedule_weights(&weights, procs, ScheduleHeuristic::RoundRobin);
        let gm = *g.load.iter().max().unwrap() as f64;
        let rm = *rr.load.iter().max().unwrap() as f64;
        prop_assert!(gm <= rm * (4.0 / 3.0) + 1.0, "greedy {gm} vs rr {rm}");
    }

    #[test]
    fn deterministic(weights in proptest::collection::vec(0u64..1000, 0..80), procs in 1usize..9) {
        let a = schedule_weights(&weights, procs, ScheduleHeuristic::GreedyPairs);
        let b = schedule_weights(&weights, procs, ScheduleHeuristic::GreedyPairs);
        prop_assert_eq!(a, b);
    }
}
