//! The paper's distributed Eclat on the simulated Memory Channel cluster
//! (Figure 2), phase for phase:
//!
//! 1. **Initialization** — each processor scans its local block once,
//!    counts all 2-itemsets into a local upper-triangular array, and a
//!    §6.2 sum-reduction over the shared region produces global `L2`.
//! 2. **Transformation** — `L2` is partitioned into equivalence classes,
//!    scheduled greedily onto processors (§5.2.1); each processor scans
//!    its block a second time building *partial* tid-lists, broadcasts
//!    its partial counts (the offset-placement information of §6.3), and
//!    the lock-step 2 MB-buffer exchange routes every partial list to its
//!    class's owner; owners concatenate partials in processor order —
//!    lists arrive globally sorted for free — and write them to disk.
//! 3. **Asynchronous phase** — each processor reads its own vertical
//!    partition back (the third and final scan) and mines its classes
//!    independently with the recursive kernel: no communication, no
//!    synchronization.
//! 4. **Final reduction** — local result sets are aggregated.
//!
//! The real mining computation executes once per simulated processor;
//! the recorded traces replay against the cost model to produce the
//! virtual [`Timeline`] reported in Table 2 / Figure 7.

use crate::compute::EclatConfig;
use crate::equivalence::classes_of_l2;
use crate::pipeline;
use crate::schedule::{schedule_l2, Assignment};
use crate::transform::{build_pair_tidlists, count_items, count_pairs, index_pairs};
use dbstore::{BlockPartition, HorizontalDb};
use memchannel::collective::{broadcast_all, lockstep_exchange, sum_reduce, BarrierSeq};
use memchannel::{ClusterConfig, CostModel, Timeline, TraceRecorder};
use mining_types::stats::{MiningStats, PhaseStats};
use mining_types::{FrequentSet, ItemId, MinSupport, OpMeter};
use tidlist::TidList;

pub use crate::pipeline::{PHASE_ASYNC, PHASE_INIT, PHASE_REDUCE, PHASE_TRANSFORM};

/// Result of a simulated cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// The mined frequent itemsets (identical to sequential Eclat's).
    pub frequent: FrequentSet,
    /// The replayed virtual timeline.
    pub timeline: Timeline,
    /// The class→processor assignment used.
    pub assignment: Assignment,
    /// Write/read rounds of the lock-step exchange.
    pub exchange_rounds: usize,
    /// Number of frequent 2-itemsets (the scheduling input size).
    pub num_l2: usize,
    /// The structured stats report (same schema as live runs, plus the
    /// per-processor cluster split; phase seconds are simulated).
    pub stats: MiningStats,
}

impl ClusterReport {
    /// Total virtual execution time in seconds (Table 2's `Total`).
    pub fn total_secs(&self) -> f64 {
        self.timeline.total_secs()
    }

    /// Initialization + transformation time in seconds (Table 2's
    /// `Setup` break-up).
    pub fn setup_secs(&self) -> f64 {
        self.timeline.phase_secs(PHASE_INIT) + self.timeline.phase_secs(PHASE_TRANSFORM)
    }
}

/// Bytes of a serialized frequent-itemset result (`k` items + support).
fn result_bytes(fs: &FrequentSet) -> u64 {
    fs.iter().map(|(is, _)| is.len() as u64 * 4 + 4).sum()
}

/// Run Eclat on the simulated cluster.
pub fn mine_cluster(
    db: &HorizontalDb,
    minsup: MinSupport,
    cluster: &ClusterConfig,
    cost: &CostModel,
    cfg: &EclatConfig,
) -> ClusterReport {
    let t = cluster.total();
    let n = db.num_transactions();
    let threshold = minsup.count_threshold(n);
    let partition = BlockPartition::equal_blocks(n, t);
    let mut recorders: Vec<TraceRecorder> = (0..t)
        .map(|p| TraceRecorder::new(p, cost.clone()))
        .collect();
    let mut barriers = BarrierSeq::new();
    let mut out = FrequentSet::new();
    let mut stats = MiningStats::new("eclat", "cluster", &cfg.representation.to_string());
    stats.transactions = n as u64;
    stats.threshold = u64::from(threshold);
    // Per-phase op totals, merged across the per-processor meters (the
    // blocks partition the database, so the merged counts equal a
    // sequential run's).
    let mut init_ops = OpMeter::new();
    let mut transform_ops = OpMeter::new();
    let mut async_ops = OpMeter::new();

    // ---------------- Initialization phase ----------------
    let mut global_tri: Option<mining_types::TriangleMatrix> = None;
    for (p, rec) in recorders.iter_mut().enumerate() {
        rec.phase(PHASE_INIT);
        let block = partition.block(p);
        rec.disk_read(db.byte_size_range(block.clone()));
        let mut meter = OpMeter::new();
        let tri = count_pairs(db, block.clone(), &mut meter);
        if cfg.include_singletons {
            // Piggybacked singleton counting: meter its per-block cost
            // here; the counts themselves are assembled once below.
            let _ = count_items(db, block, &mut meter);
        }
        rec.compute(&meter);
        init_ops.merge(&meter);
        match &mut global_tri {
            Some(g) => g.merge_from(&tri),
            None => global_tri = Some(tri),
        }
    }
    let global_tri = global_tri.expect("at least one processor");
    // §6.2 sum-reduction of the triangular arrays.
    let tri_bytes = (global_tri.cells() as u64) * 4;
    sum_reduce(
        &mut recorders,
        &vec![tri_bytes; t],
        tri_bytes,
        &mut barriers,
    );

    let l2: Vec<(ItemId, ItemId, u32)> = global_tri.frequent_pairs(threshold).collect();
    let num_l2 = l2.len();
    stats.record_level(2, global_tri.cells() as u64, num_l2 as u64);

    if cfg.include_singletons {
        // The per-block cost was already metered above; the assembled
        // global counts are not charged twice.
        let (counted, inserted) =
            pipeline::insert_frequent_singletons(db, threshold, &mut OpMeter::new(), &mut out);
        stats.record_level(1, counted, inserted);
    }

    if l2.is_empty() {
        // Nothing to transform or mine; close out the trace.
        for rec in &mut recorders {
            rec.phase(PHASE_REDUCE);
        }
        let bytes = result_bytes(&out);
        sum_reduce(&mut recorders, &vec![0; t], bytes, &mut barriers);
        let traces: Vec<_> = recorders.into_iter().map(|r| r.finish()).collect();
        let timeline = memchannel::des::replay(cluster, cost, &traces);
        for (label, ops) in [(PHASE_INIT, init_ops), (PHASE_REDUCE, OpMeter::new())] {
            stats.phases.push(PhaseStats {
                label: label.to_string(),
                secs: timeline.phase_secs(label),
                ops,
            });
        }
        stats.num_frequent = out.len() as u64;
        stats.total_ops = init_ops;
        stats.cluster = Some(memchannel::stats::cluster_stats(&timeline, &traces));
        return ClusterReport {
            frequent: out,
            timeline,
            assignment: Assignment {
                owner: vec![],
                load: vec![0; t],
            },
            exchange_rounds: 0,
            num_l2: 0,
            stats,
        };
    }

    // ---------------- Transformation phase ----------------
    // Equivalence-class scheduling (concurrent on all processors in the
    // paper — each works from the same global L2, so we compute it once).
    let pairs_only: Vec<(ItemId, ItemId)> = l2.iter().map(|&(a, b, _)| (a, b)).collect();
    let plan = schedule_l2(&l2, t, cfg.heuristic);
    let assignment = plan.assignment;
    let slot_owner = plan.slot_owner;

    let idx = index_pairs(&pairs_only);
    // Per-processor partial tid-lists, and the trace of the second scan.
    let mut partials: Vec<Vec<TidList>> = Vec::with_capacity(t);
    for (p, rec) in recorders.iter_mut().enumerate() {
        rec.phase(PHASE_TRANSFORM);
        let block = partition.block(p);
        rec.disk_read(db.byte_size_range(block.clone()));
        let mut meter = OpMeter::new();
        let lists = build_pair_tidlists(db, block, &idx, &mut meter);
        rec.compute(&meter);
        transform_ops.merge(&meter);
        // Local tid-list transformation: write every partial list into
        // the memory-mapped region at its offset (§6.3).
        let local_bytes: u64 = lists.iter().map(|l| l.byte_size()).sum();
        rec.local_copy(local_bytes);
        partials.push(lists);
    }
    // Broadcast of partial counts (offset-placement info, §6.2 end).
    let count_bytes = (num_l2 as u64) * 4;
    broadcast_all(&mut recorders, &vec![count_bytes; t], &mut barriers);

    // Outgoing byte matrix for the lock-step exchange.
    let outgoing: Vec<Vec<u64>> = (0..t)
        .map(|p| {
            (0..t)
                .map(|q| {
                    if p == q {
                        0
                    } else {
                        (0..pairs_only.len())
                            .filter(|&s| slot_owner[s] == q)
                            .map(|s| partials[p][s].byte_size())
                            .sum()
                    }
                })
                .collect()
        })
        .collect();
    let exchange_rounds =
        lockstep_exchange(&mut recorders, &outgoing, cfg.buffer_bytes, &mut barriers);

    // Concatenate partials in processor order → global tid-lists, owned
    // per processor; write them to local disk.
    let mut owned_lists: Vec<Vec<(usize, TidList)>> = vec![Vec::new(); t];
    for (s, &owner) in slot_owner.iter().enumerate() {
        let mut global = TidList::new();
        for part in partials.iter() {
            global.append_partial(&part[s]);
        }
        debug_assert!(global.support() >= threshold);
        owned_lists[owner].push((s, global));
    }
    for (p, rec) in recorders.iter_mut().enumerate() {
        let bytes: u64 = owned_lists[p].iter().map(|(_, l)| 4 + l.byte_size()).sum();
        if bytes > 0 {
            rec.disk_write(bytes);
        }
    }
    drop(partials);

    // ---------------- Asynchronous phase ----------------
    let mut local_results: Vec<FrequentSet> = Vec::with_capacity(t);
    for p in 0..t {
        let rec = &mut recorders[p];
        rec.phase(PHASE_ASYNC);
        let bytes: u64 = owned_lists[p].iter().map(|(_, l)| 4 + l.byte_size()).sum();
        if bytes > 0 {
            rec.disk_read(bytes);
        }
        let mut meter = OpMeter::new();
        // owned slots grouped into complete classes (scheduling is
        // class-granular, so a class's slots share one owner)
        let slots = std::mem::take(&mut owned_lists[p]);
        let pairs_with_lists: Vec<(ItemId, ItemId, TidList)> = slots
            .into_iter()
            .map(|(s, l)| (pairs_only[s].0, pairs_only[s].1, l))
            .collect();
        let (local, class_stats) =
            pipeline::mine_classes(classes_of_l2(pairs_with_lists), threshold, cfg, &mut meter);
        rec.compute(&meter);
        async_ops.merge(&meter);
        for cs in class_stats {
            stats.add_class(cs);
        }
        local_results.push(local);
    }

    // ---------------- Final reduction phase ----------------
    let result_sizes: Vec<u64> = local_results.iter().map(result_bytes).collect();
    let total_result: u64 = result_sizes.iter().sum();
    for rec in recorders.iter_mut() {
        rec.phase(PHASE_REDUCE);
    }
    sum_reduce(&mut recorders, &result_sizes, total_result, &mut barriers);
    for local in local_results {
        out.merge(local);
    }

    let traces: Vec<_> = recorders.into_iter().map(|r| r.finish()).collect();
    let timeline = memchannel::des::replay(cluster, cost, &traces);
    let mut total_ops = init_ops;
    total_ops.merge(&transform_ops);
    total_ops.merge(&async_ops);
    for (label, ops) in [
        (PHASE_INIT, init_ops),
        (PHASE_TRANSFORM, transform_ops),
        (PHASE_ASYNC, async_ops),
        (PHASE_REDUCE, OpMeter::new()),
    ] {
        stats.phases.push(PhaseStats {
            label: label.to_string(),
            secs: timeline.phase_secs(label),
            ops,
        });
    }
    stats.sort_classes();
    stats.num_frequent = out.len() as u64;
    stats.total_ops = total_ops;
    stats.cluster = Some(memchannel::stats::cluster_stats(&timeline, &traces));
    ClusterReport {
        frequent: out,
        timeline,
        assignment,
        exchange_rounds,
        num_l2,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use apriori::reference::random_db;

    fn cost() -> CostModel {
        CostModel::dec_alpha_1997()
    }

    #[test]
    fn cluster_matches_sequential_on_every_topology() {
        let db = random_db(4, 240, 14, 6);
        let minsup = MinSupport::from_percent(5.0);
        let expect = sequential::mine(&db, minsup);
        for (h, p) in [(1, 1), (2, 1), (1, 4), (2, 2), (4, 2), (3, 3)] {
            let report = mine_cluster(
                &db,
                minsup,
                &ClusterConfig::new(h, p),
                &cost(),
                &EclatConfig::default(),
            );
            assert_eq!(report.frequent, expect, "H={h} P={p}");
            assert!(report.total_secs() > 0.0);
        }
    }

    #[test]
    fn phases_appear_in_the_timeline() {
        let db = random_db(1, 200, 12, 6);
        let minsup = MinSupport::from_percent(6.0);
        let report = mine_cluster(
            &db,
            minsup,
            &ClusterConfig::new(2, 2),
            &cost(),
            &EclatConfig::default(),
        );
        let tl = &report.timeline;
        for phase in [PHASE_INIT, PHASE_TRANSFORM, PHASE_ASYNC, PHASE_REDUCE] {
            assert!(
                tl.phase_ns(phase) > 0.0,
                "phase {phase} missing from timeline"
            );
        }
        assert!(report.setup_secs() > 0.0);
        assert!(report.setup_secs() < report.total_secs());
        assert!(report.num_l2 > 0);
    }

    #[test]
    fn more_processors_do_not_change_results_but_speed_up_async() {
        let db = random_db(9, 400, 14, 6);
        let minsup = MinSupport::from_percent(4.0);
        let seq = mine_cluster(
            &db,
            minsup,
            &ClusterConfig::sequential(),
            &cost(),
            &EclatConfig::default(),
        );
        let par = mine_cluster(
            &db,
            minsup,
            &ClusterConfig::new(4, 1),
            &cost(),
            &EclatConfig::default(),
        );
        assert_eq!(seq.frequent, par.frequent);
        assert!(
            par.timeline.phase_ns(PHASE_ASYNC) <= seq.timeline.phase_ns(PHASE_ASYNC),
            "async phase must not slow down with more hosts"
        );
    }

    #[test]
    fn singletons_supported() {
        let db = random_db(2, 150, 10, 5);
        let minsup = MinSupport::from_percent(8.0);
        let report = mine_cluster(
            &db,
            minsup,
            &ClusterConfig::new(2, 1),
            &cost(),
            &EclatConfig::with_singletons(),
        );
        let ap = apriori::mine(&db, minsup);
        assert_eq!(report.frequent, ap);
    }

    #[test]
    fn no_frequent_pairs_terminates_cleanly() {
        let db = dbstore::HorizontalDb::of(&[&[0, 1], &[2, 3], &[4, 5]]);
        let report = mine_cluster(
            &db,
            MinSupport::from_fraction(0.6),
            &ClusterConfig::new(2, 1),
            &cost(),
            &EclatConfig::default(),
        );
        assert!(report.frequent.is_empty());
        assert_eq!(report.num_l2, 0);
    }

    #[test]
    fn representations_agree_on_the_cluster() {
        use crate::compute::Representation;
        let db = random_db(8, 180, 12, 6);
        let minsup = MinSupport::from_percent(6.0);
        let expect = sequential::mine(&db, minsup);
        for repr in [
            Representation::Diffset,
            Representation::AutoSwitch { depth: 2 },
        ] {
            let report = mine_cluster(
                &db,
                minsup,
                &ClusterConfig::new(2, 2),
                &cost(),
                &EclatConfig::with_representation(repr),
            );
            assert_eq!(report.frequent, expect, "{repr:?}");
        }
    }

    #[test]
    fn cluster_stats_match_sequential_stats() {
        let db = random_db(6, 220, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let cfg = EclatConfig::default();
        let (_, seq) = pipeline::run_stats(
            &db,
            minsup,
            &cfg,
            &mut OpMeter::new(),
            &pipeline::Serial,
            "sequential",
        );
        let report = mine_cluster(&db, minsup, &ClusterConfig::new(2, 2), &cost(), &cfg);
        let stats = &report.stats;
        assert_eq!(stats.variant, "cluster");
        // The cluster partitions the same work: merged levels, per-class
        // kernels, and totals all match the sequential report.
        assert_eq!(stats.levels, seq.levels);
        assert_eq!(stats.classes, seq.classes);
        assert_eq!(stats.kernel_totals(), seq.kernel_totals());
        assert_eq!(stats.num_frequent, seq.num_frequent);
        let labels: Vec<&str> = stats.phases.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![PHASE_INIT, PHASE_TRANSFORM, PHASE_ASYNC, PHASE_REDUCE]
        );
        // Phase seconds come from the simulated timeline, not wall clock.
        for p in &stats.phases {
            assert!(p.secs > 0.0, "phase {} has no simulated time", p.label);
        }
        let cs = stats.cluster.as_ref().expect("cluster split present");
        assert_eq!(cs.procs.len(), 4);
        assert!(cs.load_imbalance >= 1.0);
        assert!((cs.total_secs - report.total_secs()).abs() < 1e-9);
        assert!(cs.procs.iter().any(|p| p.bytes_sent > 0));
    }

    #[test]
    fn empty_l2_report_still_carries_stats() {
        let db = dbstore::HorizontalDb::of(&[&[0, 1], &[2, 3], &[4, 5]]);
        let report = mine_cluster(
            &db,
            MinSupport::from_fraction(0.6),
            &ClusterConfig::new(2, 1),
            &cost(),
            &EclatConfig::with_singletons(),
        );
        let stats = &report.stats;
        assert_eq!(stats.num_frequent, report.frequent.len() as u64);
        let labels: Vec<&str> = stats.phases.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec![PHASE_INIT, PHASE_REDUCE]);
        assert!(stats.levels.iter().any(|l| l.size == 1));
        assert!(stats.cluster.is_some());
    }

    #[test]
    fn determinism() {
        let db = random_db(5, 200, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let run = || {
            mine_cluster(
                &db,
                minsup,
                &ClusterConfig::new(2, 2),
                &cost(),
                &EclatConfig::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.frequent, b.frequent);
        assert_eq!(a.timeline, b.timeline);
    }
}
