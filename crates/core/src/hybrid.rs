//! Hybrid parallelization — the paper's §8.1/§9 future work, implemented.
//!
//! *"To solve the local disk contention problem, we plan to … implement a
//! hybrid parallelization where the database is partitioned only among
//! the hosts. Within each host … the Compute_Frequent procedure could be
//! carried out in parallel."*
//!
//! Differences from [`crate::cluster`]:
//!
//! * the database is block-partitioned into `H` host blocks, not `T`
//!   processor blocks; within a host, the `P` processors scan disjoint
//!   *sub-ranges* of the host block, so the host disk serves the same
//!   total bytes but the per-transaction CPU work is spread over `P`
//!   processors;
//! * equivalence classes are scheduled onto *hosts*; inside a host they
//!   are re-balanced over the local processors (LPT on the same weights),
//!   so intra-host sharing needs no Memory Channel traffic at all;
//! * only host leaders (the first processor of each host) participate in
//!   the tid-list exchange — cross-host bytes drop accordingly.

use crate::compute::EclatConfig;
use crate::equivalence::classes_of_l2;
use crate::schedule::{schedule_weights, shard_classes, Assignment};
use crate::transform::{build_pair_tidlists, count_pairs, index_pairs};
use dbstore::{BlockPartition, HorizontalDb};
use memchannel::collective::{broadcast_all, lockstep_exchange, sum_reduce, BarrierSeq};
use memchannel::{ClusterConfig, CostModel, TraceRecorder, BROADCAST};
use mining_types::stats::{MiningStats, PhaseStats};
use mining_types::{FrequentSet, ItemId, MinSupport, OpMeter};
use tidlist::TidList;

use crate::cluster::{ClusterReport, PHASE_ASYNC, PHASE_INIT, PHASE_REDUCE, PHASE_TRANSFORM};

/// Run hybrid Eclat: host-level partitioning + intra-host work sharing.
pub fn mine_hybrid(
    db: &HorizontalDb,
    minsup: MinSupport,
    cluster: &ClusterConfig,
    cost: &CostModel,
    cfg: &EclatConfig,
) -> ClusterReport {
    let t = cluster.total();
    let h = cluster.hosts;
    let ppn = cluster.procs_per_host;
    let n = db.num_transactions();
    let threshold = minsup.count_threshold(n);
    let host_partition = BlockPartition::equal_blocks(n, h);
    let mut recorders: Vec<TraceRecorder> = (0..t)
        .map(|p| TraceRecorder::new(p, cost.clone()))
        .collect();
    let mut barriers = BarrierSeq::new();
    let mut out = FrequentSet::new();
    let mut stats = MiningStats::new("eclat", "hybrid", &cfg.representation.to_string());
    stats.transactions = n as u64;
    stats.threshold = u64::from(threshold);
    let mut init_ops = OpMeter::new();
    let mut transform_ops = OpMeter::new();
    let mut async_ops = OpMeter::new();

    // ---------------- Initialization ----------------
    // Each host's block is sub-split across its processors; every
    // processor reads and counts its own sub-range.
    let mut global_tri: Option<mining_types::TriangleMatrix> = None;
    for host in 0..h {
        let hb = host_partition.block(host);
        let sub = BlockPartition::equal_blocks(hb.len(), ppn);
        for (local, p) in cluster.procs_on_host(host).enumerate() {
            let rec = &mut recorders[p];
            rec.phase(PHASE_INIT);
            let r = sub.block(local);
            let range = hb.start + r.start..hb.start + r.end;
            rec.disk_read(db.byte_size_range(range.clone()));
            let mut meter = OpMeter::new();
            let tri = count_pairs(db, range, &mut meter);
            rec.compute(&meter);
            init_ops.merge(&meter);
            match &mut global_tri {
                Some(g) => g.merge_from(&tri),
                None => global_tri = Some(tri),
            }
        }
    }
    let global_tri = global_tri.expect("non-empty cluster");
    let tri_bytes = (global_tri.cells() as u64) * 4;
    // Only host leaders push partial arrays over the Memory Channel;
    // intra-host merging is shared memory (modelled as local copies).
    {
        let id = barriers.next_id();
        for host in 0..h {
            for (local, p) in cluster.procs_on_host(host).enumerate() {
                let rec = &mut recorders[p];
                if local == 0 {
                    // leader merges P-1 local arrays then broadcasts
                    rec.local_copy(tri_bytes * (ppn as u64 - 1));
                    rec.send_tagged(BROADCAST, tri_bytes, id);
                }
                rec.barrier(id);
                rec.local_copy(tri_bytes);
            }
        }
    }

    let l2: Vec<(ItemId, ItemId, u32)> = global_tri.frequent_pairs(threshold).collect();
    let num_l2 = l2.len();
    stats.record_level(2, global_tri.cells() as u64, num_l2 as u64);
    if l2.is_empty() {
        for rec in &mut recorders {
            rec.phase(PHASE_REDUCE);
        }
        sum_reduce(&mut recorders, &vec![0; t], 0, &mut barriers);
        let traces: Vec<_> = recorders.into_iter().map(|r| r.finish()).collect();
        let timeline = memchannel::des::replay(cluster, cost, &traces);
        for (label, ops) in [(PHASE_INIT, init_ops), (PHASE_REDUCE, OpMeter::new())] {
            stats.phases.push(PhaseStats {
                label: label.to_string(),
                secs: timeline.phase_secs(label),
                ops,
            });
        }
        stats.num_frequent = out.len() as u64;
        stats.total_ops = init_ops;
        stats.cluster = Some(memchannel::stats::cluster_stats(&timeline, &traces));
        return ClusterReport {
            frequent: out,
            timeline,
            assignment: Assignment {
                owner: vec![],
                load: vec![0; h],
            },
            exchange_rounds: 0,
            num_l2: 0,
            stats,
        };
    }

    // ---------------- Transformation ----------------
    let pairs_only: Vec<(ItemId, ItemId)> = l2.iter().map(|&(a, b, _)| (a, b)).collect();
    let mut class_ranges: Vec<std::ops::Range<usize>> = Vec::new();
    {
        let mut start = 0usize;
        for i in 1..=pairs_only.len() {
            if i == pairs_only.len() || pairs_only[i].0 != pairs_only[start].0 {
                class_ranges.push(start..i);
                start = i;
            }
        }
    }
    let weights: Vec<u64> = class_ranges
        .iter()
        .map(|r| mining_types::itemset::choose2(r.len()))
        .collect();
    // Schedule classes to HOSTS.
    let host_assignment = schedule_weights(&weights, h, cfg.heuristic);
    let mut slot_host = vec![0usize; pairs_only.len()];
    for (ci, r) in class_ranges.iter().enumerate() {
        for s in r.clone() {
            slot_host[s] = host_assignment.owner[ci];
        }
    }

    let idx = index_pairs(&pairs_only);
    // Per-host partial tid-lists; each processor builds its sub-range and
    // the host leader stitches them (tid order = processor order within
    // the host block).
    let mut host_partials: Vec<Vec<TidList>> = Vec::with_capacity(h);
    for host in 0..h {
        let hb = host_partition.block(host);
        let sub = BlockPartition::equal_blocks(hb.len(), ppn);
        let mut merged: Vec<TidList> = vec![TidList::new(); pairs_only.len()];
        for (local, p) in cluster.procs_on_host(host).enumerate() {
            let rec = &mut recorders[p];
            rec.phase(PHASE_TRANSFORM);
            let r = sub.block(local);
            let range = hb.start + r.start..hb.start + r.end;
            rec.disk_read(db.byte_size_range(range.clone()));
            let mut meter = OpMeter::new();
            let lists = build_pair_tidlists(db, range, &idx, &mut meter);
            rec.compute(&meter);
            transform_ops.merge(&meter);
            let bytes: u64 = lists.iter().map(|l| l.byte_size()).sum();
            rec.local_copy(bytes);
            for (slot, part) in lists.into_iter().enumerate() {
                merged[slot].append_partial(&part);
            }
        }
        host_partials.push(merged);
    }
    broadcast_all(&mut recorders, &vec![(num_l2 as u64) * 4; t], &mut barriers);

    // Exchange between host leaders only. Build a leader-level byte
    // matrix; non-leader recorders just hit the same barriers.
    let leader_of = |host: usize| host * ppn;
    let outgoing_host: Vec<Vec<u64>> = (0..h)
        .map(|src| {
            (0..h)
                .map(|dst| {
                    if src == dst {
                        0
                    } else {
                        (0..pairs_only.len())
                            .filter(|&s| slot_host[s] == dst)
                            .map(|s| host_partials[src][s].byte_size())
                            .sum()
                    }
                })
                .collect()
        })
        .collect();
    // Expand to the processor-indexed matrix expected by the collective:
    // leaders carry host traffic, everyone else zero.
    let outgoing: Vec<Vec<u64>> = (0..t)
        .map(|p| {
            let mut row = vec![0u64; t];
            if p % ppn == 0 {
                let src = p / ppn;
                for dst in 0..h {
                    row[leader_of(dst)] = outgoing_host[src][dst];
                }
            }
            row
        })
        .collect();
    let exchange_rounds =
        lockstep_exchange(&mut recorders, &outgoing, cfg.buffer_bytes, &mut barriers);

    // Assemble global tid-lists per owning host, write to its disk
    // (leader does the write).
    let mut host_lists: Vec<Vec<(usize, TidList)>> = vec![Vec::new(); h];
    for (s, &owner) in slot_host.iter().enumerate() {
        let mut global = TidList::new();
        for partials in &host_partials {
            global.append_partial(&partials[s]);
        }
        host_lists[owner].push((s, global));
    }
    for (host, lists) in host_lists.iter().enumerate() {
        let bytes: u64 = lists.iter().map(|(_, l)| 4 + l.byte_size()).sum();
        if bytes > 0 {
            recorders[leader_of(host)].disk_write(bytes);
        }
    }
    drop(host_partials);

    // ---------------- Asynchronous phase ----------------
    // Within each host, the host's classes are LPT-balanced over its
    // processors; the shared class queue needs no MC traffic.
    let mut local_results: Vec<FrequentSet> = Vec::new();
    for (host, lists) in host_lists.iter_mut().enumerate() {
        let slots = std::mem::take(lists);
        let pairs_with_lists: Vec<(ItemId, ItemId, TidList)> = slots
            .into_iter()
            .map(|(s, l)| (pairs_only[s].0, pairs_only[s].1, l))
            .collect();
        let classes = classes_of_l2(pairs_with_lists);
        // Intra-host re-balance: the same LPT cost model as the host
        // schedule, applied at processor granularity (shared with the
        // TCP worker's in-host thread sharding).
        let shards = shard_classes(&classes, ppn, cfg.heuristic);
        let mut slots: Vec<Option<crate::equivalence::EquivalenceClass>> =
            classes.into_iter().map(Some).collect();
        for (local, p) in cluster.procs_on_host(host).enumerate() {
            let rec = &mut recorders[p];
            rec.phase(PHASE_ASYNC);
            let my_classes: Vec<crate::equivalence::EquivalenceClass> = shards[local]
                .iter()
                .map(|&ci| slots[ci].take().expect("each class is mined exactly once"))
                .collect();
            let bytes: u64 = my_classes.iter().map(|c| c.byte_size()).sum();
            if bytes > 0 {
                rec.disk_read(bytes);
            }
            let mut meter = OpMeter::new();
            let (local_out, class_stats) =
                crate::pipeline::mine_classes(my_classes, threshold, cfg, &mut meter);
            rec.compute(&meter);
            async_ops.merge(&meter);
            for cs in class_stats {
                stats.add_class(cs);
            }
            local_results.push(local_out);
        }
    }

    // ---------------- Final reduction ----------------
    let sizes: Vec<u64> = local_results
        .iter()
        .map(|fs| fs.iter().map(|(is, _)| is.len() as u64 * 4 + 4).sum())
        .collect();
    let total: u64 = sizes.iter().sum();
    for rec in recorders.iter_mut() {
        rec.phase(PHASE_REDUCE);
    }
    sum_reduce(&mut recorders, &sizes, total, &mut barriers);
    for fs in local_results {
        out.merge(fs);
    }

    let traces: Vec<_> = recorders.into_iter().map(|r| r.finish()).collect();
    let timeline = memchannel::des::replay(cluster, cost, &traces);
    let mut total_ops = init_ops;
    total_ops.merge(&transform_ops);
    total_ops.merge(&async_ops);
    for (label, ops) in [
        (PHASE_INIT, init_ops),
        (PHASE_TRANSFORM, transform_ops),
        (PHASE_ASYNC, async_ops),
        (PHASE_REDUCE, OpMeter::new()),
    ] {
        stats.phases.push(PhaseStats {
            label: label.to_string(),
            secs: timeline.phase_secs(label),
            ops,
        });
    }
    stats.sort_classes();
    stats.num_frequent = out.len() as u64;
    stats.total_ops = total_ops;
    stats.cluster = Some(memchannel::stats::cluster_stats(&timeline, &traces));
    ClusterReport {
        frequent: out,
        timeline,
        assignment: host_assignment,
        exchange_rounds,
        num_l2,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::mine_cluster;
    use crate::sequential;
    use apriori::reference::random_db;

    fn cost() -> CostModel {
        CostModel::dec_alpha_1997()
    }

    #[test]
    fn hybrid_matches_sequential() {
        let db = random_db(6, 300, 14, 6);
        let minsup = MinSupport::from_percent(4.0);
        let expect = sequential::mine(&db, minsup);
        for (hh, pp) in [(1, 1), (2, 2), (1, 4), (2, 3)] {
            let report = mine_hybrid(
                &db,
                minsup,
                &ClusterConfig::new(hh, pp),
                &cost(),
                &EclatConfig::default(),
            );
            assert_eq!(report.frequent, expect, "H={hh} P={pp}");
        }
    }

    #[test]
    fn hybrid_beats_flat_cluster_with_many_procs_per_host() {
        // The whole point: with P=4 on one host the flat variant pays 4×
        // disk contention on the same block; hybrid reads each byte once.
        let db = random_db(3, 600, 14, 6);
        let minsup = MinSupport::from_percent(3.0);
        let topo = ClusterConfig::new(2, 4);
        let flat = mine_cluster(&db, minsup, &topo, &cost(), &EclatConfig::default());
        let hybrid = mine_hybrid(&db, minsup, &topo, &cost(), &EclatConfig::default());
        assert_eq!(flat.frequent, hybrid.frequent);
        assert!(
            hybrid.total_secs() < flat.total_secs(),
            "hybrid {} >= flat {}",
            hybrid.total_secs(),
            flat.total_secs()
        );
    }

    #[test]
    fn hybrid_with_single_proc_per_host_similar_to_flat() {
        let db = random_db(8, 300, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let topo = ClusterConfig::new(3, 1);
        let flat = mine_cluster(&db, minsup, &topo, &cost(), &EclatConfig::default());
        let hybrid = mine_hybrid(&db, minsup, &topo, &cost(), &EclatConfig::default());
        assert_eq!(flat.frequent, hybrid.frequent);
        // with P=1 the two algorithms are structurally the same; times
        // should be within a small factor
        let ratio = hybrid.total_secs() / flat.total_secs();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hybrid_stats_match_sequential_stats() {
        let db = random_db(11, 240, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let cfg = EclatConfig::default();
        let (_, seq) = crate::pipeline::run_stats(
            &db,
            minsup,
            &cfg,
            &mut OpMeter::new(),
            &crate::pipeline::Serial,
            "sequential",
        );
        let report = mine_hybrid(&db, minsup, &ClusterConfig::new(2, 2), &cost(), &cfg);
        let stats = &report.stats;
        assert_eq!(stats.variant, "hybrid");
        assert_eq!(stats.levels, seq.levels);
        assert_eq!(stats.classes, seq.classes);
        assert_eq!(stats.kernel_totals(), seq.kernel_totals());
        assert_eq!(stats.num_frequent, seq.num_frequent);
        let cs = stats.cluster.as_ref().expect("cluster split present");
        assert_eq!(cs.procs.len(), 4);
    }

    #[test]
    fn no_frequent_pairs() {
        let db = dbstore::HorizontalDb::of(&[&[0, 1], &[2, 3], &[4, 5]]);
        let report = mine_hybrid(
            &db,
            MinSupport::from_fraction(0.6),
            &ClusterConfig::new(2, 2),
            &cost(),
            &EclatConfig::default(),
        );
        assert!(report.frequent.is_empty());
    }
}
