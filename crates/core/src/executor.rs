//! Generic task execution under the pipeline's policies.
//!
//! [`ExecutionPolicy`](crate::pipeline::ExecutionPolicy) is deliberately
//! concrete — its two methods speak `HorizontalDb` and tid-list
//! `EquivalenceClass`es, and the pipeline holds it as a trait object.
//! Other workloads (the SPADE sequence miner in `eclat-seq`) want the
//! *scheduling behaviour* of the three policies without those types:
//! "here are `n` independent weighted tasks, run them and give me the
//! results back in task order".
//!
//! [`TaskExecutor`] is that surface. It is implemented for the same
//! three policy types ([`Serial`], [`Rayon`], [`FixedThreads`]), with
//! the same semantics the pipeline pins for itemset classes:
//!
//! * results come back **in task order**, whatever the schedule, so
//!   parallel runs are byte-identical to serial ones;
//! * [`FixedThreads`] splits tasks over exactly `P` scoped OS threads by
//!   the paper's §5.2.1 greedy least-loaded rule
//!   ([`schedule_weights`]) on the caller-supplied weights;
//! * [`Rayon`] uses one task per work item (the vendored rayon's
//!   order-preserving `collect`).

use crate::pipeline::{FixedThreads, Rayon, Serial};
use crate::schedule::{schedule_weights, ScheduleHeuristic};
use rayon::prelude::*;
use std::sync::Mutex;

/// Run independent tasks under a policy, returning results in task
/// order. `weights[i]` is the load estimate for `tasks[i]` (the §5.2.1
/// class weight — only [`FixedThreads`] consults it).
pub trait TaskExecutor {
    /// Apply `f` to every task; `f(i, task)` receives the task's index.
    fn run_tasks<T, R, F>(
        &self,
        tasks: Vec<T>,
        weights: &[u64],
        heuristic: ScheduleHeuristic,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync;
}

impl TaskExecutor for Serial {
    fn run_tasks<T, R, F>(
        &self,
        tasks: Vec<T>,
        _weights: &[u64],
        _heuristic: ScheduleHeuristic,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect()
    }
}

impl TaskExecutor for Rayon {
    fn run_tasks<T, R, F>(
        &self,
        tasks: Vec<T>,
        _weights: &[u64],
        _heuristic: ScheduleHeuristic,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let indexed: Vec<(usize, T)> = tasks.into_iter().enumerate().collect();
        indexed.into_par_iter().map(|(i, t)| f(i, t)).collect()
    }
}

impl TaskExecutor for FixedThreads {
    fn run_tasks<T, R, F>(
        &self,
        tasks: Vec<T>,
        weights: &[u64],
        heuristic: ScheduleHeuristic,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        assert_eq!(
            tasks.len(),
            weights.len(),
            "one weight per task (got {} tasks, {} weights)",
            tasks.len(),
            weights.len()
        );
        let assignment = schedule_weights(weights, self.threads(), heuristic);
        let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads())
                .map(|p| {
                    let ids = assignment.classes_of(p);
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move || {
                        ids.into_iter()
                            .map(|i| {
                                let t = slots[i]
                                    .lock()
                                    .expect("task slot poisoned")
                                    .take()
                                    .expect("each task is fetched exactly once");
                                (i, f(i, t))
                            })
                            .collect::<Vec<(usize, R)>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("task thread panicked"))
                .collect()
        });
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_all(exec: &impl TaskExecutor, n: u64) -> Vec<u64> {
        let tasks: Vec<u64> = (0..n).collect();
        let weights: Vec<u64> = tasks.iter().map(|&t| t + 1).collect();
        exec.run_tasks(tasks, &weights, ScheduleHeuristic::GreedyPairs, |i, t| {
            assert_eq!(i as u64, t, "task index lines up with the task");
            t * t
        })
    }

    #[test]
    fn all_policies_preserve_task_order() {
        let expect: Vec<u64> = (0..37).map(|t| t * t).collect();
        assert_eq!(square_all(&Serial, 37), expect);
        assert_eq!(square_all(&Rayon, 37), expect);
        for p in [1, 2, 3, 8] {
            assert_eq!(square_all(&FixedThreads::new(p), 37), expect, "P={p}");
        }
    }

    #[test]
    fn empty_task_list_is_fine() {
        let none: Vec<u64> =
            Serial.run_tasks(Vec::new(), &[], ScheduleHeuristic::GreedyPairs, |_, t| t);
        assert!(none.is_empty());
        let none: Vec<u64> = FixedThreads::new(4).run_tasks(
            Vec::new(),
            &[],
            ScheduleHeuristic::GreedyPairs,
            |_, t| t,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn fixed_threads_runs_every_task_once() {
        let counter = std::sync::atomic::AtomicU64::new(0);
        let tasks: Vec<u64> = (0..100).collect();
        let weights = vec![1u64; 100];
        let out = FixedThreads::new(7).run_tasks(
            tasks,
            &weights,
            ScheduleHeuristic::RoundRobin,
            |_, t| {
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                t
            },
        );
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 100);
    }
}
