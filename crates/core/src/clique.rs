//! Maximal-clique itemset clustering — the refinement of the prefix-based
//! equivalence classes introduced in the paper's reference \[18\] (Zaki,
//! Parthasarathy, Ogihara & Li, *New algorithms for fast discovery of
//! association rules*, URCS TR 651), whose "efficient itemset clustering"
//! §1.2 points to.
//!
//! View `L2` as a graph: vertices are frequent items, edges the frequent
//! 2-itemsets. A prefix class `[a]` over-approximates the sub-lattice
//! reachable from `a`: it joins `ab` with `ac` even when `bc` is not
//! frequent, producing candidates doomed by downward closure. A
//! **maximal clique** of the neighborhood of `a` is a *tight* cluster —
//! every pair inside it is frequent — so candidates generated within a
//! clique pass full pairwise pruning by construction.
//!
//! [`clique_clusters`] refines each prefix class into the maximal cliques
//! of its induced subgraph (Bron–Kerbosch with pivoting; class
//! neighborhoods are small at realistic supports), and
//! [`mine_class_cliques`] mines each clique with the ordinary recursive
//! kernel, deduplicating overlaps through the shared [`FrequentSet`].

use crate::compute::EclatConfig;
use crate::equivalence::{ClassMember, EquivalenceClass};
use crate::pipeline::{self, ExecutionPolicy, Serial};
use mining_types::{FrequentSet, FxHashMap, FxHashSet, ItemId, OpMeter};

/// The `L2` adjacency relation restricted to one prefix class.
struct ClassGraph {
    /// Members (extension items), ascending.
    vertices: Vec<ItemId>,
    /// Adjacency sets over vertex *indices*.
    adj: Vec<FxHashSet<usize>>,
}

impl ClassGraph {
    fn build(members: &[ClassMember], edges: &FxHashSet<(ItemId, ItemId)>) -> ClassGraph {
        let vertices: Vec<ItemId> = members
            .iter()
            .map(|m| *m.itemset.items().last().expect("non-empty member"))
            .collect();
        let mut adj = vec![FxHashSet::default(); vertices.len()];
        for (i, &a) in vertices.iter().enumerate() {
            for (j, &b) in vertices.iter().enumerate().skip(i + 1) {
                let key = if a < b { (a, b) } else { (b, a) };
                if edges.contains(&key) {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
        ClassGraph { vertices, adj }
    }

    /// Bron–Kerbosch with pivoting; returns maximal cliques as sorted
    /// vertex-index lists (deterministic order).
    fn maximal_cliques(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut r: Vec<usize> = Vec::new();
        let p: FxHashSet<usize> = (0..self.vertices.len()).collect();
        let x: FxHashSet<usize> = FxHashSet::default();
        self.bron_kerbosch(&mut r, p, x, &mut out);
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort();
        out
    }

    fn bron_kerbosch(
        &self,
        r: &mut Vec<usize>,
        p: FxHashSet<usize>,
        mut x: FxHashSet<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if p.is_empty() && x.is_empty() {
            out.push(r.clone());
            return;
        }
        // pivot: vertex of P ∪ X with the largest neighborhood in P
        let pivot = p
            .iter()
            .chain(x.iter())
            .copied()
            .max_by_key(|&u| (self.adj[u].intersection(&p).count(), std::cmp::Reverse(u)))
            .expect("P ∪ X non-empty");
        let mut candidates: Vec<usize> = p
            .iter()
            .copied()
            .filter(|v| !self.adj[pivot].contains(v))
            .collect();
        candidates.sort_unstable(); // determinism
        let mut p = p;
        for v in candidates {
            let np: FxHashSet<usize> = p.intersection(&self.adj[v]).copied().collect();
            let nx: FxHashSet<usize> = x.intersection(&self.adj[v]).copied().collect();
            r.push(v);
            self.bron_kerbosch(r, np, nx, out);
            r.pop();
            p.remove(&v);
            x.insert(v);
        }
    }
}

/// Refine one `L2` equivalence class into its maximal-clique clusters.
/// `edges` is the global frequent-pair set. Returns one sub-class per
/// maximal clique of size ≥ 2 (smaller cliques generate no candidates).
pub fn clique_clusters(
    class: &EquivalenceClass,
    edges: &FxHashSet<(ItemId, ItemId)>,
) -> Vec<EquivalenceClass> {
    if class.size() < 2 {
        return Vec::new();
    }
    let graph = ClassGraph::build(&class.members, edges);
    graph
        .maximal_cliques()
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|clique| EquivalenceClass {
            prefix: class.prefix.clone(),
            members: clique
                .into_iter()
                .map(|idx| class.members[idx].clone())
                .collect(),
        })
        .collect()
}

/// Mine one prefix class via its maximal cliques (the "Clique" algorithm
/// of \[18\]): the union over cliques equals the prefix-class result, with
/// fewer doomed candidates at the cost of clique enumeration and overlap.
pub fn mine_class_cliques(
    class: EquivalenceClass,
    edges: &FxHashSet<(ItemId, ItemId)>,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) {
    // Overlapping cliques rediscover shared itemsets; a scratch set per
    // clique keeps `out`'s duplicate-support invariant happy while
    // counting each discovery only once.
    let mut scratch: FxHashMap<mining_types::Itemset, u32> = FxHashMap::default();
    for sub in clique_clusters(&class, edges) {
        let mut local = FrequentSet::new();
        pipeline::compute_class(sub, minsup, cfg, meter, &mut local);
        for (is, sup) in local.iter() {
            scratch.insert(is.clone(), sup);
        }
    }
    for (is, sup) in scratch {
        out.insert(is, sup);
    }
}

/// Full-database miner using clique clustering (sizes ≥ 2) — the Clique
/// algorithm end to end; a drop-in alternative to
/// [`crate::sequential::mine`].
pub fn mine(db: &dbstore::HorizontalDb, minsup: mining_types::MinSupport) -> FrequentSet {
    let mut meter = OpMeter::new();
    mine_with(db, minsup, &EclatConfig::default(), &mut meter)
}

/// [`mine`] with configuration and metering.
pub fn mine_with(
    db: &dbstore::HorizontalDb,
    minsup: mining_types::MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> FrequentSet {
    let threshold = minsup.count_threshold(db.num_transactions());
    let mut out = FrequentSet::new();
    let tri = Serial.count_pairs(db, meter);
    let l2 = pipeline::frequent_l2(&tri, threshold);
    if cfg.include_singletons {
        pipeline::insert_frequent_singletons(db, threshold, meter, &mut out);
    }
    if l2.is_empty() {
        return out;
    }
    let edges: FxHashSet<(ItemId, ItemId)> = l2.iter().copied().collect();
    for class in pipeline::vertical_classes(db, &l2, meter) {
        for m in &class.members {
            out.insert(m.itemset.clone(), m.tids.support());
        }
        mine_class_cliques(class, &edges, threshold, cfg, meter, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apriori::reference::random_db;
    use mining_types::Itemset;
    use tidlist::TidList;

    fn member(raw: &[u32], tids: &[u32]) -> ClassMember {
        ClassMember {
            itemset: Itemset::of(raw),
            tids: TidList::of(tids),
        }
    }

    fn edges(pairs: &[(u32, u32)]) -> FxHashSet<(ItemId, ItemId)> {
        pairs
            .iter()
            .map(|&(a, b)| (ItemId(a.min(b)), ItemId(a.max(b))))
            .collect()
    }

    #[test]
    fn clusters_split_a_broken_triangle() {
        // class [0] with members b ∈ {1,2,3}; edges 1-2 present, but
        // neither 1-3 nor 2-3 → cliques {1,2} and... {3} alone (dropped).
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![
                member(&[0, 1], &[1]),
                member(&[0, 2], &[1]),
                member(&[0, 3], &[1]),
            ],
        };
        let e = edges(&[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let clusters = clique_clusters(&class, &e);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].size(), 2);
        let exts: Vec<u32> = clusters[0]
            .members
            .iter()
            .map(|m| m.itemset.items()[1].0)
            .collect();
        assert_eq!(exts, vec![1, 2]);
    }

    #[test]
    fn full_clique_stays_whole() {
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=4).map(|b| member(&[0, b], &[1])).collect(),
        };
        let mut all_pairs = vec![];
        for a in 0..=4u32 {
            for b in a + 1..=4 {
                all_pairs.push((a, b));
            }
        }
        let clusters = clique_clusters(&class, &edges(&all_pairs));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].size(), 4);
    }

    #[test]
    fn overlapping_cliques_are_enumerated() {
        // neighborhood graph: 1-2, 2-3, 1-3, 3-4, 4-5, 3-5 → cliques
        // {1,2,3} and {3,4,5}.
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=5).map(|b| member(&[0, b], &[1])).collect(),
        };
        let e = edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (2, 3),
            (1, 3),
            (3, 4),
            (4, 5),
            (3, 5),
        ]);
        let clusters = clique_clusters(&class, &e);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].size(), 3);
        assert_eq!(clusters[1].size(), 3);
    }

    #[test]
    fn clique_mining_matches_sequential_eclat() {
        for seed in [0u64, 6, 21] {
            let db = random_db(seed, 200, 14, 6);
            for pct in [4.0, 10.0] {
                let minsup = mining_types::MinSupport::from_percent(pct);
                let via_cliques = mine(&db, minsup);
                let reference = crate::sequential::mine(&db, minsup);
                assert_eq!(via_cliques, reference, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn clique_clustering_generates_fewer_candidates() {
        // On sparse-ish data the tight clusters skip doomed joins.
        let db = random_db(17, 300, 14, 5);
        let minsup = mining_types::MinSupport::from_percent(4.0);
        let mut m_clique = OpMeter::new();
        let mut m_prefix = OpMeter::new();
        let a = mine_with(&db, minsup, &EclatConfig::default(), &mut m_clique);
        let b = crate::sequential::mine_with(&db, minsup, &EclatConfig::default(), &mut m_prefix);
        assert_eq!(a, b);
        assert!(
            m_clique.cand_gen <= m_prefix.cand_gen,
            "clique candidates {} vs prefix candidates {}",
            m_clique.cand_gen,
            m_prefix.cand_gen
        );
    }

    #[test]
    fn empty_and_singleton_classes() {
        let e = edges(&[]);
        let empty = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![],
        };
        assert!(clique_clusters(&empty, &e).is_empty());
        let single = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![member(&[0, 1], &[1])],
        };
        assert!(clique_clusters(&single, &e).is_empty());
    }
}
