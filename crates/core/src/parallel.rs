//! Shared-memory parallel Eclat on rayon.
//!
//! The paper's central observation — equivalence classes are independent
//! (§4.1) — maps directly onto task parallelism: after the sequential
//! initialization and transformation passes, every class is mined as its
//! own rayon task and the per-task results are merged. This is the
//! variant a downstream user runs on a modern multicore machine; the
//! [`crate::cluster`] variant is the paper's 1997 message-passing
//! algorithm under the simulated cost model.

use crate::compute::{compute_frequent, EclatConfig};
use crate::equivalence::classes_of_l2;
use crate::transform::{build_pair_tidlists, count_items, count_pairs, index_pairs};
use dbstore::HorizontalDb;
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport, OpMeter};
use rayon::prelude::*;

/// Mine frequent itemsets (size ≥ 2) using all rayon threads.
pub fn mine(db: &HorizontalDb, minsup: MinSupport) -> FrequentSet {
    mine_with(db, minsup, &EclatConfig::default())
}

/// Mine with explicit configuration.
///
/// The initialization scan is itself parallelized as a map-reduce over
/// transaction blocks (each task counts a block into a private triangular
/// matrix, merged pairwise — the shared-memory analogue of the paper's
/// per-processor partial counts plus sum-reduction).
pub fn mine_with(db: &HorizontalDb, minsup: MinSupport, cfg: &EclatConfig) -> FrequentSet {
    let threshold = minsup.count_threshold(db.num_transactions());
    let n = db.num_transactions();
    let mut out = FrequentSet::new();

    // --- Initialization: parallel triangular counting over blocks.
    let block = (n / rayon::current_num_threads().max(1)).max(1024).min(n.max(1));
    let blocks: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(block)
        .map(|s| s..(s + block).min(n))
        .collect();
    let tri = blocks
        .par_iter()
        .map(|r| {
            let mut m = OpMeter::new();
            count_pairs(db, r.clone(), &mut m)
        })
        .reduce_with(|mut a, b| {
            a.merge_from(&b);
            a
        });
    let Some(tri) = tri else {
        return out; // empty database
    };
    let l2: Vec<(ItemId, ItemId)> = tri
        .frequent_pairs(threshold)
        .map(|(a, b, _)| (a, b))
        .collect();

    if cfg.include_singletons {
        let mut m = OpMeter::new();
        let counts = count_items(db, 0..n, &mut m);
        for (i, &c) in counts.iter().enumerate() {
            if c >= threshold {
                out.insert(Itemset::single(ItemId(i as u32)), c);
            }
        }
    }
    if l2.is_empty() {
        return out;
    }

    // --- Transformation (sequential scan; tid order must be preserved).
    let idx = index_pairs(&l2);
    let mut m = OpMeter::new();
    let lists = build_pair_tidlists(db, 0..n, &idx, &mut m);

    // --- Asynchronous phase: one rayon task per equivalence class.
    let pairs_with_lists: Vec<(ItemId, ItemId, tidlist::TidList)> = l2
        .iter()
        .zip(lists)
        .map(|(&(a, b), tl)| (a, b, tl))
        .collect();
    let classes = classes_of_l2(pairs_with_lists);
    let partials: Vec<FrequentSet> = classes
        .into_par_iter()
        .map(|class| {
            let mut local = FrequentSet::new();
            let mut meter = OpMeter::new();
            for mem in &class.members {
                local.insert(mem.itemset.clone(), mem.tids.support());
            }
            compute_frequent(class, threshold, cfg, &mut meter, &mut local);
            local
        })
        .collect();
    for p in partials {
        out.merge(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use apriori::reference::random_db;

    #[test]
    fn matches_sequential_eclat() {
        for seed in [1u64, 5, 9] {
            let db = random_db(seed, 200, 14, 6);
            for pct in [4.0, 10.0] {
                let minsup = MinSupport::from_percent(pct);
                assert_eq!(
                    mine(&db, minsup),
                    sequential::mine(&db, minsup),
                    "seed {seed} pct {pct}"
                );
            }
        }
    }

    #[test]
    fn singleton_config_matches_sequential() {
        let db = random_db(2, 120, 10, 5);
        let minsup = MinSupport::from_percent(8.0);
        let cfg = EclatConfig::with_singletons();
        let mut meter = OpMeter::new();
        assert_eq!(
            mine_with(&db, minsup, &cfg),
            sequential::mine_with(&db, minsup, &cfg, &mut meter)
        );
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        assert!(mine(&db, MinSupport::from_percent(1.0)).is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let db = random_db(11, 300, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let a = mine(&db, minsup);
        let b = mine(&db, minsup);
        assert_eq!(a, b);
    }
}
