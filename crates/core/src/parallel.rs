//! Shared-memory parallel Eclat on rayon.
//!
//! The paper's central observation — equivalence classes are independent
//! (§4.1) — maps directly onto task parallelism: after the sequential
//! transformation pass, every class is mined as its own rayon task and
//! the per-task results are merged. This is the variant a downstream user
//! runs on a modern multicore machine; the [`crate::cluster`] variant is
//! the paper's 1997 message-passing algorithm under the simulated cost
//! model.
//!
//! The implementation is the shared three-phase [`pipeline`] under the
//! [`Rayon`] execution policy: blocked map-reduce counting in phase 1
//! (each task counts a transaction block into a private triangular
//! matrix — the shared-memory analogue of the paper's per-processor
//! partial counts plus sum-reduction), one task per equivalence class in
//! phase 3. Per-task operation meters are merged into the caller's
//! meter, so a parallel run reports the same counts as a serial one.

use crate::compute::EclatConfig;
use crate::pipeline::{self, Rayon};
use dbstore::HorizontalDb;
use mining_types::{FrequentSet, MinSupport, OpMeter};

/// Mine frequent itemsets (size ≥ 2) using all rayon threads.
pub fn mine(db: &HorizontalDb, minsup: MinSupport) -> FrequentSet {
    let mut meter = OpMeter::new();
    mine_with(db, minsup, &EclatConfig::default(), &mut meter)
}

/// Mine with explicit configuration and metering.
///
/// Work done inside rayon tasks (block counting, per-class mining) is
/// metered into task-local meters and merged into `meter`, so the counts
/// are comparable with [`crate::sequential::mine_with`].
pub fn mine_with(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> FrequentSet {
    pipeline::run(db, minsup, cfg, meter, &Rayon)
}

/// [`mine_with`] that also returns the structured [`mining_types::MiningStats`] report.
/// The vendored rayon preserves class order on collect, so the stats are
/// identical to a sequential run's (wall-clock seconds aside).
pub fn mine_stats(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> (FrequentSet, mining_types::MiningStats) {
    pipeline::run_stats(db, minsup, cfg, meter, &Rayon, "parallel")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use apriori::reference::random_db;

    #[test]
    fn matches_sequential_eclat() {
        for seed in [1u64, 5, 9] {
            let db = random_db(seed, 200, 14, 6);
            for pct in [4.0, 10.0] {
                let minsup = MinSupport::from_percent(pct);
                assert_eq!(
                    mine(&db, minsup),
                    sequential::mine(&db, minsup),
                    "seed {seed} pct {pct}"
                );
            }
        }
    }

    #[test]
    fn singleton_config_matches_sequential() {
        let db = random_db(2, 120, 10, 5);
        let minsup = MinSupport::from_percent(8.0);
        let cfg = EclatConfig::with_singletons();
        let mut m_par = OpMeter::new();
        let mut m_seq = OpMeter::new();
        assert_eq!(
            mine_with(&db, minsup, &cfg, &mut m_par),
            sequential::mine_with(&db, minsup, &cfg, &mut m_seq)
        );
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        assert!(mine(&db, MinSupport::from_percent(1.0)).is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let db = random_db(11, 300, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let a = mine(&db, minsup);
        let b = mine(&db, minsup);
        assert_eq!(a, b);
    }

    #[test]
    fn per_task_meters_are_merged_into_the_caller() {
        // Regression: the per-task meters (block counting, transform,
        // per-class mining) used to be discarded, leaving the caller
        // blind. The merged meter must match a serial run's counts.
        let db = random_db(4, 250, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let cfg = EclatConfig::default();
        let mut m_par = OpMeter::new();
        let mut m_seq = OpMeter::new();
        let fs_par = mine_with(&db, minsup, &cfg, &mut m_par);
        let fs_seq = sequential::mine_with(&db, minsup, &cfg, &mut m_seq);
        assert_eq!(fs_par, fs_seq);
        assert!(m_par.record > 0, "counting scans must be metered");
        assert!(m_par.pair_incr > 0, "triangular pass must be metered");
        assert!(m_par.tid_cmp > 0, "per-class mining must be metered");
        assert!(m_par.cand_gen > 0);
        // Identical work, different schedule — counts agree exactly.
        assert_eq!(m_par.record, m_seq.record);
        assert_eq!(m_par.pair_incr, m_seq.pair_incr);
        assert_eq!(m_par.cand_gen, m_seq.cand_gen);
        assert_eq!(m_par.tid_cmp, m_seq.tid_cmp);
    }
}
