//! The recursive mining kernel `Compute_Frequent` (Figure 3).
//!
//! ```text
//! Begin Compute_Frequent(E_{k-1})
//!   for all itemsets I1 and I2 in E_{k-1}
//!     if ((I1.tidlist ∩ I2.tidlist) ≥ minsup)
//!       add (I1 ∪ I2) to L_k
//!   Partition L_k into equivalence classes
//!   for each equivalence class E_k in L_k
//!     Compute_Frequent(E_k)
//! End
//! ```
//!
//! The kernel is generic over the members' vertical representation
//! ([`TidSet`]): the same recursion mines tid-lists, d-Eclat diffsets,
//! or the mid-recursion [`tidlist::AdaptiveSet`] switcher. All pairwise
//! candidate generation in this crate funnels through `join_level` —
//! the one place the `I1 × I2` loop exists.
//!
//! Once a level's members are joined, the parent tid-lists are dropped
//! before recursing — *"once L_k has been determined, we can delete
//! L_{k-1}; we thus need main memory space only for the itemsets in
//! L_{k-1} within one equivalence class"* (§5.3).

use crate::equivalence::{repartition, ClassMember, EquivalenceClass};
use crate::schedule::ScheduleHeuristic;
use mining_types::stats::KernelStats;
use mining_types::{FrequentSet, FxHashSet, Itemset, OpMeter};
use tidlist::TidSet;

/// Which vertical representation the per-class recursion runs on (S17).
///
/// Every variant's driver builds `L2` classes as tid-lists (that is what
/// the vertical transform produces); this knob decides what happens below
/// `L2`. See `pipeline::compute_class` for the dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Representation {
    /// Plain sorted tid-lists — the paper's §4.2 layout.
    #[default]
    TidList,
    /// d-Eclat diffsets: the very first join below `L2` converts
    /// `d(xy·z) = t(xy) − t(xz)` and the subtree continues on diffsets.
    Diffset,
    /// Start on tid-lists and convert each branch to diffsets after
    /// `depth` further join levels. `depth = 0` is exactly [`Diffset`];
    /// a depth deeper than the lattice never switches (pure tid-lists).
    ///
    /// [`Diffset`]: Representation::Diffset
    AutoSwitch {
        /// Tid-list join levels below `L2` before the switch.
        depth: u32,
    },
    /// Fixed-width bitmaps: every class converts to `u64` bitmap words
    /// over the class's tid window and joins become word `AND` +
    /// popcount (`tidlist::BitmapSet`). A big win on dense databases,
    /// a memory/work loss on sparse ones — `AutoDensity` picks per class.
    ///
    /// [`AutoDensity`]: Representation::AutoDensity
    Bitmap,
    /// Per-class density dispatch: a class whose average member density
    /// (`Σ support / (members · window span)`) is at least
    /// `permille / 1000` mines on bitmaps; sparser classes mine on the
    /// explicitly vectorized chunked tid-list kernels
    /// (`tidlist::ChunkedList`).
    AutoDensity {
        /// Density threshold in thousandths. The default
        /// [`DEFAULT_DENSITY_PERMILLE`] sits at the op-count crossover:
        /// a `w`-word bitmap join costs `w` word ops while the merge
        /// costs about `2·d·64·w` element probes, so the bitmap is
        /// cheaper once density `d ≳ 1/128 ≈ 8‰`.
        permille: u32,
    },
}

/// Default `auto-density` threshold (8‰ ≈ the bitmap-vs-merge op-count
/// crossover; see [`Representation::AutoDensity`]).
pub const DEFAULT_DENSITY_PERMILLE: u32 = 8;

impl std::fmt::Display for Representation {
    /// Stable lowercase form used by the CLI flag parser and the stats
    /// JSON: `tidlist`, `diffset`, `autoswitch:N`, `bitmap`,
    /// `auto-density:N`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Representation::TidList => f.write_str("tidlist"),
            Representation::Diffset => f.write_str("diffset"),
            Representation::AutoSwitch { depth } => write!(f, "autoswitch:{depth}"),
            Representation::Bitmap => f.write_str("bitmap"),
            Representation::AutoDensity { permille } => write!(f, "auto-density:{permille}"),
        }
    }
}

/// Tuning switches for Eclat (all variants).
#[derive(Clone, Debug)]
pub struct EclatConfig {
    /// §5.3 short-circuited intersections: abandon a join the moment the
    /// result provably cannot reach the minimum support.
    pub short_circuit: bool,
    /// §5.3 "Pruning Candidates": check a candidate's conclusive
    /// `(k−1)`-subsets (those under the same class root, which are fully
    /// mined before deeper recursion) before intersecting. The paper
    /// found this *"of little or no help"* with the vertical layout; the
    /// toggle exists to reproduce that ablation (A3).
    pub prune: bool,
    /// Also report frequent 1-itemsets. The paper's Eclat skips them
    /// (*"We don't count the support of single elements"*, §5.1); turning
    /// this on adds a cheap piggybacked count during the first scan so
    /// the output is a complete downward-closed set for rule generation.
    pub include_singletons: bool,
    /// Vertical representation used below `L2` (tid-lists, diffsets, or
    /// the depth-triggered switch).
    pub representation: Representation,
    /// Use the adaptive galloping intersection for tid-list joins below
    /// `L2`: exponential search through the longer operand when the
    /// lengths are skewed by more than 16×, two-pointer merge otherwise.
    /// Applies to [`Representation::TidList`] only — diffset differences
    /// have no galloping analogue. Galloping computes full intersections
    /// (no §5.3 short-circuit), so `short_circuit` has no effect on the
    /// joins it handles.
    pub gallop: bool,
    /// Class-scheduling heuristic (cluster/hybrid/parallel variants).
    pub heuristic: ScheduleHeuristic,
    /// Transmit/receive buffer for the §6.3 exchange (cluster variant).
    pub buffer_bytes: u64,
}

impl Default for EclatConfig {
    fn default() -> Self {
        EclatConfig {
            short_circuit: true,
            prune: false,
            include_singletons: false,
            representation: Representation::TidList,
            gallop: false,
            heuristic: ScheduleHeuristic::GreedyPairs,
            buffer_bytes: 2 * 1024 * 1024, // the paper's 2 MB buffers
        }
    }
}

impl EclatConfig {
    /// Config that also emits frequent 1-itemsets.
    pub fn with_singletons() -> Self {
        EclatConfig {
            include_singletons: true,
            ..Default::default()
        }
    }

    /// Config mining on the given representation, rest default.
    pub fn with_representation(representation: Representation) -> Self {
        EclatConfig {
            representation,
            ..Default::default()
        }
    }
}

/// What a `join_level` caller does with each candidate: an optional
/// pre-join filter (the A3 pruning hook) and the outcome sink. One trait
/// instead of two closures because both hooks typically borrow the same
/// caller state mutably.
pub(crate) trait JoinHandler<S> {
    /// Called before the join; returning `false` skips the candidate
    /// entirely (no intersection is performed).
    fn accept(&mut self, _candidate: &Itemset, _meter: &mut OpMeter) -> bool {
        true
    }

    /// Outcome of joining members `i` and `j`: `Some` with the candidate's
    /// vertical data when frequent, `None` when below `minsup`.
    fn on_result(&mut self, i: usize, j: usize, candidate: Itemset, joined: Option<S>);
}

/// One level of Figure 3's `for all itemsets I1 and I2` loop: join every
/// ordered member pair of a class, honoring `cfg.short_circuit`, and
/// report each outcome to the handler.
///
/// This is the **only** pairwise-join loop in the crate — the recursive
/// kernel, the maximal-clique variant, and the d-Eclat wrapper all route
/// through it, so candidate and comparison metering is identical across
/// variants.
pub(crate) fn join_level<S: TidSet>(
    members: &[ClassMember<S>],
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    handler: &mut impl JoinHandler<S>,
) {
    for i in 0..members.len() {
        for j in i + 1..members.len() {
            let candidate = members[i]
                .itemset
                .join(&members[j].itemset)
                .expect("class members share a prefix and are ordered");
            meter.cand_gen += 1;

            if !handler.accept(&candidate, meter) {
                continue;
            }

            let joined = if cfg.short_circuit {
                members[i]
                    .tids
                    .join_bounded_metered(&members[j].tids, minsup, meter)
            } else {
                let full = members[i].tids.join_metered(&members[j].tids, meter);
                (full.support() >= minsup).then_some(full)
            };
            handler.on_result(i, j, candidate, joined);
        }
    }
}

/// Mine everything derivable from one equivalence class, on whatever
/// representation the class carries.
///
/// The members of `class` itself must already be recorded in `out` by
/// the caller.
pub fn compute_frequent<S: TidSet>(
    class: EquivalenceClass<S>,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) {
    compute_frequent_stats(class, minsup, cfg, meter, out, &mut KernelStats::new());
}

/// [`compute_frequent`] that additionally fills a [`KernelStats`] with
/// per-level candidate/frequent counts, the short-circuit hit rate, the
/// peak live tid-set footprint, and `AdaptiveSet` switch events.
pub fn compute_frequent_stats<S: TidSet>(
    class: EquivalenceClass<S>,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
    stats: &mut KernelStats,
) {
    // The A3 pruning state is scoped to the class subtree: a processor
    // mining its own classes has no cross-class knowledge — exactly the
    // locality limitation that makes pruning "of little or no help" for
    // Eclat (§5.3).
    let mut infrequent: FxHashSet<Itemset> = FxHashSet::default();
    compute_rec(class, minsup, cfg, meter, out, &mut infrequent, stats);
}

/// The recursive kernel's per-level handler: collect frequent joins as
/// next-level members, record them in the output, and feed the A3
/// infrequent cache and the kernel stats.
struct FrequentCollector<'a, S> {
    next: Vec<ClassMember<S>>,
    out: &'a mut FrequentSet,
    infrequent: &'a mut FxHashSet<Itemset>,
    prune: bool,
    stats: &'a mut KernelStats,
    /// Whether `cfg.short_circuit` was on — an infrequent outcome then
    /// came from a bounded join that bailed early.
    short_circuit: bool,
    /// Representation state of this level's members; a frequent child
    /// reporting `is_switched()` when the parents did not is one
    /// `AdaptiveSet` conversion event.
    parent_switched: bool,
    /// Total byte footprint of the frequent children collected so far.
    child_bytes: u64,
}

impl<S: TidSet> JoinHandler<S> for FrequentCollector<'_, S> {
    fn accept(&mut self, candidate: &Itemset, meter: &mut OpMeter) -> bool {
        self.stats.record_candidate(candidate.len() as u64);
        if self.prune && !prune_ok(candidate, self.infrequent, meter) {
            self.infrequent.insert(candidate.clone());
            return false;
        }
        true
    }

    fn on_result(&mut self, _i: usize, _j: usize, candidate: Itemset, joined: Option<S>) {
        match joined {
            Some(tids) => {
                self.stats.record_frequent(candidate.len() as u64);
                if !self.parent_switched && tids.is_switched() {
                    self.stats.record_switch();
                }
                self.child_bytes += tids.byte_size();
                self.out.insert(candidate.clone(), tids.support());
                self.next.push(ClassMember {
                    itemset: candidate,
                    tids,
                });
            }
            None => {
                self.stats.record_infrequent(self.short_circuit);
                if self.prune {
                    self.infrequent.insert(candidate);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn compute_rec<S: TidSet>(
    class: EquivalenceClass<S>,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
    infrequent: &mut FxHashSet<Itemset>,
    stats: &mut KernelStats,
) {
    if class.size() < 2 {
        return;
    }
    let members = class.members;
    let parent_bytes: u64 = members.iter().map(|m| m.tids.byte_size()).sum();
    let parent_switched = members[0].tids.is_switched();
    let mut collector = FrequentCollector {
        next: Vec::new(),
        out,
        infrequent,
        prune: cfg.prune,
        stats,
        short_circuit: cfg.short_circuit,
        parent_switched,
        child_bytes: 0,
    };
    join_level(&members, minsup, cfg, meter, &mut collector);
    let FrequentCollector {
        next, child_bytes, ..
    } = collector;
    // Peak memory for this level: parents and their frequent children are
    // live simultaneously during the joins (§5.3's memory argument).
    stats.observe_level_bytes(parent_bytes + child_bytes);
    // Parent tid-lists are no longer needed — free them before recursing.
    drop(members);

    for sub in repartition(next) {
        compute_rec(sub, minsup, cfg, meter, out, infrequent, stats);
    }
}

/// A3 pruning check: a candidate can be skipped when one of its
/// `(k−1)`-subsets is *known* infrequent. Only subsets already rejected
/// inside this class subtree are known — subsets in sibling or remote
/// classes are unavailable in the DFS order, so the check rarely fires.
fn prune_ok(candidate: &Itemset, infrequent: &FxHashSet<Itemset>, meter: &mut OpMeter) -> bool {
    // The two subsets dropping the last / second-to-last item are the
    // join parents — frequent by construction; skip them.
    let k = candidate.len();
    for idx in 0..k.saturating_sub(2) {
        let sub = candidate.without_index(idx);
        meter.hash_probe += 1;
        if infrequent.contains(&sub) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mining_types::Itemset;
    use tidlist::{AdaptiveSet, TidList};

    fn member(raw: &[u32], tids: &[u32]) -> ClassMember {
        ClassMember {
            itemset: Itemset::of(raw),
            tids: TidList::of(tids),
        }
    }

    /// Class \[0\] where {0,1},{0,2} overlap heavily and {0,3} does not.
    fn sample_class() -> EquivalenceClass {
        EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![
                member(&[0, 1], &[1, 2, 3, 4]),
                member(&[0, 2], &[1, 2, 3, 9]),
                member(&[0, 3], &[7, 8]),
            ],
        }
    }

    #[test]
    fn finds_three_itemsets_and_recurses() {
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent(
            sample_class(),
            2,
            &EclatConfig::default(),
            &mut meter,
            &mut out,
        );
        // {0,1}∩{0,2} = {1,2,3} → support 3 ✓; {0,1}∩{0,3} = ∅; {0,2}∩{0,3} = ∅
        assert_eq!(out.support_of(&Itemset::of(&[0, 1, 2])), Some(3));
        assert_eq!(out.len(), 1);
        assert!(meter.cand_gen == 3);
        assert!(meter.tid_cmp > 0);
    }

    #[test]
    fn deep_recursion_mines_all_levels() {
        // Four members all sharing tids {1,2,3}: every superset up to
        // {0,1,2,3,4} is frequent at minsup 3.
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=4).map(|b| member(&[0, b], &[1, 2, 3])).collect(),
        };
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent(class, 3, &EclatConfig::default(), &mut meter, &mut out);
        // sizes: C(4,2)=6 threes, C(4,3)=4 fours, C(4,4)=1 five
        assert_eq!(out.counts_by_size(), vec![0, 0, 6, 4, 1]);
        assert_eq!(out.support_of(&Itemset::of(&[0, 1, 2, 3, 4])), Some(3));
    }

    #[test]
    fn short_circuit_and_plain_agree() {
        for short_circuit in [true, false] {
            let cfg = EclatConfig {
                short_circuit,
                ..Default::default()
            };
            let mut out = FrequentSet::new();
            let mut meter = OpMeter::new();
            compute_frequent(sample_class(), 2, &cfg, &mut meter, &mut out);
            assert_eq!(out.support_of(&Itemset::of(&[0, 1, 2])), Some(3));
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn short_circuit_saves_comparisons() {
        // Large disjoint lists: bounded intersection bails early.
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![
                member(&[0, 1], &(0..400).collect::<Vec<_>>()),
                member(&[0, 2], &(1000..1400).collect::<Vec<_>>()),
            ],
        };
        let run = |sc: bool| {
            let mut out = FrequentSet::new();
            let mut meter = OpMeter::new();
            compute_frequent(
                class.clone(),
                399,
                &EclatConfig {
                    short_circuit: sc,
                    ..Default::default()
                },
                &mut meter,
                &mut out,
            );
            meter.tid_cmp
        };
        assert!(run(true) * 5 < run(false));
    }

    #[test]
    fn prune_does_not_change_results() {
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=5)
                .map(|b| member(&[0, b], &(1..=(b + 2)).collect::<Vec<_>>()))
                .collect(),
        };
        let run = |prune: bool| {
            let mut out = FrequentSet::new();
            let mut meter = OpMeter::new();
            compute_frequent(
                class.clone(),
                2,
                &EclatConfig {
                    prune,
                    ..Default::default()
                },
                &mut meter,
                &mut out,
            );
            (out, meter)
        };
        let (plain, m_plain) = run(false);
        let (pruned, m_pruned) = run(true);
        assert_eq!(plain, pruned, "pruning must never change the answer");
        assert!(m_pruned.hash_probe > 0, "pruning costs probes");
        assert_eq!(m_plain.hash_probe, 0);
    }

    #[test]
    fn singleton_class_is_a_noop() {
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![member(&[0, 1], &[1, 2])],
        };
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent(class, 1, &EclatConfig::default(), &mut meter, &mut out);
        assert!(out.is_empty());
        assert_eq!(meter.cand_gen, 0);
    }

    #[test]
    fn kernel_stats_count_joins_and_outcomes() {
        use mining_types::stats::KernelStats;
        let mut out = FrequentSet::new();
        let mut stats = KernelStats::new();
        compute_frequent_stats(
            sample_class(),
            2,
            &EclatConfig::default(),
            &mut OpMeter::new(),
            &mut out,
            &mut stats,
        );
        // 3 candidates at level 3: one frequent, two infrequent (both
        // caught by the bounded join since short_circuit defaults on).
        assert_eq!(stats.joins, 3);
        assert_eq!(stats.frequent, 1);
        assert_eq!(stats.infrequent, 2);
        assert_eq!(stats.short_circuit_hits, 2);
        assert_eq!(stats.short_circuit_rate(), 1.0);
        assert_eq!(stats.levels.len(), 1);
        assert_eq!(stats.levels[0].size, 3);
        assert_eq!(stats.levels[0].candidates, 3);
        assert_eq!(stats.levels[0].frequent, 1);
        assert!(stats.peak_tid_bytes > 0);
        assert_eq!(stats.switch_events, 0, "plain tid-lists never switch");

        // Without short-circuiting the infrequent outcomes are full joins.
        let mut plain = KernelStats::new();
        compute_frequent_stats(
            sample_class(),
            2,
            &EclatConfig {
                short_circuit: false,
                ..Default::default()
            },
            &mut OpMeter::new(),
            &mut FrequentSet::new(),
            &mut plain,
        );
        assert_eq!(plain.infrequent, 2);
        assert_eq!(plain.short_circuit_hits, 0);
    }

    #[test]
    fn kernel_stats_see_adaptive_switches() {
        use mining_types::stats::KernelStats;
        // Dense class: every join is frequent, so with fuel 1 the
        // second-level joins all convert to diffsets.
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=4)
                .map(|b| ClassMember {
                    itemset: Itemset::of(&[0, b]),
                    tids: AdaptiveSet::with_fuel(TidList::of(&[1, 2, 3]), 1),
                })
                .collect(),
        };
        let mut stats = KernelStats::new();
        compute_frequent_stats(
            class,
            3,
            &EclatConfig::default(),
            &mut OpMeter::new(),
            &mut FrequentSet::new(),
            &mut stats,
        );
        // C(4,3)=4 level-4 members are the first produced at fuel 0.
        assert_eq!(stats.switch_events, 4);
        assert_eq!(stats.frequent, 6 + 4 + 1);
    }

    #[test]
    fn generic_kernel_agrees_across_representations() {
        // The same class mined on tid-lists and on AdaptiveSet with every
        // fuel level must produce identical frequent sets.
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=4)
                .map(|b| {
                    member(
                        &[0, b],
                        &(0..30).filter(|x| x % b != 0 || b == 1).collect::<Vec<_>>(),
                    )
                })
                .collect(),
        };
        let mut expected = FrequentSet::new();
        compute_frequent(
            class.clone(),
            3,
            &EclatConfig::default(),
            &mut OpMeter::new(),
            &mut expected,
        );
        for fuel in [0u32, 1, 2, 10] {
            let adaptive = EquivalenceClass {
                prefix: class.prefix.clone(),
                members: class
                    .members
                    .iter()
                    .map(|m| ClassMember {
                        itemset: m.itemset.clone(),
                        tids: AdaptiveSet::with_fuel(m.tids.clone(), fuel),
                    })
                    .collect(),
            };
            for short_circuit in [true, false] {
                let cfg = EclatConfig {
                    short_circuit,
                    ..Default::default()
                };
                let mut out = FrequentSet::new();
                compute_frequent(adaptive.clone(), 3, &cfg, &mut OpMeter::new(), &mut out);
                assert_eq!(out, expected, "fuel {fuel} sc {short_circuit}");
            }
        }
    }
}
