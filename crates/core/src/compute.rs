//! The recursive mining kernel `Compute_Frequent` (Figure 3).
//!
//! ```text
//! Begin Compute_Frequent(E_{k-1})
//!   for all itemsets I1 and I2 in E_{k-1}
//!     if ((I1.tidlist ∩ I2.tidlist) ≥ minsup)
//!       add (I1 ∪ I2) to L_k
//!   Partition L_k into equivalence classes
//!   for each equivalence class E_k in L_k
//!     Compute_Frequent(E_k)
//! End
//! ```
//!
//! Once a level's members are joined, the parent tid-lists are dropped
//! before recursing — *"once L_k has been determined, we can delete
//! L_{k-1}; we thus need main memory space only for the itemsets in
//! L_{k-1} within one equivalence class"* (§5.3).

use crate::equivalence::{repartition, ClassMember, EquivalenceClass};
use crate::schedule::ScheduleHeuristic;
use mining_types::{FrequentSet, FxHashSet, OpMeter};
use tidlist::IntersectOutcome;

/// Tuning switches for Eclat (all variants).
#[derive(Clone, Debug)]
pub struct EclatConfig {
    /// §5.3 short-circuited intersections: abandon a join the moment the
    /// result provably cannot reach the minimum support.
    pub short_circuit: bool,
    /// §5.3 "Pruning Candidates": check a candidate's conclusive
    /// `(k−1)`-subsets (those under the same class root, which are fully
    /// mined before deeper recursion) before intersecting. The paper
    /// found this *"of little or no help"* with the vertical layout; the
    /// toggle exists to reproduce that ablation (A3).
    pub prune: bool,
    /// Also report frequent 1-itemsets. The paper's Eclat skips them
    /// (*"We don't count the support of single elements"*, §5.1); turning
    /// this on adds a cheap piggybacked count during the first scan so
    /// the output is a complete downward-closed set for rule generation.
    pub include_singletons: bool,
    /// Class-scheduling heuristic (cluster/hybrid/parallel variants).
    pub heuristic: ScheduleHeuristic,
    /// Transmit/receive buffer for the §6.3 exchange (cluster variant).
    pub buffer_bytes: u64,
}

impl Default for EclatConfig {
    fn default() -> Self {
        EclatConfig {
            short_circuit: true,
            prune: false,
            include_singletons: false,
            heuristic: ScheduleHeuristic::GreedyPairs,
            buffer_bytes: 2 * 1024 * 1024, // the paper's 2 MB buffers
        }
    }
}

impl EclatConfig {
    /// Config that also emits frequent 1-itemsets.
    pub fn with_singletons() -> Self {
        EclatConfig {
            include_singletons: true,
            ..Default::default()
        }
    }
}

/// Mine everything derivable from one equivalence class.
///
/// The members of `class` itself must already be recorded in `out` by
/// the caller.
pub fn compute_frequent(
    class: EquivalenceClass,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) {
    // The A3 pruning state is scoped to the class subtree: a processor
    // mining its own classes has no cross-class knowledge — exactly the
    // locality limitation that makes pruning "of little or no help" for
    // Eclat (§5.3).
    let mut infrequent: FxHashSet<mining_types::Itemset> = FxHashSet::default();
    compute_rec(class, minsup, cfg, meter, out, &mut infrequent);
}

fn compute_rec(
    class: EquivalenceClass,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
    infrequent: &mut FxHashSet<mining_types::Itemset>,
) {
    if class.size() < 2 {
        return;
    }
    let members = class.members;
    let mut next: Vec<ClassMember> = Vec::new();
    for i in 0..members.len() {
        for j in i + 1..members.len() {
            let candidate = members[i]
                .itemset
                .join(&members[j].itemset)
                .expect("class members share a prefix and are ordered");
            meter.cand_gen += 1;

            if cfg.prune && !prune_ok(&candidate, infrequent, meter) {
                infrequent.insert(candidate);
                continue;
            }

            let result = if cfg.short_circuit {
                members[i]
                    .tids
                    .intersect_bounded_metered(&members[j].tids, minsup, meter)
            } else {
                let full = members[i].tids.intersect_metered(&members[j].tids, meter);
                if full.support() >= minsup {
                    IntersectOutcome::Frequent(full)
                } else {
                    IntersectOutcome::Infrequent
                }
            };
            match result {
                IntersectOutcome::Frequent(tids) => {
                    out.insert(candidate.clone(), tids.support());
                    next.push(ClassMember {
                        itemset: candidate,
                        tids,
                    });
                }
                IntersectOutcome::Infrequent => {
                    if cfg.prune {
                        infrequent.insert(candidate);
                    }
                }
            }
        }
    }
    // Parent tid-lists are no longer needed — free them before recursing
    // (the §5.3 memory argument).
    drop(members);

    for sub in repartition(next) {
        compute_rec(sub, minsup, cfg, meter, out, infrequent);
    }
}

/// A3 pruning check: a candidate can be skipped when one of its
/// `(k−1)`-subsets is *known* infrequent. Only subsets already rejected
/// inside this class subtree are known — subsets in sibling or remote
/// classes are unavailable in the DFS order, so the check rarely fires.
fn prune_ok(
    candidate: &mining_types::Itemset,
    infrequent: &FxHashSet<mining_types::Itemset>,
    meter: &mut OpMeter,
) -> bool {
    // The two subsets dropping the last / second-to-last item are the
    // join parents — frequent by construction; skip them.
    let k = candidate.len();
    for idx in 0..k.saturating_sub(2) {
        let sub = candidate.without_index(idx);
        meter.hash_probe += 1;
        if infrequent.contains(&sub) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mining_types::Itemset;
    use tidlist::TidList;

    fn member(raw: &[u32], tids: &[u32]) -> ClassMember {
        ClassMember {
            itemset: Itemset::of(raw),
            tids: TidList::of(tids),
        }
    }

    /// Class \[0\] where {0,1},{0,2} overlap heavily and {0,3} does not.
    fn sample_class() -> EquivalenceClass {
        EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![
                member(&[0, 1], &[1, 2, 3, 4]),
                member(&[0, 2], &[1, 2, 3, 9]),
                member(&[0, 3], &[7, 8]),
            ],
        }
    }

    #[test]
    fn finds_three_itemsets_and_recurses() {
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent(
            sample_class(),
            2,
            &EclatConfig::default(),
            &mut meter,
            &mut out,
        );
        // {0,1}∩{0,2} = {1,2,3} → support 3 ✓; {0,1}∩{0,3} = ∅; {0,2}∩{0,3} = ∅
        assert_eq!(out.support_of(&Itemset::of(&[0, 1, 2])), Some(3));
        assert_eq!(out.len(), 1);
        assert!(meter.cand_gen == 3);
        assert!(meter.tid_cmp > 0);
    }

    #[test]
    fn deep_recursion_mines_all_levels() {
        // Four members all sharing tids {1,2,3}: every superset up to
        // {0,1,2,3,4} is frequent at minsup 3.
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=4)
                .map(|b| member(&[0, b], &[1, 2, 3]))
                .collect(),
        };
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent(class, 3, &EclatConfig::default(), &mut meter, &mut out);
        // sizes: C(4,2)=6 threes, C(4,3)=4 fours, C(4,4)=1 five
        assert_eq!(out.counts_by_size(), vec![0, 0, 6, 4, 1]);
        assert_eq!(out.support_of(&Itemset::of(&[0, 1, 2, 3, 4])), Some(3));
    }

    #[test]
    fn short_circuit_and_plain_agree() {
        for short_circuit in [true, false] {
            let cfg = EclatConfig {
                short_circuit,
                ..Default::default()
            };
            let mut out = FrequentSet::new();
            let mut meter = OpMeter::new();
            compute_frequent(sample_class(), 2, &cfg, &mut meter, &mut out);
            assert_eq!(out.support_of(&Itemset::of(&[0, 1, 2])), Some(3));
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn short_circuit_saves_comparisons() {
        // Large disjoint lists: bounded intersection bails early.
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![
                member(&[0, 1], &(0..400).collect::<Vec<_>>()),
                member(&[0, 2], &(1000..1400).collect::<Vec<_>>()),
            ],
        };
        let run = |sc: bool| {
            let mut out = FrequentSet::new();
            let mut meter = OpMeter::new();
            compute_frequent(
                class.clone(),
                399,
                &EclatConfig {
                    short_circuit: sc,
                    ..Default::default()
                },
                &mut meter,
                &mut out,
            );
            meter.tid_cmp
        };
        assert!(run(true) * 5 < run(false));
    }

    #[test]
    fn prune_does_not_change_results() {
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: (1..=5)
                .map(|b| member(&[0, b], &(1..=(b + 2)).collect::<Vec<_>>()))
                .collect(),
        };
        let run = |prune: bool| {
            let mut out = FrequentSet::new();
            let mut meter = OpMeter::new();
            compute_frequent(
                class.clone(),
                2,
                &EclatConfig {
                    prune,
                    ..Default::default()
                },
                &mut meter,
                &mut out,
            );
            (out, meter)
        };
        let (plain, m_plain) = run(false);
        let (pruned, m_pruned) = run(true);
        assert_eq!(plain, pruned, "pruning must never change the answer");
        assert!(m_pruned.hash_probe > 0, "pruning costs probes");
        assert_eq!(m_plain.hash_probe, 0);
    }

    #[test]
    fn singleton_class_is_a_noop() {
        let class = EquivalenceClass {
            prefix: Itemset::of(&[0]),
            members: vec![member(&[0, 1], &[1, 2])],
        };
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent(class, 1, &EclatConfig::default(), &mut meter, &mut out);
        assert!(out.is_empty());
        assert_eq!(meter.cand_gen, 0);
    }
}
