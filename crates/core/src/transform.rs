//! Horizontal → vertical transformation helpers (§5.2.2 / §6.3).
//!
//! Two pieces: the triangular `L2` counting pass of the initialization
//! phase (§5.1 — *"we use an upper triangular array … Each processor
//! computes local support of each 2-itemset from its local database
//! partition"*), and the construction of per-2-itemset tid-lists from a
//! (block of a) horizontal database — born sorted because transactions
//! are scanned in tid order.

use dbstore::HorizontalDb;
use mining_types::{FxHashMap, ItemId, OpMeter, TriangleMatrix};
use std::ops::Range;
use tidlist::TidList;

/// Count all 2-itemsets of the block `range` into a triangular matrix.
pub fn count_pairs(db: &HorizontalDb, range: Range<usize>, meter: &mut OpMeter) -> TriangleMatrix {
    let _span = eclat_obs::trace::span_arg("scan:count_pairs", range.len() as u64);
    let mut tri = TriangleMatrix::new(db.num_items() as usize);
    for (_tid, items) in db.iter_range(range) {
        meter.record += 1;
        meter.pair_incr += (items.len() * items.len().saturating_sub(1) / 2) as u64;
        tri.count_transaction(items);
    }
    tri
}

/// Item counts of the block `range` (for the optional singleton output).
pub fn count_items(db: &HorizontalDb, range: Range<usize>, meter: &mut OpMeter) -> Vec<u32> {
    let mut counts = vec![0u32; db.num_items() as usize];
    for (_tid, items) in db.iter_range(range) {
        meter.record += 1;
        for &it in items {
            counts[it.index()] += 1;
        }
    }
    counts
}

/// Build the partial tid-lists of the given frequent 2-itemsets over the
/// block `range`. `pairs` maps `(a, b)` (with `a < b`) to an output slot;
/// the result vector is aligned with those slots.
///
/// This is the second database scan of Eclat (§5.2.2 step one: *"each
/// processor scans its local database and constructs partial tid-lists
/// for all the frequent 2-itemsets"*).
pub fn build_pair_tidlists(
    db: &HorizontalDb,
    range: Range<usize>,
    pairs: &FxHashMap<(ItemId, ItemId), usize>,
    meter: &mut OpMeter,
) -> Vec<TidList> {
    let _span = eclat_obs::trace::span_arg("scan:tidlists", range.len() as u64);
    let num_slots = pairs.len();
    let mut lists = vec![TidList::new(); num_slots];
    for (tid, items) in db.iter_range(range) {
        meter.record += 1;
        for (i, &a) in items.iter().enumerate() {
            for &b in &items[i + 1..] {
                meter.pair_incr += 1;
                if let Some(&slot) = pairs.get(&(a, b)) {
                    meter.record += 1;
                    lists[slot].push(tid);
                }
            }
        }
    }
    lists
}

/// Index frequent pairs `(a, b) → slot` in ascending pair order.
pub fn index_pairs(frequent_pairs: &[(ItemId, ItemId)]) -> FxHashMap<(ItemId, ItemId), usize> {
    let mut map = FxHashMap::default();
    for (slot, &(a, b)) in frequent_pairs.iter().enumerate() {
        assert!(a < b, "pairs must be ordered");
        let dup = map.insert((a, b), slot);
        assert!(dup.is_none(), "duplicate pair ({a:?},{b:?})");
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HorizontalDb {
        HorizontalDb::of(&[&[0, 1, 2], &[0, 1], &[1, 2], &[0, 2], &[0, 1, 2]])
    }

    #[test]
    fn count_pairs_matches_hand_counts() {
        let db = sample();
        let mut m = OpMeter::new();
        let tri = count_pairs(&db, 0..db.num_transactions(), &mut m);
        assert_eq!(tri.get(ItemId(0), ItemId(1)), 3);
        assert_eq!(tri.get(ItemId(0), ItemId(2)), 3);
        assert_eq!(tri.get(ItemId(1), ItemId(2)), 3);
        // ops: 2 triples (3 pairs each) + 3 pairs (1 each) = 9
        assert_eq!(m.pair_incr, 9);
        assert_eq!(m.record, 5);
    }

    #[test]
    fn partial_counts_sum_to_global() {
        let db = sample();
        let mut m = OpMeter::new();
        let mut left = count_pairs(&db, 0..2, &mut m);
        let right = count_pairs(&db, 2..5, &mut m);
        left.merge_from(&right);
        assert_eq!(left, count_pairs(&db, 0..5, &mut m));
    }

    #[test]
    fn tidlists_match_definition() {
        let db = sample();
        let pairs = vec![
            (ItemId(0), ItemId(1)),
            (ItemId(0), ItemId(2)),
            (ItemId(1), ItemId(2)),
        ];
        let idx = index_pairs(&pairs);
        let mut m = OpMeter::new();
        let lists = build_pair_tidlists(&db, 0..5, &idx, &mut m);
        assert_eq!(lists[0], TidList::of(&[0, 1, 4])); // {0,1}
        assert_eq!(lists[1], TidList::of(&[0, 3, 4])); // {0,2}
        assert_eq!(lists[2], TidList::of(&[0, 2, 4])); // {1,2}
                                                       // support == triangular count
        let tri = count_pairs(&db, 0..5, &mut m);
        for (slot, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(lists[slot].support(), tri.get(a, b));
        }
    }

    #[test]
    fn block_tidlists_concatenate_to_global() {
        let db = sample();
        let pairs = vec![(ItemId(0), ItemId(1))];
        let idx = index_pairs(&pairs);
        let mut m = OpMeter::new();
        let mut left = build_pair_tidlists(&db, 0..2, &idx, &mut m);
        let right = build_pair_tidlists(&db, 2..5, &idx, &mut m);
        left[0].append_partial(&right[0]);
        let global = build_pair_tidlists(&db, 0..5, &idx, &mut m);
        assert_eq!(left[0], global[0]);
    }

    #[test]
    fn count_items_basic() {
        let db = sample();
        let mut m = OpMeter::new();
        let counts = count_items(&db, 0..5, &mut m);
        assert_eq!(counts, vec![4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn index_pairs_rejects_unordered() {
        index_pairs(&[(ItemId(2), ItemId(1))]);
    }
}
