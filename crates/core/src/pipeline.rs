//! The shared three-phase Eclat pipeline.
//!
//! Every variant in this crate runs the same §7 structure — *"The first
//! scan for building L2, the second for transforming the database, and
//! the third for obtaining the frequent itemsets"* — and historically
//! each driver carried its own copy of the glue. This module owns the
//! three phases once:
//!
//! 1. **Initialization** ([`ExecutionPolicy::count_pairs`] →
//!    [`frequent_l2`], plus [`insert_frequent_singletons`]) — triangular
//!    pair counting on the horizontal layout (§5.1);
//! 2. **Transformation** ([`vertical_classes`]) — build the `L2`
//!    tid-lists and group them into prefix equivalence classes (§5.2.2,
//!    §4.1);
//! 3. **Asynchronous phase** ([`ExecutionPolicy::mine_classes`] →
//!    [`mine_class`]) — per-class recursive mining (§5.3), dispatched to
//!    the representation picked by [`EclatConfig::representation`].
//!
//! [`run`] composes the phases under an [`ExecutionPolicy`]: [`Serial`]
//! reproduces the sequential algorithm, [`Rayon`] the shared-memory one.
//! The cluster and hybrid variants interleave the phases with the
//! simulated communication/cost model, so they call the phase helpers
//! directly instead of [`run`] — but their per-class mining is the same
//! [`mine_classes`] used here, representation dispatch included.

use crate::compute::{compute_frequent_stats, EclatConfig, Representation};
use crate::equivalence::{classes_of_l2, ClassMember, EquivalenceClass};
use crate::transform::{build_pair_tidlists, count_items, count_pairs, index_pairs};
use dbstore::HorizontalDb;
use mining_types::stats::{ClassStats, KernelStats, MiningStats, PhaseStats};
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport, OpMeter, TriangleMatrix};
use rayon::prelude::*;
use std::time::Instant;
use tidlist::{AdaptiveSet, BitmapSet, ChunkedList, GallopList};

/// Trace/stats label of the initialization phase (§5.1 counting).
pub const PHASE_INIT: &str = "init";
/// Trace/stats label of the vertical-transformation phase (§5.2.2).
pub const PHASE_TRANSFORM: &str = "transform";
/// Trace/stats label of the asynchronous per-class mining phase (§5.3).
pub const PHASE_ASYNC: &str = "async";
/// Trace/stats label of the final result reduction (cluster variants).
pub const PHASE_REDUCE: &str = "reduce";

/// How the phases map onto compute resources. The policy owns the two
/// parallelizable steps; everything else is inherently ordered (the
/// vertical transform must preserve tid order).
pub trait ExecutionPolicy {
    /// Phase 1: triangular counts of all 2-itemsets over the whole
    /// database. All counting work must be merged into `meter`.
    fn count_pairs(&self, db: &HorizontalDb, meter: &mut OpMeter) -> TriangleMatrix;

    /// Phase 3: mine every `L2` class (members are recorded too), merging
    /// all per-task metering into `meter`, all results into `out`, and
    /// appending one [`ClassStats`] per class to `stats` in class order
    /// (the vendored rayon's collect preserves input order, so parallel
    /// stats line up with serial ones).
    fn mine_classes(
        &self,
        classes: Vec<EquivalenceClass>,
        threshold: u32,
        cfg: &EclatConfig,
        meter: &mut OpMeter,
        out: &mut FrequentSet,
        stats: &mut Vec<ClassStats>,
    );
}

/// Single-threaded execution — the paper's algorithm on one processor.
pub struct Serial;

impl ExecutionPolicy for Serial {
    fn count_pairs(&self, db: &HorizontalDb, meter: &mut OpMeter) -> TriangleMatrix {
        count_pairs(db, 0..db.num_transactions(), meter)
    }

    fn mine_classes(
        &self,
        classes: Vec<EquivalenceClass>,
        threshold: u32,
        cfg: &EclatConfig,
        meter: &mut OpMeter,
        out: &mut FrequentSet,
        stats: &mut Vec<ClassStats>,
    ) {
        for (i, class) in classes.into_iter().enumerate() {
            let _span = eclat_obs::trace::span_arg("class", i as u64);
            stats.push(mine_class(class, threshold, cfg, meter, out));
        }
    }
}

/// Shared-memory execution on rayon: blocked counting in phase 1, one
/// task per equivalence class in phase 3 (classes are independent, §4.1).
/// Per-task meters are merged into the caller's meter, so parallel runs
/// report the same operation counts as serial ones.
pub struct Rayon;

impl ExecutionPolicy for Rayon {
    fn count_pairs(&self, db: &HorizontalDb, meter: &mut OpMeter) -> TriangleMatrix {
        let n = db.num_transactions();
        let block = (n / rayon::current_num_threads().max(1))
            .max(1024)
            .min(n.max(1));
        let blocks: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(block)
            .map(|s| s..(s + block).min(n))
            .collect();
        let counted = blocks
            .par_iter()
            .map(|r| {
                let mut m = OpMeter::new();
                let tri = count_pairs(db, r.clone(), &mut m);
                (tri, m)
            })
            .reduce_with(|(mut tri_a, mut m_a), (tri_b, m_b)| {
                tri_a.merge_from(&tri_b);
                m_a.merge(&m_b);
                (tri_a, m_a)
            });
        match counted {
            Some((tri, m)) => {
                meter.merge(&m);
                tri
            }
            None => count_pairs(db, 0..0, meter), // empty database
        }
    }

    fn mine_classes(
        &self,
        classes: Vec<EquivalenceClass>,
        threshold: u32,
        cfg: &EclatConfig,
        meter: &mut OpMeter,
        out: &mut FrequentSet,
        stats: &mut Vec<ClassStats>,
    ) {
        let indexed: Vec<(usize, EquivalenceClass)> = classes.into_iter().enumerate().collect();
        let partials: Vec<(FrequentSet, OpMeter, ClassStats)> = indexed
            .into_par_iter()
            .map(|(i, class)| {
                let _span = eclat_obs::trace::span_arg("class", i as u64);
                let mut local = FrequentSet::new();
                let mut m = OpMeter::new();
                let cs = mine_class(class, threshold, cfg, &mut m, &mut local);
                (local, m, cs)
            })
            .collect();
        for (p, m, cs) in partials {
            out.merge(p);
            meter.merge(&m);
            stats.push(cs);
        }
    }
}

/// Shared-memory execution on exactly `P` scoped OS threads — the shape
/// a cluster *host* takes in the paper's hybrid model (§8.1): the host
/// owns a set of scheduled classes and its local processors share them.
/// Unlike [`Rayon`] (which sizes its pool from the machine), the thread
/// count is explicit, so a distributed worker can be told to act as a
/// P-processor host. Classes are split over the threads by the same LPT
/// cost model the cross-host schedule uses
/// ([`crate::schedule::shard_classes`]); per-thread meters are merged, so
/// operation counts match serial runs exactly.
pub struct FixedThreads {
    threads: usize,
}

impl FixedThreads {
    /// A policy running on `threads` OS threads (`0` and `1` both mean
    /// single-threaded).
    pub fn new(threads: usize) -> FixedThreads {
        FixedThreads {
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl ExecutionPolicy for FixedThreads {
    fn count_pairs(&self, db: &HorizontalDb, meter: &mut OpMeter) -> TriangleMatrix {
        count_pairs_blocked(db, self.threads, meter)
    }

    fn mine_classes(
        &self,
        classes: Vec<EquivalenceClass>,
        threshold: u32,
        cfg: &EclatConfig,
        meter: &mut OpMeter,
        out: &mut FrequentSet,
        stats: &mut Vec<ClassStats>,
    ) {
        let shards = crate::schedule::shard_classes(&classes, self.threads, cfg.heuristic);
        let slots: Vec<std::sync::Mutex<Option<EquivalenceClass>>> = classes
            .into_iter()
            .map(|c| std::sync::Mutex::new(Some(c)))
            .collect();
        let fetch = |i: usize| {
            Ok(slots[i]
                .lock()
                .expect("class slot poisoned")
                .take()
                .expect("each class is fetched exactly once"))
        };
        let reports = mine_shards(&shards, &fetch, threshold, cfg, out, stats)
            .expect("in-memory fetch cannot fail");
        for r in &reports {
            meter.merge(&r.ops);
        }
    }
}

/// Phase 1 on `threads` scoped OS threads: split the transaction range
/// into contiguous blocks, count each block on its own thread, and merge
/// the partial triangles (sum of partial counts — the same reduction the
/// cluster variants perform across processors). Per-block meters are
/// merged into `meter`, so counts equal the serial pass.
pub fn count_pairs_blocked(
    db: &HorizontalDb,
    threads: usize,
    meter: &mut OpMeter,
) -> TriangleMatrix {
    let n = db.num_transactions();
    let threads = threads.max(1);
    if threads == 1 || n < 2 * threads {
        return count_pairs(db, 0..n, meter);
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(n))
        .collect();
    let partials: Vec<(TriangleMatrix, OpMeter)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    let mut m = OpMeter::new();
                    (count_pairs(db, r, &mut m), m)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("counting thread panicked"))
            .collect()
    });
    let mut iter = partials.into_iter();
    let (mut tri, m) = iter.next().expect("at least one block");
    meter.merge(&m);
    for (t, m) in iter {
        tri.merge_from(&t);
        meter.merge(&m);
    }
    tri
}

/// Phase 2's tid-list construction on `threads` scoped OS threads: each
/// thread scans a contiguous sub-range of `range` (ascending tids), then
/// the per-slot partial lists are stitched in sub-range order — the
/// intra-host variant of the §6.3 offset placement, so every list comes
/// out identical to a serial scan. Meters merge to the serial counts.
pub fn build_pair_tidlists_blocked(
    db: &HorizontalDb,
    range: std::ops::Range<usize>,
    idx: &mining_types::FxHashMap<(ItemId, ItemId), usize>,
    threads: usize,
    meter: &mut OpMeter,
) -> Vec<tidlist::TidList> {
    let n = range.len();
    let threads = threads.max(1);
    if threads == 1 || n < 2 * threads {
        return build_pair_tidlists(db, range, idx, meter);
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|s| range.start + s..range.start + (s + chunk).min(n))
        .collect();
    let partials: Vec<(Vec<tidlist::TidList>, OpMeter)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    let mut m = OpMeter::new();
                    (build_pair_tidlists(db, r, idx, &mut m), m)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("transform thread panicked"))
            .collect()
    });
    let mut iter = partials.into_iter();
    let (mut lists, m) = iter.next().expect("at least one block");
    meter.merge(&m);
    for (part, m) in iter {
        meter.merge(&m);
        for (slot, p) in part.into_iter().enumerate() {
            lists[slot].append_partial(&p);
        }
    }
    lists
}

/// What one thread of [`mine_shards`] did: wall-clock spent mining,
/// wall-clock spent fetching classes (disk faults in an out-of-core run,
/// ~0 in-memory), and the merged operation counts of its shard.
#[derive(Clone, Debug, Default)]
pub struct ThreadReport {
    /// Seconds this thread spent inside the mining kernel.
    pub compute_secs: f64,
    /// Seconds this thread spent fetching classes (out-of-core faults).
    pub fetch_secs: f64,
    /// Merged kernel operation counts for the shard.
    pub ops: OpMeter,
}

/// Phase 3 across explicit per-thread shards with a pluggable class
/// source — the execution core shared by [`FixedThreads`] (in-memory)
/// and the distributed worker's out-of-core path (classes faulted back
/// from a spill store).
///
/// `shards[t]` holds the class indices thread `t` mines; `fetch(i)`
/// materialises class `i` (the wall-clock it takes — lock wait plus any
/// disk fault — is accounted to that thread's `fetch_secs`). Results
/// merge into `out`; per-class stats land in `stats` in ascending
/// class-index order (= class order, matching the serial pipeline); the
/// returned reports are indexed by thread.
///
/// # Errors
/// The first `fetch` error aborts that thread's shard and is returned.
pub fn mine_shards<F>(
    shards: &[Vec<usize>],
    fetch: &F,
    threshold: u32,
    cfg: &EclatConfig,
    out: &mut FrequentSet,
    stats: &mut Vec<ClassStats>,
) -> Result<Vec<ThreadReport>, String>
where
    F: Fn(usize) -> Result<EquivalenceClass, String> + Sync,
{
    type ShardOut = Result<(FrequentSet, Vec<(usize, ClassStats)>, ThreadReport), String>;
    let results: Vec<ShardOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(t, ids)| {
                scope.spawn(move || -> ShardOut {
                    let _shard_span = eclat_obs::trace::span_arg("mine:shard", t as u64);
                    let mut local = FrequentSet::new();
                    let mut tagged = Vec::with_capacity(ids.len());
                    let mut rep = ThreadReport::default();
                    for &i in ids {
                        let t_fetch = Instant::now();
                        let class = fetch(i)?;
                        rep.fetch_secs += t_fetch.elapsed().as_secs_f64();
                        let _class_span = eclat_obs::trace::span_arg("class", i as u64);
                        let t_mine = Instant::now();
                        tagged.push((
                            i,
                            mine_class(class, threshold, cfg, &mut rep.ops, &mut local),
                        ));
                        rep.compute_secs += t_mine.elapsed().as_secs_f64();
                    }
                    Ok((local, tagged, rep))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mining thread panicked"))
            .collect()
    });
    let mut reports = Vec::with_capacity(shards.len());
    let mut all_tagged: Vec<(usize, ClassStats)> = Vec::new();
    for r in results {
        let (local, tagged, rep) = r?;
        out.merge(local);
        all_tagged.extend(tagged);
        reports.push(rep);
    }
    all_tagged.sort_by_key(|&(i, _)| i);
    stats.extend(all_tagged.into_iter().map(|(_, cs)| cs));
    Ok(reports)
}

/// Extract the frequent pair list from phase 1's triangular counts.
pub fn frequent_l2(tri: &TriangleMatrix, threshold: u32) -> Vec<(ItemId, ItemId)> {
    tri.frequent_pairs(threshold)
        .map(|(a, b, _)| (a, b))
        .collect()
}

/// Piggybacked singleton pass (only when `cfg.include_singletons`): count
/// 1-itemsets over the horizontal layout and record the frequent ones.
/// Returns `(items_counted, items_frequent)` — the level-1 candidate and
/// frequent counts for the stats report.
pub fn insert_frequent_singletons(
    db: &HorizontalDb,
    threshold: u32,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) -> (u64, u64) {
    let counts = count_items(db, 0..db.num_transactions(), meter);
    let mut inserted = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c >= threshold {
            out.insert(Itemset::single(ItemId(i as u32)), c);
            inserted += 1;
        }
    }
    (counts.len() as u64, inserted)
}

/// Phase 2: vertical transformation — one ordered scan building the `L2`
/// tid-lists, grouped into prefix equivalence classes.
pub fn vertical_classes(
    db: &HorizontalDb,
    l2: &[(ItemId, ItemId)],
    meter: &mut OpMeter,
) -> Vec<EquivalenceClass> {
    let idx = index_pairs(l2);
    let lists = build_pair_tidlists(db, 0..db.num_transactions(), &idx, meter);
    classes_of_l2(
        l2.iter()
            .zip(lists)
            .map(|(&(a, b), tl)| (a, b, tl))
            .collect(),
    )
}

/// Phase 3 for one class: record its members (they are frequent by
/// construction), then run the recursive kernel on the configured
/// representation. Returns the per-class work statistics.
pub fn mine_class(
    class: EquivalenceClass,
    threshold: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) -> ClassStats {
    for m in &class.members {
        out.insert(m.itemset.clone(), m.tids.support());
    }
    let mut stats = ClassStats {
        prefix: class.prefix.items().iter().map(|i| i.0).collect(),
        members: class.members.len() as u64,
        kernel: KernelStats::new(),
    };
    compute_class_stats(class, threshold, cfg, meter, out, &mut stats.kernel);
    stats
}

/// Phase 3 for a batch of classes into a fresh result set — the shape the
/// cluster/hybrid per-processor loops want. Returns the results plus one
/// [`ClassStats`] per class, in class order.
pub fn mine_classes(
    classes: Vec<EquivalenceClass>,
    threshold: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> (FrequentSet, Vec<ClassStats>) {
    let mut out = FrequentSet::new();
    let mut stats = Vec::with_capacity(classes.len());
    for class in classes {
        stats.push(mine_class(class, threshold, cfg, meter, &mut out));
    }
    (out, stats)
}

/// Run the recursive kernel on a tid-list `L2` class, dispatching on
/// [`EclatConfig::representation`]. The class members themselves must
/// already be recorded by the caller ([`mine_class`] does both).
///
/// `Diffset` wraps each member with fuel 0 — the first join below `L2`
/// converts to `d(xy·z) = t(xy) − t(xz)` and the subtree continues on
/// diffsets, which is exactly d-Eclat. `AutoSwitch { depth }` delays the
/// conversion `depth` further levels.
pub fn compute_class(
    class: EquivalenceClass,
    threshold: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) {
    compute_class_stats(class, threshold, cfg, meter, out, &mut KernelStats::new());
}

/// [`compute_class`] that also fills the kernel work counters.
pub fn compute_class_stats(
    class: EquivalenceClass,
    threshold: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
    stats: &mut KernelStats,
) {
    match cfg.representation {
        Representation::TidList if cfg.gallop => {
            compute_frequent_stats(gallop_class(class), threshold, cfg, meter, out, stats)
        }
        Representation::TidList => compute_frequent_stats(class, threshold, cfg, meter, out, stats),
        Representation::Diffset => {
            compute_frequent_stats(fuel_class(class, 0), threshold, cfg, meter, out, stats)
        }
        Representation::AutoSwitch { depth } => {
            compute_frequent_stats(fuel_class(class, depth), threshold, cfg, meter, out, stats)
        }
        Representation::Bitmap => {
            compute_frequent_stats(bitmap_class(class), threshold, cfg, meter, out, stats)
        }
        Representation::AutoDensity { permille } => {
            if class_is_dense(&class, permille) {
                compute_frequent_stats(bitmap_class(class), threshold, cfg, meter, out, stats)
            } else {
                compute_frequent_stats(chunked_class(class), threshold, cfg, meter, out, stats)
            }
        }
    }
}

/// Wrap a tid-list class into the adaptive representation with the given
/// switch budget (`fuel = 0` → pure diffsets below `L2`).
pub(crate) fn fuel_class(class: EquivalenceClass, fuel: u32) -> EquivalenceClass<AdaptiveSet> {
    EquivalenceClass {
        prefix: class.prefix,
        members: class
            .members
            .into_iter()
            .map(|m| ClassMember {
                itemset: m.itemset,
                tids: AdaptiveSet::with_fuel(m.tids, fuel),
            })
            .collect(),
    }
}

/// Wrap a tid-list class into the adaptive-galloping representation
/// (`EclatConfig::gallop`): joins go through
/// `TidList::intersect_adaptive`, picking the exponential-search kernel
/// on skewed operands.
pub(crate) fn gallop_class(class: EquivalenceClass) -> EquivalenceClass<GallopList> {
    EquivalenceClass {
        prefix: class.prefix,
        members: class
            .members
            .into_iter()
            .map(|m| ClassMember {
                itemset: m.itemset,
                tids: GallopList(m.tids),
            })
            .collect(),
    }
}

/// Convert a tid-list class to fixed-width bitmaps sharing one
/// word-aligned frame (`BitmapSet::frame_of` over the members), so every
/// join below `L2` is an aligned word `AND` + popcount.
pub(crate) fn bitmap_class(class: EquivalenceClass) -> EquivalenceClass<BitmapSet> {
    let (base, words) = BitmapSet::frame_of(class.members.iter().map(|m| &m.tids));
    EquivalenceClass {
        prefix: class.prefix,
        members: class
            .members
            .into_iter()
            .map(|m| ClassMember {
                tids: BitmapSet::from_tidlist(&m.tids, base, words),
                itemset: m.itemset,
            })
            .collect(),
    }
}

/// Wrap a tid-list class into the chunked-kernel representation: joins
/// run the 8-wide unrolled block merge / chunked galloping kernels — the
/// sparse side of `auto-density`.
pub(crate) fn chunked_class(class: EquivalenceClass) -> EquivalenceClass<ChunkedList> {
    EquivalenceClass {
        prefix: class.prefix,
        members: class
            .members
            .into_iter()
            .map(|m| ClassMember {
                itemset: m.itemset,
                tids: ChunkedList(m.tids),
            })
            .collect(),
    }
}

/// The `auto-density` decision: a class is dense when its average member
/// density over the class's word-aligned tid window reaches
/// `permille / 1000`, i.e. `Σ support · 1000 ≥ permille · members · span`.
/// Integer arithmetic throughout so the decision is exactly reproducible
/// across hosts; an empty window (all members empty) counts as dense —
/// the zero-width bitmap is free.
pub(crate) fn class_is_dense(class: &EquivalenceClass, permille: u32) -> bool {
    let (_, words) = BitmapSet::frame_of(class.members.iter().map(|m| &m.tids));
    let span = words as u64 * 64;
    let sum: u64 = class
        .members
        .iter()
        .map(|m| u64::from(m.tids.support()))
        .sum();
    sum * 1000 >= u64::from(permille) * class.members.len() as u64 * span
}

/// The full three-phase pipeline under a policy. This is the whole
/// sequential/parallel algorithm; the cluster variants compose the phase
/// helpers themselves around the communication model.
pub fn run(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    policy: &impl ExecutionPolicy,
) -> FrequentSet {
    let threshold = minsup.count_threshold(db.num_transactions());
    let mut out = FrequentSet::new();

    // --- Phase 1 (initialization, §5.1): triangular counts of all pairs.
    let tri = policy.count_pairs(db, meter);
    let l2 = frequent_l2(&tri, threshold);

    if cfg.include_singletons {
        insert_frequent_singletons(db, threshold, meter, &mut out);
    }
    if l2.is_empty() {
        return out;
    }

    // --- Phase 2 (transformation, §5.2.2): vertical tid-lists for L2.
    let classes = vertical_classes(db, &l2, meter);

    // --- Phase 3 (asynchronous, §5.3): per-class recursive mining.
    policy.mine_classes(classes, threshold, cfg, meter, &mut out, &mut Vec::new());
    out
}

/// [`run`] that also produces the structured [`MiningStats`] report:
/// per-phase wall-clock/op deltas, per-level candidate/frequent counts,
/// and per-class kernel work. `variant` labels the report
/// (`"sequential"` / `"parallel"`); live runs have no simulated cluster,
/// so `stats.cluster` is `None`.
pub fn run_stats(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    policy: &impl ExecutionPolicy,
    variant: &str,
) -> (FrequentSet, MiningStats) {
    let threshold = minsup.count_threshold(db.num_transactions());
    let mut stats = MiningStats::new("eclat", variant, &cfg.representation.to_string());
    stats.transactions = db.num_transactions() as u64;
    stats.threshold = u64::from(threshold);
    let mut out = FrequentSet::new();
    let start_ops = *meter;

    // --- Phase 1 (initialization, §5.1).
    let span_init = eclat_obs::trace::span(PHASE_INIT);
    let t_init = Instant::now();
    let tri = policy.count_pairs(db, meter);
    let l2 = frequent_l2(&tri, threshold);
    stats.record_level(2, tri.cells() as u64, l2.len() as u64);
    if cfg.include_singletons {
        let (counted, inserted) = insert_frequent_singletons(db, threshold, meter, &mut out);
        stats.record_level(1, counted, inserted);
    }
    stats.phases.push(PhaseStats {
        label: PHASE_INIT.to_string(),
        secs: t_init.elapsed().as_secs_f64(),
        ops: meter.since(&start_ops),
    });
    drop(span_init);
    if l2.is_empty() {
        stats.num_frequent = out.len() as u64;
        stats.total_ops = meter.since(&start_ops);
        return (out, stats);
    }

    // --- Phase 2 (transformation, §5.2.2).
    let span_transform = eclat_obs::trace::span(PHASE_TRANSFORM);
    let t_transform = Instant::now();
    let ops_before_transform = *meter;
    let classes = vertical_classes(db, &l2, meter);
    stats.phases.push(PhaseStats {
        label: PHASE_TRANSFORM.to_string(),
        secs: t_transform.elapsed().as_secs_f64(),
        ops: meter.since(&ops_before_transform),
    });
    drop(span_transform);

    // --- Phase 3 (asynchronous, §5.3).
    let span_async = eclat_obs::trace::span(PHASE_ASYNC);
    let t_async = Instant::now();
    let ops_before_async = *meter;
    let mut class_stats = Vec::new();
    policy.mine_classes(classes, threshold, cfg, meter, &mut out, &mut class_stats);
    stats.phases.push(PhaseStats {
        label: PHASE_ASYNC.to_string(),
        secs: t_async.elapsed().as_secs_f64(),
        ops: meter.since(&ops_before_async),
    });
    drop(span_async);
    for cs in class_stats {
        stats.add_class(cs);
    }
    stats.sort_classes();
    stats.num_frequent = out.len() as u64;
    stats.total_ops = meter.since(&start_ops);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apriori::reference::random_db;

    #[test]
    fn serial_and_rayon_policies_agree() {
        let db = random_db(17, 150, 12, 6);
        let minsup = MinSupport::from_percent(6.0);
        let cfg = EclatConfig::default();
        let mut m_serial = OpMeter::new();
        let mut m_rayon = OpMeter::new();
        let a = run(&db, minsup, &cfg, &mut m_serial, &Serial);
        let b = run(&db, minsup, &cfg, &mut m_rayon, &Rayon);
        assert_eq!(a, b);
        // Same work, different schedule: the merged parallel meter must
        // report the same candidate count as the serial one.
        assert_eq!(m_serial.cand_gen, m_rayon.cand_gen);
        assert_eq!(m_serial.record, m_rayon.record);
    }

    #[test]
    fn fixed_threads_policy_matches_serial_for_any_p() {
        let db = random_db(17, 150, 12, 6);
        let minsup = MinSupport::from_percent(6.0);
        let cfg = EclatConfig::default();
        let mut m_serial = OpMeter::new();
        let expect = run(&db, minsup, &cfg, &mut m_serial, &Serial);
        for p in [1, 2, 3, 8] {
            let mut m = OpMeter::new();
            let fs = run(&db, minsup, &cfg, &mut m, &FixedThreads::new(p));
            assert_eq!(fs, expect, "P={p}");
            // Merged per-thread meters must equal the serial counts.
            assert_eq!(m, m_serial, "P={p}");
        }
        assert_eq!(FixedThreads::new(0).threads(), 1, "0 means single-threaded");
    }

    #[test]
    fn fixed_threads_stats_match_serial() {
        let db = random_db(29, 200, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let cfg = EclatConfig::default();
        let (fs_s, seq) = run_stats(&db, minsup, &cfg, &mut OpMeter::new(), &Serial, "x");
        let (fs_p, par) = run_stats(
            &db,
            minsup,
            &cfg,
            &mut OpMeter::new(),
            &FixedThreads::new(3),
            "x",
        );
        assert_eq!(fs_s, fs_p);
        assert_eq!(seq.total_ops, par.total_ops);
        assert_eq!(seq.levels, par.levels);
        // Class stats come back in class order despite the LPT sharding.
        assert_eq!(seq.classes, par.classes);
        for (a, b) in seq.phases.iter().zip(&par.phases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.ops, b.ops);
        }
    }

    #[test]
    fn blocked_transform_matches_serial_scan() {
        let db = random_db(41, 300, 12, 6);
        let tri = count_pairs(&db, 0..db.num_transactions(), &mut OpMeter::new());
        let l2 = frequent_l2(&tri, 5);
        assert!(!l2.is_empty());
        let idx = index_pairs(&l2);
        let mut m_serial = OpMeter::new();
        let serial = build_pair_tidlists(&db, 0..db.num_transactions(), &idx, &mut m_serial);
        for threads in [1, 2, 5] {
            let mut m = OpMeter::new();
            let blocked =
                build_pair_tidlists_blocked(&db, 0..db.num_transactions(), &idx, threads, &mut m);
            assert_eq!(blocked, serial, "threads={threads}");
            assert_eq!(m, m_serial, "threads={threads}");
        }
    }

    #[test]
    fn mine_shards_propagates_fetch_errors() {
        let cfg = EclatConfig::default();
        let fetch = |_i: usize| Err("spill store gone".to_string());
        let err = mine_shards(
            &[vec![0usize]],
            &fetch,
            1,
            &cfg,
            &mut FrequentSet::new(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("spill store gone"));
    }

    #[test]
    fn representations_agree_end_to_end() {
        let db = random_db(23, 120, 10, 5);
        let minsup = MinSupport::from_percent(8.0);
        let base = run(
            &db,
            minsup,
            &EclatConfig::default(),
            &mut OpMeter::new(),
            &Serial,
        );
        for repr in [
            Representation::Diffset,
            Representation::AutoSwitch { depth: 1 },
            Representation::AutoSwitch { depth: 3 },
            Representation::Bitmap,
            Representation::AutoDensity { permille: 8 },
            Representation::AutoDensity { permille: 1000 },
            Representation::AutoDensity { permille: 0 },
        ] {
            let cfg = EclatConfig::with_representation(repr);
            let fs = run(&db, minsup, &cfg, &mut OpMeter::new(), &Serial);
            assert_eq!(fs, base, "{repr:?}");
        }
    }

    #[test]
    fn gallop_kernel_agrees_with_merge_kernel() {
        let db = random_db(23, 120, 10, 5);
        let minsup = MinSupport::from_percent(8.0);
        let base = run(
            &db,
            minsup,
            &EclatConfig::default(),
            &mut OpMeter::new(),
            &Serial,
        );
        let cfg = EclatConfig {
            gallop: true,
            ..Default::default()
        };
        let mut meter = OpMeter::new();
        assert_eq!(run(&db, minsup, &cfg, &mut meter, &Serial), base);
        assert!(meter.tid_cmp > 0, "galloping joins must stay metered");
    }

    #[test]
    fn run_stats_reports_phases_levels_and_classes() {
        let db = random_db(17, 150, 12, 6);
        let minsup = MinSupport::from_percent(6.0);
        let cfg = EclatConfig::default();
        let mut meter = OpMeter::new();
        let (fs, stats) = run_stats(&db, minsup, &cfg, &mut meter, &Serial, "sequential");
        assert_eq!(fs, run(&db, minsup, &cfg, &mut OpMeter::new(), &Serial));
        assert_eq!(stats.variant, "sequential");
        assert_eq!(stats.representation, "tidlist");
        assert_eq!(stats.transactions, 150);
        assert_eq!(stats.num_frequent, fs.len() as u64);
        assert_eq!(stats.total_ops, meter);
        // The three live phases in order, with ops attributed to each.
        let labels: Vec<&str> = stats.phases.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec![PHASE_INIT, PHASE_TRANSFORM, PHASE_ASYNC]);
        assert!(stats.phases[0].ops.pair_incr > 0, "counting in init");
        assert!(stats.phases[2].ops.tid_cmp > 0, "joins in async");
        // Level 2 comes from the triangle; deeper levels from the kernel.
        assert_eq!(stats.levels[0].size, 2);
        assert!(stats.levels[0].candidates >= stats.levels[0].frequent);
        let l2_frequent = stats.levels[0].frequent;
        assert_eq!(
            l2_frequent,
            fs.iter().filter(|(is, _)| is.len() == 2).count() as u64
        );
        // Classes are sorted by prefix and their frequent counts plus L2
        // plus singletons account for the whole output.
        assert!(!stats.classes.is_empty());
        for w in stats.classes.windows(2) {
            assert!(w[0].prefix < w[1].prefix);
        }
        let kernel_frequent: u64 = stats.classes.iter().map(|c| c.kernel.frequent).sum();
        assert_eq!(kernel_frequent + l2_frequent, stats.num_frequent);
        assert!(stats.cluster.is_none(), "live run has no simulated cluster");
    }

    #[test]
    fn run_stats_parallel_equals_sequential() {
        let db = random_db(29, 200, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let cfg = EclatConfig::default();
        let (fs_s, seq) = run_stats(&db, minsup, &cfg, &mut OpMeter::new(), &Serial, "x");
        let (fs_p, par) = run_stats(&db, minsup, &cfg, &mut OpMeter::new(), &Rayon, "x");
        assert_eq!(fs_s, fs_p);
        // Everything except wall-clock seconds is schedule-independent.
        assert_eq!(seq.total_ops, par.total_ops);
        assert_eq!(seq.levels, par.levels);
        assert_eq!(seq.classes, par.classes);
        assert_eq!(seq.kernel_totals(), par.kernel_totals());
        for (a, b) in seq.phases.iter().zip(&par.phases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.ops, b.ops);
        }
    }

    #[test]
    fn run_stats_empty_l2_still_reports() {
        let db = dbstore::HorizontalDb::of(&[&[0, 1], &[2, 3], &[4, 5]]);
        let (fs, stats) = run_stats(
            &db,
            MinSupport::from_fraction(0.6),
            &EclatConfig::with_singletons(),
            &mut OpMeter::new(),
            &Serial,
            "sequential",
        );
        assert_eq!(stats.num_frequent, fs.len() as u64);
        assert_eq!(stats.phases.len(), 1, "only init runs");
        assert_eq!(stats.phases[0].label, PHASE_INIT);
        // Level 1 recorded from the singleton pass, level 2 all-infrequent.
        assert!(stats.levels.iter().any(|l| l.size == 1));
        let l2 = stats.levels.iter().find(|l| l.size == 2).unwrap();
        assert_eq!(l2.frequent, 0);
    }

    #[test]
    fn empty_database_under_both_policies() {
        let db = dbstore::HorizontalDb::of(&[]);
        let cfg = EclatConfig::default();
        for policy in [&Serial as &dyn ExecutionPolicy, &Rayon] {
            let mut out = FrequentSet::new();
            let mut meter = OpMeter::new();
            let tri = policy.count_pairs(&db, &mut meter);
            assert!(frequent_l2(&tri, 1).is_empty());
            policy.mine_classes(vec![], 1, &cfg, &mut meter, &mut out, &mut Vec::new());
            assert!(out.is_empty());
        }
        assert!(run(
            &db,
            MinSupport::from_percent(1.0),
            &cfg,
            &mut OpMeter::new(),
            &Rayon
        )
        .is_empty());
    }
}
