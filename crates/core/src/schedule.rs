//! Greedy equivalence-class scheduling (§5.2.1).
//!
//! *"Each equivalence class is assigned a weighting factor based on the
//! number of elements in the class … we assign the weight C(s,2) … we
//! generate a schedule using a greedy heuristic. We sort the classes on
//! the weights, and assign each class in turn to the least loaded
//! processor … Ties are broken by selecting the processor with the
//! smaller identifier."*

use crate::equivalence::EquivalenceClass;
use mining_types::itemset::choose2;
use mining_types::ItemId;
use std::ops::Range;

/// Which class-weight heuristic to schedule with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleHeuristic {
    /// The paper's default: weight `C(s, 2)` for a class of `s` members.
    GreedyPairs,
    /// Weight by the sum of member supports — the refinement the paper
    /// floats as ongoing research.
    SupportWeighted,
    /// No balancing: class `i` to processor `i mod P` (ablation baseline).
    RoundRobin,
}

/// The result of scheduling: `owner[c]` is the processor assigned class
/// `c` (indices into the input class slice), plus the resulting loads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Owning processor per class index.
    pub owner: Vec<usize>,
    /// Total scheduled weight per processor.
    pub load: Vec<u64>,
}

impl Assignment {
    /// Class indices owned by processor `p`, ascending.
    pub fn classes_of(&self, p: usize) -> Vec<usize> {
        (0..self.owner.len())
            .filter(|&c| self.owner[c] == p)
            .collect()
    }

    /// Load imbalance: `max load / mean load` (1.0 = perfect). Returns
    /// 1.0 when total weight is zero.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.load.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.load.len() as f64;
        let max = *self.load.iter().max().unwrap() as f64;
        max / mean
    }
}

/// Schedule `classes` onto `num_procs` processors.
///
/// # Panics
/// Panics if `num_procs == 0`.
pub fn schedule(
    classes: &[EquivalenceClass],
    num_procs: usize,
    heuristic: ScheduleHeuristic,
) -> Assignment {
    let weights: Vec<u64> = classes
        .iter()
        .map(|c| match heuristic {
            ScheduleHeuristic::GreedyPairs | ScheduleHeuristic::RoundRobin => c.weight(),
            ScheduleHeuristic::SupportWeighted => c.support_weight(),
        })
        .collect();
    schedule_weights(&weights, num_procs, heuristic)
}

/// Shard `classes` across the `num_procs` co-located processors of one
/// host (OS threads of a worker, or the simulated hybrid's intra-host
/// processors): the same `C(s,2)` / support-weight cost model as the
/// cross-host schedule, applied at thread granularity. Returns ascending
/// class indices per processor — the per-thread work lists.
///
/// # Panics
/// Panics if `num_procs == 0`.
pub fn shard_classes(
    classes: &[EquivalenceClass],
    num_procs: usize,
    heuristic: ScheduleHeuristic,
) -> Vec<Vec<usize>> {
    let a = schedule(classes, num_procs, heuristic);
    (0..num_procs).map(|p| a.classes_of(p)).collect()
}

/// Schedule by raw weights (exposed for property tests).
pub fn schedule_weights(
    weights: &[u64],
    num_procs: usize,
    heuristic: ScheduleHeuristic,
) -> Assignment {
    assert!(num_procs > 0, "need at least one processor");
    let mut owner = vec![0usize; weights.len()];
    let mut load = vec![0u64; num_procs];

    match heuristic {
        ScheduleHeuristic::RoundRobin => {
            for (c, &w) in weights.iter().enumerate() {
                let p = c % num_procs;
                owner[c] = p;
                load[p] += w;
            }
        }
        ScheduleHeuristic::GreedyPairs | ScheduleHeuristic::SupportWeighted => {
            // Sort class indices by descending weight (stable: ties keep
            // class order, making the schedule deterministic).
            let mut order: Vec<usize> = (0..weights.len()).collect();
            order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
            // Min-heap keyed on (load, processor id): popping yields the
            // least-loaded processor with ties going to the smaller id —
            // the paper's tie-break — in O(log P) per class instead of an
            // O(P) scan.
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                (0..num_procs).map(|p| Reverse((0u64, p))).collect();
            for c in order {
                let Reverse((l, p)) = heap.pop().expect("heap holds every processor");
                owner[c] = p;
                load[p] = l + weights[c];
                heap.push(Reverse((load[p], p)));
            }
        }
    }
    Assignment { owner, load }
}

/// A complete level-2 schedule derived from the sorted global `L2`:
/// equivalence-class boundaries, the greedy class assignment, and the
/// flattened per-pair owner map the tid-list exchange routes by.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct L2Schedule {
    /// Contiguous index ranges into `l2`, one per equivalence class
    /// (pairs sharing a first item).
    pub class_ranges: Vec<Range<usize>>,
    /// The class→processor assignment.
    pub assignment: Assignment,
    /// `slot_owner[s]` is the processor owning `l2[s]`'s class.
    pub slot_owner: Vec<usize>,
}

/// Partition a sorted global `L2` (ascending `(i, j)` pairs with their
/// supports) into first-item equivalence classes and schedule them.
///
/// Both the Memory Channel simulation and the TCP runtime compute this
/// from the same reduced `L2`, so every participant derives an identical
/// schedule without further coordination.
///
/// # Panics
/// Panics if `num_procs == 0`.
pub fn schedule_l2(
    l2: &[(ItemId, ItemId, u32)],
    num_procs: usize,
    heuristic: ScheduleHeuristic,
) -> L2Schedule {
    let _span = eclat_obs::trace::span_arg("schedule:l2", l2.len() as u64);
    let mut class_ranges: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for i in 1..=l2.len() {
        if i == l2.len() || l2[i].0 != l2[start].0 {
            class_ranges.push(start..i);
            start = i;
        }
    }
    let weights: Vec<u64> = class_ranges
        .iter()
        .map(|r| match heuristic {
            ScheduleHeuristic::SupportWeighted => {
                l2[r.clone()].iter().map(|&(_, _, c)| c as u64).sum()
            }
            _ => choose2(r.len()),
        })
        .collect();
    let assignment = schedule_weights(&weights, num_procs, heuristic);
    let mut slot_owner = vec![0usize; l2.len()];
    for (ci, r) in class_ranges.iter().enumerate() {
        for s in r.clone() {
            slot_owner[s] = assignment.owner[ci];
        }
    }
    L2Schedule {
        class_ranges,
        assignment,
        slot_owner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{classes_of_l2, ClassMember, EquivalenceClass};
    use mining_types::{ItemId, Itemset};
    use tidlist::TidList;

    fn class_of_size(prefix: u32, s: usize) -> EquivalenceClass {
        EquivalenceClass {
            prefix: Itemset::single(ItemId(prefix)),
            members: (0..s)
                .map(|i| ClassMember {
                    itemset: Itemset::pair(ItemId(prefix), ItemId(prefix + 1 + i as u32)),
                    tids: TidList::of(&[i as u32]),
                })
                .collect(),
        }
    }

    #[test]
    fn greedy_assigns_largest_first_to_least_loaded() {
        // weights: C(5,2)=10, C(4,2)=6, C(3,2)=3, C(3,2)=3 on 2 procs
        // → p0: 10, p1: 6+3 = 9, then p1 gets... order 10,6,3,3:
        // p0←10 (load 10), p1←6 (6), p1←3 (9), p1←3 (12)? No: least
        // loaded after (10, 9) is p1 again → p1 = 12. Final (10, 12).
        let classes = vec![
            class_of_size(0, 5),
            class_of_size(10, 4),
            class_of_size(20, 3),
            class_of_size(30, 3),
        ];
        let a = schedule(&classes, 2, ScheduleHeuristic::GreedyPairs);
        assert_eq!(a.owner, vec![0, 1, 1, 1]);
        assert_eq!(a.load, vec![10, 12]);
    }

    #[test]
    fn ties_break_to_smaller_processor() {
        let classes = vec![class_of_size(0, 3), class_of_size(10, 3)];
        let a = schedule(&classes, 3, ScheduleHeuristic::GreedyPairs);
        assert_eq!(a.owner, vec![0, 1]);
        assert_eq!(a.load, vec![3, 3, 0]);
    }

    #[test]
    fn greedy_beats_round_robin_on_skewed_weights() {
        // Adversarial for round-robin: big classes land on one proc.
        let classes: Vec<EquivalenceClass> = (0..8)
            .map(|i| class_of_size(i * 10, if i % 2 == 0 { 8 } else { 2 }))
            .collect();
        let greedy = schedule(&classes, 2, ScheduleHeuristic::GreedyPairs);
        let rr = schedule(&classes, 2, ScheduleHeuristic::RoundRobin);
        assert!(greedy.imbalance() < rr.imbalance());
        assert!(greedy.imbalance() < 1.05, "greedy ≈ balanced here");
    }

    #[test]
    fn support_weighted_uses_tidlist_sizes() {
        let l2 = vec![
            (ItemId(0), ItemId(1), TidList::of(&[1, 2, 3, 4, 5])),
            (ItemId(2), ItemId(3), TidList::of(&[1])),
            (ItemId(4), ItemId(5), TidList::of(&[1, 2])),
        ];
        let classes = classes_of_l2(l2);
        let a = schedule(&classes, 2, ScheduleHeuristic::SupportWeighted);
        // weights 5,1,2 → greedy: p0←5, p1←2, p1←1
        assert_eq!(a.load, vec![5, 3]);
    }

    #[test]
    fn classes_of_returns_sorted_indices() {
        let classes: Vec<EquivalenceClass> = (0..5).map(|i| class_of_size(i * 10, 2)).collect();
        let a = schedule(&classes, 2, ScheduleHeuristic::RoundRobin);
        assert_eq!(a.classes_of(0), vec![0, 2, 4]);
        assert_eq!(a.classes_of(1), vec![1, 3]);
    }

    #[test]
    fn all_work_is_assigned_exactly_once() {
        let classes: Vec<EquivalenceClass> = (0..13)
            .map(|i| class_of_size(i * 10, (i as usize % 5) + 1))
            .collect();
        for h in [
            ScheduleHeuristic::GreedyPairs,
            ScheduleHeuristic::SupportWeighted,
            ScheduleHeuristic::RoundRobin,
        ] {
            let a = schedule(&classes, 4, h);
            assert_eq!(a.owner.len(), classes.len());
            assert!(a.owner.iter().all(|&p| p < 4));
            let covered: usize = (0..4).map(|p| a.classes_of(p).len()).sum();
            assert_eq!(covered, classes.len());
        }
    }

    #[test]
    fn single_processor_gets_everything() {
        let classes: Vec<EquivalenceClass> = (0..4).map(|i| class_of_size(i * 10, 3)).collect();
        let a = schedule(&classes, 1, ScheduleHeuristic::GreedyPairs);
        assert!(a.owner.iter().all(|&p| p == 0));
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    fn schedule_l2_groups_by_first_item_and_maps_slots() {
        // Classes: {0x} of size 3 (weight 3), {2x} of size 2 (weight 1),
        // {5x} of size 1 (weight 0).
        let l2 = vec![
            (ItemId(0), ItemId(1), 4),
            (ItemId(0), ItemId(2), 4),
            (ItemId(0), ItemId(3), 4),
            (ItemId(2), ItemId(3), 4),
            (ItemId(2), ItemId(4), 4),
            (ItemId(5), ItemId(6), 4),
        ];
        let s = schedule_l2(&l2, 2, ScheduleHeuristic::GreedyPairs);
        assert_eq!(s.class_ranges, vec![0..3, 3..5, 5..6]);
        assert_eq!(s.assignment.owner, vec![0, 1, 1]);
        assert_eq!(s.slot_owner, vec![0, 0, 0, 1, 1, 1]);
        for (ci, r) in s.class_ranges.iter().enumerate() {
            for slot in r.clone() {
                assert_eq!(s.slot_owner[slot], s.assignment.owner[ci]);
            }
        }
    }

    #[test]
    fn schedule_l2_empty_input() {
        let s = schedule_l2(&[], 3, ScheduleHeuristic::GreedyPairs);
        assert!(s.class_ranges.is_empty());
        assert!(s.slot_owner.is_empty());
        assert_eq!(s.assignment.load, vec![0, 0, 0]);
    }

    #[test]
    fn imbalance_of_empty_or_zero_weight() {
        let a = schedule_weights(&[], 3, ScheduleHeuristic::GreedyPairs);
        assert_eq!(a.imbalance(), 1.0);
        let b = schedule_weights(&[0, 0], 2, ScheduleHeuristic::GreedyPairs);
        assert_eq!(b.imbalance(), 1.0);
    }
}
