//! d-Eclat: the diffset variant of the recursive kernel.
//!
//! Extension of the paper's tid-list clustering (see
//! [`tidlist::diffset`]): below the `L2` level, each itemset carries the
//! *difference* from its prefix's tid-list instead of the tid-list
//! itself. Joins become differences of sibling diffsets, which shrink
//! rapidly with depth — the memory-utilization improvement the paper
//! lists as ongoing work (§9). The `ablations` bench compares the two
//! representations.

use crate::compute::EclatConfig;
use crate::equivalence::EquivalenceClass;
use mining_types::{FrequentSet, Itemset, OpMeter};
use tidlist::diffset::DiffSet;

/// A class member in diffset form.
#[derive(Clone, Debug)]
struct DiffMember {
    itemset: Itemset,
    diff: DiffSet,
}

/// Mine one `L2` equivalence class with diffsets. Produces exactly the
/// same frequent itemsets and supports as
/// [`crate::compute::compute_frequent`] on the same class.
///
/// The class enters in tid-list form (that is what the transformation
/// phase produces); members are converted to diffsets relative to their
/// own tid-lists' union... no — relative to the *class prefix* is not
/// available for `L2` (Eclat never builds 1-item tid-lists), so the root
/// conversion uses the first member as the reference: `d(xy)` is derived
/// pairwise during the first join level via plain tid-list differences,
/// and diffsets take over below.
pub fn compute_frequent_diff(
    class: EquivalenceClass,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) {
    if class.size() < 2 {
        return;
    }
    let members = class.members;
    // First join level: tid-list intersections produce the k=3 members,
    // carried as diffsets d(I1 ∪ I2) = t(I1) − t(I1 ∪ I2).
    let mut next: Vec<DiffMember> = Vec::new();
    for i in 0..members.len() {
        for j in i + 1..members.len() {
            let candidate = members[i]
                .itemset
                .join(&members[j].itemset)
                .expect("class members join");
            meter.cand_gen += 1;
            let diff = DiffSet::from_tidlists(&members[i].tids, &members[j].tids);
            meter.tid_cmp += (members[i].tids.len() + members[j].tids.len()) as u64;
            if diff.support >= minsup {
                out.insert(candidate.clone(), diff.support);
                next.push(DiffMember {
                    itemset: candidate,
                    diff,
                });
            }
        }
    }
    drop(members);
    recurse(next, minsup, cfg, meter, out);
}

fn recurse(
    members: Vec<DiffMember>,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) {
    // Partition by (k−1)-prefix, mirroring equivalence::repartition.
    let mut classes: Vec<Vec<DiffMember>> = Vec::new();
    for m in members {
        let plen = m.itemset.len() - 1;
        match classes.last_mut() {
            Some(c) if c[0].itemset.items()[..plen] == m.itemset.items()[..plen] => c.push(m),
            _ => classes.push(vec![m]),
        }
    }
    for class in classes {
        if class.len() < 2 {
            continue;
        }
        let mut next: Vec<DiffMember> = Vec::new();
        for i in 0..class.len() {
            for j in i + 1..class.len() {
                let candidate = class[i]
                    .itemset
                    .join(&class[j].itemset)
                    .expect("members join");
                meter.cand_gen += 1;
                meter.tid_cmp +=
                    (class[i].diff.diff.len() + class[j].diff.diff.len()) as u64;
                let joined = if cfg.short_circuit {
                    class[i].diff.join_bounded(&class[j].diff, minsup)
                } else {
                    let full = class[i].diff.join(&class[j].diff);
                    (full.support >= minsup).then_some(full)
                };
                if let Some(d) = joined {
                    out.insert(candidate.clone(), d.support);
                    next.push(DiffMember {
                        itemset: candidate,
                        diff: d,
                    });
                }
            }
        }
        recurse(next, minsup, cfg, meter, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::compute_frequent;
    use crate::equivalence::classes_of_l2;
    use crate::transform::{build_pair_tidlists, count_pairs, index_pairs};
    use apriori::reference::random_db;
    use mining_types::{ItemId, MinSupport};

    /// Mine a whole database with the diffset kernel (test harness).
    fn mine_diff(db: &dbstore::HorizontalDb, minsup: MinSupport) -> FrequentSet {
        let threshold = minsup.count_threshold(db.num_transactions());
        let n = db.num_transactions();
        let mut meter = OpMeter::new();
        let tri = count_pairs(db, 0..n, &mut meter);
        let l2: Vec<(ItemId, ItemId)> = tri
            .frequent_pairs(threshold)
            .map(|(a, b, _)| (a, b))
            .collect();
        let mut out = FrequentSet::new();
        if l2.is_empty() {
            return out;
        }
        let idx = index_pairs(&l2);
        let lists = build_pair_tidlists(db, 0..n, &idx, &mut meter);
        let pairs: Vec<_> = l2.iter().zip(lists).map(|(&(a, b), t)| (a, b, t)).collect();
        for class in classes_of_l2(pairs) {
            for m in &class.members {
                out.insert(m.itemset.clone(), m.tids.support());
            }
            compute_frequent_diff(class, threshold, &EclatConfig::default(), &mut meter, &mut out);
        }
        out
    }

    #[test]
    fn diffsets_agree_with_tidlists() {
        for seed in [0u64, 3, 8] {
            let db = random_db(seed, 150, 12, 6);
            for pct in [5.0, 12.0] {
                let minsup = MinSupport::from_percent(pct);
                let diff = mine_diff(&db, minsup);
                let tid = crate::sequential::mine(&db, minsup);
                assert_eq!(diff, tid, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn diffsets_shrink_relative_to_tidlists_on_dense_data() {
        // Dense correlated data: every transaction shares a core pattern,
        // so deep tid-lists stay long but diffsets stay near-empty.
        let txns: Vec<Vec<ItemId>> = (0..100)
            .map(|i| {
                let mut t: Vec<ItemId> = (0..6u32).map(ItemId).collect();
                if i % 10 == 0 {
                    t.push(ItemId(6 + (i / 10) as u32 % 3));
                }
                t
            })
            .collect();
        let db = dbstore::HorizontalDb::from_transactions(txns);
        let minsup = MinSupport::from_percent(50.0);
        let threshold = minsup.count_threshold(100);
        let mut meter_t = OpMeter::new();
        let mut meter_d = OpMeter::new();
        let tri = count_pairs(&db, 0..100, &mut meter_t);
        let l2: Vec<(ItemId, ItemId)> = tri
            .frequent_pairs(threshold)
            .map(|(a, b, _)| (a, b))
            .collect();
        let idx = index_pairs(&l2);
        let lists = build_pair_tidlists(&db, 0..100, &idx, &mut meter_t);
        let pairs: Vec<_> = l2.iter().zip(lists).map(|(&(a, b), t)| (a, b, t)).collect();
        let classes = classes_of_l2(pairs);
        let mut out_t = FrequentSet::new();
        let mut out_d = FrequentSet::new();
        for class in classes {
            for m in &class.members {
                out_t.insert(m.itemset.clone(), m.tids.support());
                out_d.insert(m.itemset.clone(), m.tids.support());
            }
            compute_frequent(
                class.clone(),
                threshold,
                &EclatConfig::default(),
                &mut meter_t,
                &mut out_t,
            );
            compute_frequent_diff(
                class,
                threshold,
                &EclatConfig::default(),
                &mut meter_d,
                &mut out_d,
            );
        }
        assert_eq!(out_t, out_d);
        assert!(
            meter_d.tid_cmp < meter_t.tid_cmp,
            "diffsets should touch fewer elements on dense data: {} vs {}",
            meter_d.tid_cmp,
            meter_t.tid_cmp
        );
    }

    #[test]
    fn empty_class() {
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent_diff(
            crate::equivalence::EquivalenceClass {
                prefix: Itemset::of(&[0]),
                members: vec![],
            },
            1,
            &EclatConfig::default(),
            &mut meter,
            &mut out,
        );
        assert!(out.is_empty());
    }
}
