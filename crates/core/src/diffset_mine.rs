//! d-Eclat: the diffset variant of the recursive kernel.
//!
//! Extension of the paper's tid-list clustering (see
//! [`tidlist::diffset`]): below the `L2` level, each itemset carries the
//! *difference* from its prefix's tid-list instead of the tid-list
//! itself. Joins become differences of sibling diffsets, which shrink
//! rapidly with depth — the memory-utilization improvement the paper
//! lists as ongoing work (§9). The `ablations` bench compares the two
//! representations.
//!
//! This module is a thin compatibility wrapper: the actual recursion is
//! the generic [`crate::compute::compute_frequent`] kernel running on
//! [`tidlist::AdaptiveSet`] with zero fuel (convert to diffsets at the
//! first join below `L2`), reached through
//! [`crate::pipeline::compute_class`]. Metering is therefore *exact* —
//! the same comparison counts the tid-list kernel would report for the
//! same element traffic — so the A1 representation ablations compare
//! like with like. (An earlier standalone implementation charged
//! `len(a) + len(b)` per join regardless of the work done.)

use crate::compute::{EclatConfig, Representation};
use crate::equivalence::EquivalenceClass;
use crate::pipeline::compute_class;
use mining_types::{FrequentSet, OpMeter};

/// Mine one `L2` equivalence class with diffsets. Produces exactly the
/// same frequent itemsets and supports as
/// [`crate::compute::compute_frequent`] on the same class.
///
/// The class enters in tid-list form (that is what the transformation
/// phase produces; Eclat never builds 1-item tid-lists, so there is no
/// prefix list to difference against at `L2`). The first join level
/// converts pairwise — `d(I1 ∪ I2) = t(I1) − t(I2)` — and diffsets take
/// over below. Equivalent to mining with
/// [`Representation::Diffset`].
pub fn compute_frequent_diff(
    class: EquivalenceClass,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    out: &mut FrequentSet,
) {
    let cfg = EclatConfig {
        representation: Representation::Diffset,
        ..cfg.clone()
    };
    compute_class(class, minsup, &cfg, meter, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::compute_frequent;
    use crate::equivalence::classes_of_l2;
    use crate::transform::{build_pair_tidlists, count_pairs, index_pairs};
    use apriori::reference::random_db;
    use mining_types::{ItemId, Itemset, MinSupport};

    /// Mine a whole database with the diffset kernel (test harness).
    fn mine_diff(db: &dbstore::HorizontalDb, minsup: MinSupport) -> FrequentSet {
        let threshold = minsup.count_threshold(db.num_transactions());
        let n = db.num_transactions();
        let mut meter = OpMeter::new();
        let tri = count_pairs(db, 0..n, &mut meter);
        let l2: Vec<(ItemId, ItemId)> = tri
            .frequent_pairs(threshold)
            .map(|(a, b, _)| (a, b))
            .collect();
        let mut out = FrequentSet::new();
        if l2.is_empty() {
            return out;
        }
        let idx = index_pairs(&l2);
        let lists = build_pair_tidlists(db, 0..n, &idx, &mut meter);
        let pairs: Vec<_> = l2.iter().zip(lists).map(|(&(a, b), t)| (a, b, t)).collect();
        for class in classes_of_l2(pairs) {
            for m in &class.members {
                out.insert(m.itemset.clone(), m.tids.support());
            }
            compute_frequent_diff(
                class,
                threshold,
                &EclatConfig::default(),
                &mut meter,
                &mut out,
            );
        }
        out
    }

    #[test]
    fn diffsets_agree_with_tidlists() {
        for seed in [0u64, 3, 8] {
            let db = random_db(seed, 150, 12, 6);
            for pct in [5.0, 12.0] {
                let minsup = MinSupport::from_percent(pct);
                let diff = mine_diff(&db, minsup);
                let tid = crate::sequential::mine(&db, minsup);
                assert_eq!(diff, tid, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn diffsets_shrink_relative_to_tidlists_on_dense_data() {
        // Dense correlated data: every transaction shares a core pattern,
        // so deep tid-lists stay long but diffsets stay near-empty.
        let txns: Vec<Vec<ItemId>> = (0..100)
            .map(|i| {
                let mut t: Vec<ItemId> = (0..6u32).map(ItemId).collect();
                if i % 10 == 0 {
                    t.push(ItemId(6 + (i / 10) as u32 % 3));
                }
                t
            })
            .collect();
        let db = dbstore::HorizontalDb::from_transactions(txns);
        let minsup = MinSupport::from_percent(50.0);
        let threshold = minsup.count_threshold(100);
        let mut meter_t = OpMeter::new();
        let mut meter_d = OpMeter::new();
        let tri = count_pairs(&db, 0..100, &mut meter_t);
        let l2: Vec<(ItemId, ItemId)> = tri
            .frequent_pairs(threshold)
            .map(|(a, b, _)| (a, b))
            .collect();
        let idx = index_pairs(&l2);
        let lists = build_pair_tidlists(&db, 0..100, &idx, &mut meter_t);
        let pairs: Vec<_> = l2.iter().zip(lists).map(|(&(a, b), t)| (a, b, t)).collect();
        let classes = classes_of_l2(pairs);
        let mut out_t = FrequentSet::new();
        let mut out_d = FrequentSet::new();
        for class in classes {
            for m in &class.members {
                out_t.insert(m.itemset.clone(), m.tids.support());
                out_d.insert(m.itemset.clone(), m.tids.support());
            }
            compute_frequent(
                class.clone(),
                threshold,
                &EclatConfig::default(),
                &mut meter_t,
                &mut out_t,
            );
            compute_frequent_diff(
                class,
                threshold,
                &EclatConfig::default(),
                &mut meter_d,
                &mut out_d,
            );
        }
        assert_eq!(out_t, out_d);
        assert!(
            meter_d.tid_cmp < meter_t.tid_cmp,
            "diffsets should touch fewer elements on dense data: {} vs {}",
            meter_d.tid_cmp,
            meter_t.tid_cmp
        );
    }

    #[test]
    fn candidate_metering_matches_tidlist_kernel() {
        // Both representations walk the same candidate lattice, so
        // cand_gen must be identical — the point of routing d-Eclat
        // through the shared kernel.
        let db = random_db(6, 120, 10, 5);
        let minsup = MinSupport::from_percent(8.0);
        let threshold = minsup.count_threshold(db.num_transactions());
        let mut m0 = OpMeter::new();
        let tri = count_pairs(&db, 0..db.num_transactions(), &mut m0);
        let l2: Vec<(ItemId, ItemId)> = tri
            .frequent_pairs(threshold)
            .map(|(a, b, _)| (a, b))
            .collect();
        let idx = index_pairs(&l2);
        let lists = build_pair_tidlists(&db, 0..db.num_transactions(), &idx, &mut m0);
        let pairs: Vec<_> = l2.iter().zip(lists).map(|(&(a, b), t)| (a, b, t)).collect();
        let mut m_t = OpMeter::new();
        let mut m_d = OpMeter::new();
        let mut out_t = FrequentSet::new();
        let mut out_d = FrequentSet::new();
        for class in classes_of_l2(pairs) {
            compute_frequent(
                class.clone(),
                threshold,
                &EclatConfig::default(),
                &mut m_t,
                &mut out_t,
            );
            compute_frequent_diff(
                class,
                threshold,
                &EclatConfig::default(),
                &mut m_d,
                &mut out_d,
            );
        }
        assert_eq!(out_t, out_d);
        assert_eq!(m_t.cand_gen, m_d.cand_gen);
        assert!(m_d.tid_cmp > 0);
    }

    #[test]
    fn empty_class() {
        let mut out = FrequentSet::new();
        let mut meter = OpMeter::new();
        compute_frequent_diff(
            crate::equivalence::EquivalenceClass {
                prefix: Itemset::of(&[0]),
                members: vec![],
            },
            1,
            &EclatConfig::default(),
            &mut meter,
            &mut out,
        );
        assert!(out.is_empty());
    }
}
