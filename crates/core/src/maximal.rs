//! MaxEclat — maximal frequent itemset mining with look-ahead, the
//! hybrid search of the paper's reference \[18\].
//!
//! Instead of materializing every frequent itemset, MaxEclat hunts the
//! *maximal* ones (those with no frequent superset). Within an
//! equivalence class it first tries the **look-ahead** jump: intersect
//! the current node with *all* remaining extensions at once; if that
//! long itemset is frequent, the entire sub-lattice below it is frequent
//! and is skipped in one step. Only on failure does it fall back to the
//! one-extension-at-a-time recursion.
//!
//! Output: the maximal frequent itemsets of size ≥ 2 with their exact
//! supports. Cross-checked against `FrequentSet::maximal()` of the full
//! miner.

use crate::compute::{join_level, EclatConfig, JoinHandler, Representation};
use crate::equivalence::{ClassMember, EquivalenceClass};
use crate::pipeline::{self, ExecutionPolicy, Serial};
use dbstore::HorizontalDb;
use mining_types::{FrequentSet, Itemset, MinSupport, OpMeter};
use tidlist::TidSet;

/// Mine the maximal frequent itemsets (size ≥ 2).
pub fn mine_maximal(db: &HorizontalDb, minsup: MinSupport) -> FrequentSet {
    let mut meter = OpMeter::new();
    mine_maximal_with(db, minsup, &EclatConfig::default(), &mut meter)
        .expect("default config uses tid-lists")
}

/// [`mine_maximal`] with configuration and metering.
///
/// MaxEclat runs on tid-lists only: the look-ahead folds one accumulator
/// through members at *different* join depths, which the depth-switching
/// representations cannot mix. A config asking for any other
/// [`EclatConfig::representation`] is rejected with `Err` instead of
/// being silently mined on tid-lists.
pub fn mine_maximal_with(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> Result<FrequentSet, String> {
    if !matches!(cfg.representation, Representation::TidList) {
        return Err(format!(
            "MaxEclat supports only the tidlist representation, not `{}`: \
             its look-ahead joins members across different depths, which \
             the depth-switching diffset representations cannot mix",
            cfg.representation
        ));
    }
    let threshold = minsup.count_threshold(db.num_transactions());
    let tri = Serial.count_pairs(db, meter);
    let l2 = pipeline::frequent_l2(&tri, threshold);
    if l2.is_empty() {
        return Ok(FrequentSet::new());
    }

    // Collect candidate-maximal itemsets from every class, then filter
    // globally (a class's local maximal can be subsumed by another
    // class's result only if it is a subset — prefix classes make that
    // impossible for same-first-item sets, but e.g. {B,C} ∈ [B] is
    // subsumed by {A,B,C} ∈ [A], so the global pass is required).
    let mut candidates: Vec<(Itemset, u32)> = Vec::new();
    for class in pipeline::vertical_classes(db, &l2, meter) {
        if class.size() == 1 {
            // a lone 2-itemset is maximal within its class
            let m = &class.members[0];
            candidates.push((m.itemset.clone(), m.tids.support()));
            continue;
        }
        max_search(class, threshold, cfg, meter, &mut candidates);
    }

    // Global maximality filter.
    let mut out = FrequentSet::new();
    for (i, (is, sup)) in candidates.iter().enumerate() {
        let subsumed = candidates
            .iter()
            .enumerate()
            .any(|(j, (other, _))| j != i && other.len() > is.len() && is.is_subset_of(other));
        if !subsumed {
            out.insert(is.clone(), *sup);
        }
    }
    Ok(out)
}

/// Recursive hybrid search over one class. Pushes locally-maximal
/// frequent itemsets into `found`.
fn max_search(
    class: EquivalenceClass,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    found: &mut Vec<(Itemset, u32)>,
) {
    let members = class.members;
    debug_assert!(members.len() >= 2);

    // --- Look-ahead: intersect everything at once.
    let mut all = members[0].tids.clone();
    let mut alive = true;
    for m in &members[1..] {
        let r = if cfg.short_circuit {
            all.join_bounded_metered(&m.tids, minsup, meter)
        } else {
            let full = all.join_metered(&m.tids, meter);
            (full.support() >= minsup).then_some(full)
        };
        match r {
            Some(t) => all = t,
            None => {
                alive = false;
                break;
            }
        }
    }
    if alive {
        // The whole class joins into one frequent itemset — maximal for
        // this subtree; everything below is subsumed.
        let mut union = members[0].itemset.clone();
        for m in &members[1..] {
            union = union.union(&m.itemset);
        }
        found.push((union, all.support()));
        return;
    }

    // --- Fall back: one level of pairwise joins (through the shared
    // kernel loop), then recurse per class.
    let mut handler = ExtendTracker {
        next: Vec::new(),
        extended: vec![false; members.len()],
    };
    join_level(&members, minsup, cfg, meter, &mut handler);
    let ExtendTracker { next, extended } = handler;
    // Members that extended nowhere are locally maximal.
    for (i, m) in members.iter().enumerate() {
        if !extended[i] {
            found.push((m.itemset.clone(), m.tids.support()));
        }
    }
    drop(members);
    for sub in crate::equivalence::repartition(next) {
        if sub.size() == 1 {
            let m = &sub.members[0];
            found.push((m.itemset.clone(), m.tids.support()));
        } else {
            max_search(sub, minsup, cfg, meter, found);
        }
    }
}

/// [`join_level`] handler for the fallback level: collect frequent joins
/// and remember which members extended at all (the rest are locally
/// maximal).
struct ExtendTracker<S> {
    next: Vec<ClassMember<S>>,
    extended: Vec<bool>,
}

impl<S: TidSet> JoinHandler<S> for ExtendTracker<S> {
    fn on_result(&mut self, i: usize, j: usize, candidate: Itemset, joined: Option<S>) {
        if let Some(tids) = joined {
            self.extended[i] = true;
            self.extended[j] = true;
            self.next.push(ClassMember {
                itemset: candidate,
                tids,
            });
        }
    }
}

/// Maximal elements of a full frequent set (test oracle; also generally
/// useful to consumers who mined everything and want the frontier).
pub fn maximal_of(fs: &FrequentSet) -> FrequentSet {
    let all: Vec<(&Itemset, u32)> = fs.iter().collect();
    let mut out = FrequentSet::new();
    for &(is, sup) in &all {
        if is.len() < 2 {
            continue;
        }
        let subsumed = all
            .iter()
            .any(|&(other, _)| other.len() > is.len() && is.is_subset_of(other));
        if !subsumed {
            out.insert(is.clone(), sup);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apriori::reference::random_db;
    use mining_types::ItemId;

    #[test]
    fn matches_maximal_of_full_mining() {
        for seed in [1u64, 8, 30] {
            let db = random_db(seed, 200, 12, 6);
            for pct in [5.0, 10.0, 20.0] {
                let minsup = MinSupport::from_percent(pct);
                let max_direct = mine_maximal(&db, minsup);
                let full = crate::sequential::mine(&db, minsup);
                let max_oracle = maximal_of(&full);
                assert_eq!(max_direct, max_oracle, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn lookahead_pays_on_dense_data() {
        // All transactions share one long pattern: the look-ahead should
        // jump straight to the top and do far fewer intersections.
        let txns: Vec<Vec<ItemId>> = (0..200)
            .map(|i| {
                let mut t: Vec<ItemId> = (0..8u32).map(ItemId).collect();
                t.push(ItemId(8 + (i % 7) as u32));
                t
            })
            .collect();
        let db = HorizontalDb::from_transactions(txns);
        let minsup = MinSupport::from_percent(50.0);
        let mut m_max = OpMeter::new();
        let max = mine_maximal_with(&db, minsup, &EclatConfig::default(), &mut m_max).unwrap();
        // the 8-item core is the unique maximal set
        assert_eq!(max.len(), 1);
        let (top, sup) = max.iter().next().unwrap();
        assert_eq!(top, &Itemset::of(&[0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(sup, 200);
        let mut m_full = OpMeter::new();
        crate::sequential::mine_with(&db, minsup, &EclatConfig::default(), &mut m_full);
        assert!(
            m_max.tid_cmp * 5 < m_full.tid_cmp,
            "lookahead {} vs full {}",
            m_max.tid_cmp,
            m_full.tid_cmp
        );
    }

    #[test]
    fn no_member_of_output_subsumes_another() {
        let db = random_db(12, 300, 14, 6);
        let minsup = MinSupport::from_percent(5.0);
        let max = mine_maximal(&db, minsup);
        let v: Vec<_> = max.iter().collect();
        for (i, (a, _)) in v.iter().enumerate() {
            for (j, (b, _)) in v.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset_of(b), "{a} ⊆ {b}");
                }
            }
        }
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        assert!(mine_maximal(&db, MinSupport::from_percent(1.0)).is_empty());
    }

    #[test]
    fn non_tidlist_representations_are_rejected() {
        use crate::compute::Representation;
        let db = random_db(3, 50, 8, 4);
        let minsup = MinSupport::from_percent(10.0);
        for repr in [
            Representation::Diffset,
            Representation::AutoSwitch { depth: 2 },
        ] {
            let cfg = EclatConfig::with_representation(repr);
            let err = mine_maximal_with(&db, minsup, &cfg, &mut OpMeter::new())
                .expect_err("non-tidlist representation must be rejected");
            assert!(err.contains("tidlist"), "unhelpful error: {err}");
            assert!(err.contains(&repr.to_string()), "error names repr: {err}");
        }
    }
}
