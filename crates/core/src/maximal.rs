//! MaxEclat — maximal frequent itemset mining with look-ahead, the
//! hybrid search of the paper's reference \[18\].
//!
//! Instead of materializing every frequent itemset, MaxEclat hunts the
//! *maximal* ones (those with no frequent superset). Within an
//! equivalence class it first tries the **look-ahead** jump: join the
//! current node with *all* remaining extensions at once; if that long
//! itemset is frequent, the entire sub-lattice below it is frequent and
//! is skipped in one step. Only on failure does it fall back to the
//! one-extension-at-a-time recursion.
//!
//! The look-ahead runs on any [`EclatConfig::representation`]: it is
//! built on the [`TidSet`] multi-way fold (`fold_join_bounded_metered`),
//! which tracks the representation per join depth — tid-list
//! intersections, the tid-list → diffset conversion, and diffset
//! differences can mix inside one fold (see
//! `tidlist::AdaptiveSet::fold_with`).
//!
//! Output: the maximal frequent itemsets of size ≥ 2 with their exact
//! supports. Cross-checked against `FrequentSet::maximal()` of the full
//! miner.

use crate::compute::{join_level, EclatConfig, JoinHandler, Representation};
use crate::equivalence::{ClassMember, EquivalenceClass};
use crate::pipeline::{
    self, ExecutionPolicy, Serial, PHASE_ASYNC, PHASE_INIT, PHASE_REDUCE, PHASE_TRANSFORM,
};
use dbstore::HorizontalDb;
use mining_types::stats::{ClassStats, KernelStats, MiningStats, PhaseStats};
use mining_types::{FrequentSet, Itemset, MinSupport, OpMeter};
use std::time::Instant;
use tidlist::TidSet;

/// Mine the maximal frequent itemsets (size ≥ 2).
pub fn mine_maximal(db: &HorizontalDb, minsup: MinSupport) -> FrequentSet {
    let mut meter = OpMeter::new();
    mine_maximal_with(db, minsup, &EclatConfig::default(), &mut meter)
}

/// [`mine_maximal`] with configuration and metering. Runs on whatever
/// [`EclatConfig::representation`] the config selects.
pub fn mine_maximal_with(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> FrequentSet {
    mine_maximal_stats(db, minsup, cfg, meter).0
}

/// [`mine_maximal_with`] that also produces the structured
/// [`MiningStats`] report (algorithm `"maxeclat"`): per-phase
/// wall-clock/op deltas, per-class kernel work including look-ahead
/// candidates, short-circuit hits, and `AdaptiveSet` switch events.
pub fn mine_maximal_stats(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> (FrequentSet, MiningStats) {
    let threshold = minsup.count_threshold(db.num_transactions());
    let mut stats = MiningStats::new("maxeclat", "sequential", &cfg.representation.to_string());
    stats.transactions = db.num_transactions() as u64;
    stats.threshold = u64::from(threshold);
    let start_ops = *meter;

    // --- Phase 1 (initialization, §5.1): triangular counts of all pairs.
    let t_init = Instant::now();
    let tri = Serial.count_pairs(db, meter);
    let l2 = pipeline::frequent_l2(&tri, threshold);
    stats.record_level(2, tri.cells() as u64, l2.len() as u64);
    stats.phases.push(PhaseStats {
        label: PHASE_INIT.to_string(),
        secs: t_init.elapsed().as_secs_f64(),
        ops: meter.since(&start_ops),
    });
    if l2.is_empty() {
        stats.total_ops = meter.since(&start_ops);
        return (FrequentSet::new(), stats);
    }

    // --- Phase 2 (transformation, §5.2.2): vertical tid-lists for L2.
    let t_transform = Instant::now();
    let ops_before_transform = *meter;
    let classes = pipeline::vertical_classes(db, &l2, meter);
    stats.phases.push(PhaseStats {
        label: PHASE_TRANSFORM.to_string(),
        secs: t_transform.elapsed().as_secs_f64(),
        ops: meter.since(&ops_before_transform),
    });

    // --- Phase 3 (asynchronous, §5.3): hybrid max search per class.
    // Collect candidate-maximal itemsets from every class, then filter
    // globally (a class's local maximal can be subsumed by another
    // class's result only if it is a subset — prefix classes make that
    // impossible for same-first-item sets, but e.g. {B,C} ∈ [B] is
    // subsumed by {A,B,C} ∈ [A], so the global pass is required).
    let t_async = Instant::now();
    let ops_before_async = *meter;
    let mut candidates: Vec<(Itemset, u32)> = Vec::new();
    for class in classes {
        let mut cs = ClassStats {
            prefix: class.prefix.items().iter().map(|i| i.0).collect(),
            members: class.members.len() as u64,
            kernel: KernelStats::new(),
        };
        max_class(
            class,
            threshold,
            cfg,
            meter,
            &mut candidates,
            &mut cs.kernel,
        );
        stats.add_class(cs);
    }
    stats.sort_classes();
    stats.phases.push(PhaseStats {
        label: PHASE_ASYNC.to_string(),
        secs: t_async.elapsed().as_secs_f64(),
        ops: meter.since(&ops_before_async),
    });

    // --- Phase 4 (reduction): global maximality filter.
    let t_reduce = Instant::now();
    let ops_before_reduce = *meter;
    let mut out = FrequentSet::new();
    for (i, (is, sup)) in candidates.iter().enumerate() {
        let subsumed = candidates
            .iter()
            .enumerate()
            .any(|(j, (other, _))| j != i && other.len() > is.len() && is.is_subset_of(other));
        if !subsumed {
            out.insert(is.clone(), *sup);
        }
    }
    stats.phases.push(PhaseStats {
        label: PHASE_REDUCE.to_string(),
        secs: t_reduce.elapsed().as_secs_f64(),
        ops: meter.since(&ops_before_reduce),
    });
    stats.num_frequent = out.len() as u64;
    stats.total_ops = meter.since(&start_ops);
    (out, stats)
}

/// One class of the max search: dispatch the tid-list `L2` class to the
/// representation picked by the config, mirroring
/// `pipeline::compute_class_stats`.
fn max_class(
    class: EquivalenceClass,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    found: &mut Vec<(Itemset, u32)>,
    stats: &mut KernelStats,
) {
    if class.size() == 1 {
        // a lone 2-itemset is maximal within its class
        let m = &class.members[0];
        found.push((m.itemset.clone(), m.tids.support()));
        return;
    }
    match cfg.representation {
        Representation::TidList if cfg.gallop => max_search(
            pipeline::gallop_class(class),
            minsup,
            cfg,
            meter,
            found,
            stats,
        ),
        Representation::TidList => max_search(class, minsup, cfg, meter, found, stats),
        Representation::Diffset => max_search(
            pipeline::fuel_class(class, 0),
            minsup,
            cfg,
            meter,
            found,
            stats,
        ),
        Representation::AutoSwitch { depth } => max_search(
            pipeline::fuel_class(class, depth),
            minsup,
            cfg,
            meter,
            found,
            stats,
        ),
        Representation::Bitmap => max_search(
            pipeline::bitmap_class(class),
            minsup,
            cfg,
            meter,
            found,
            stats,
        ),
        Representation::AutoDensity { permille } => {
            // Same per-class density split as the full miner: dense
            // classes fold on bitmaps, sparse ones on the chunked kernels.
            if pipeline::class_is_dense(&class, permille) {
                max_search(
                    pipeline::bitmap_class(class),
                    minsup,
                    cfg,
                    meter,
                    found,
                    stats,
                )
            } else {
                max_search(
                    pipeline::chunked_class(class),
                    minsup,
                    cfg,
                    meter,
                    found,
                    stats,
                )
            }
        }
    }
}

/// Recursive hybrid search over one class, generic over the members'
/// representation. Pushes locally-maximal frequent itemsets into `found`.
fn max_search<S: TidSet>(
    class: EquivalenceClass<S>,
    minsup: u32,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
    found: &mut Vec<(Itemset, u32)>,
    stats: &mut KernelStats,
) {
    let members = class.members;
    debug_assert!(members.len() >= 2);
    let parent_switched = members[0].tids.is_switched();

    // --- Look-ahead: fold the whole class at once. The fold is the
    // representation-aware multi-way join: the §5.3 short-circuit applies
    // per fold step when enabled.
    let union_size = (members[0].itemset.len() + members.len() - 1) as u64;
    stats.record_candidate(union_size);
    let rest: Vec<&S> = members[1..].iter().map(|m| &m.tids).collect();
    let all = if cfg.short_circuit {
        members[0]
            .tids
            .fold_join_bounded_metered(&rest, minsup, meter)
    } else {
        let full = members[0].tids.fold_join_metered(&rest, meter);
        (full.support() >= minsup).then_some(full)
    };
    if let Some(all) = all {
        // The whole class joins into one frequent itemset — maximal for
        // this subtree; everything below is subsumed.
        stats.record_frequent(union_size);
        if !parent_switched && all.is_switched() {
            stats.record_switch();
        }
        let mut union = members[0].itemset.clone();
        for m in &members[1..] {
            union = union.union(&m.itemset);
        }
        found.push((union, all.support()));
        return;
    }
    stats.record_infrequent(cfg.short_circuit);

    // --- Fall back: one level of pairwise joins (through the shared
    // kernel loop), then recurse per class.
    let mut handler = ExtendTracker {
        next: Vec::new(),
        extended: vec![false; members.len()],
        stats,
        parent_switched,
        short_circuit: cfg.short_circuit,
    };
    join_level(&members, minsup, cfg, meter, &mut handler);
    let ExtendTracker { next, extended, .. } = handler;
    // Members that extended nowhere are locally maximal.
    for (i, m) in members.iter().enumerate() {
        if !extended[i] {
            found.push((m.itemset.clone(), m.tids.support()));
        }
    }
    drop(members);
    for sub in crate::equivalence::repartition(next) {
        if sub.size() == 1 {
            let m = &sub.members[0];
            found.push((m.itemset.clone(), m.tids.support()));
        } else {
            max_search(sub, minsup, cfg, meter, found, stats);
        }
    }
}

/// `join_level` handler for the fallback level: collect frequent joins,
/// remember which members extended at all (the rest are locally maximal),
/// and feed the kernel stats — candidates, outcomes, and `AdaptiveSet`
/// switch events, the same accounting the full miner does.
struct ExtendTracker<'a, S> {
    next: Vec<ClassMember<S>>,
    extended: Vec<bool>,
    stats: &'a mut KernelStats,
    parent_switched: bool,
    short_circuit: bool,
}

impl<S: TidSet> JoinHandler<S> for ExtendTracker<'_, S> {
    fn accept(&mut self, candidate: &Itemset, _meter: &mut OpMeter) -> bool {
        self.stats.record_candidate(candidate.len() as u64);
        true
    }

    fn on_result(&mut self, i: usize, j: usize, candidate: Itemset, joined: Option<S>) {
        match joined {
            Some(tids) => {
                self.stats.record_frequent(candidate.len() as u64);
                if !self.parent_switched && tids.is_switched() {
                    self.stats.record_switch();
                }
                self.extended[i] = true;
                self.extended[j] = true;
                self.next.push(ClassMember {
                    itemset: candidate,
                    tids,
                });
            }
            None => self.stats.record_infrequent(self.short_circuit),
        }
    }
}

/// Maximal elements of a full frequent set (test oracle; also generally
/// useful to consumers who mined everything and want the frontier).
pub fn maximal_of(fs: &FrequentSet) -> FrequentSet {
    let all: Vec<(&Itemset, u32)> = fs.iter().collect();
    let mut out = FrequentSet::new();
    for &(is, sup) in &all {
        if is.len() < 2 {
            continue;
        }
        let subsumed = all
            .iter()
            .any(|&(other, _)| other.len() > is.len() && is.is_subset_of(other));
        if !subsumed {
            out.insert(is.clone(), sup);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apriori::reference::random_db;
    use mining_types::ItemId;

    /// All representations exercised by the cross-representation tests.
    fn all_representations() -> Vec<Representation> {
        vec![
            Representation::TidList,
            Representation::Diffset,
            Representation::AutoSwitch { depth: 0 },
            Representation::AutoSwitch { depth: 2 },
            Representation::Bitmap,
            Representation::AutoDensity { permille: 8 },
            // Extreme thresholds force the all-chunked / all-bitmap arms.
            Representation::AutoDensity { permille: 1000 },
            Representation::AutoDensity { permille: 0 },
        ]
    }

    #[test]
    fn matches_maximal_of_full_mining() {
        for seed in [1u64, 8, 30] {
            let db = random_db(seed, 200, 12, 6);
            for pct in [5.0, 10.0, 20.0] {
                let minsup = MinSupport::from_percent(pct);
                let max_direct = mine_maximal(&db, minsup);
                let full = crate::sequential::mine(&db, minsup);
                let max_oracle = maximal_of(&full);
                assert_eq!(max_direct, max_oracle, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn every_representation_matches_the_oracle() {
        for seed in [1u64, 8] {
            let db = random_db(seed, 200, 12, 6);
            for pct in [5.0, 15.0] {
                let minsup = MinSupport::from_percent(pct);
                let oracle = maximal_of(&crate::sequential::mine(&db, minsup));
                for repr in all_representations() {
                    for short_circuit in [true, false] {
                        let cfg = EclatConfig {
                            representation: repr,
                            short_circuit,
                            ..Default::default()
                        };
                        let got = mine_maximal_with(&db, minsup, &cfg, &mut OpMeter::new());
                        assert_eq!(
                            got, oracle,
                            "seed {seed} pct {pct} {repr:?} sc {short_circuit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gallop_config_matches_the_oracle() {
        let db = random_db(8, 200, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let oracle = maximal_of(&crate::sequential::mine(&db, minsup));
        let cfg = EclatConfig {
            gallop: true,
            ..Default::default()
        };
        let mut meter = OpMeter::new();
        assert_eq!(mine_maximal_with(&db, minsup, &cfg, &mut meter), oracle);
        assert!(meter.tid_cmp > 0);
    }

    /// Dense look-ahead-heavy database: all transactions share one long
    /// core pattern, so the look-ahead jumps straight to the top.
    fn dense_db() -> HorizontalDb {
        let txns: Vec<Vec<ItemId>> = (0..200)
            .map(|i| {
                let mut t: Vec<ItemId> = (0..8u32).map(ItemId).collect();
                t.push(ItemId(8 + (i % 7) as u32));
                t
            })
            .collect();
        HorizontalDb::from_transactions(txns)
    }

    #[test]
    fn lookahead_pays_on_dense_data() {
        let db = dense_db();
        let minsup = MinSupport::from_percent(50.0);
        let mut m_max = OpMeter::new();
        let max = mine_maximal_with(&db, minsup, &EclatConfig::default(), &mut m_max);
        // the 8-item core is the unique maximal set
        assert_eq!(max.len(), 1);
        let (top, sup) = max.iter().next().unwrap();
        assert_eq!(top, &Itemset::of(&[0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(sup, 200);
        let mut m_full = OpMeter::new();
        crate::sequential::mine_with(&db, minsup, &EclatConfig::default(), &mut m_full);
        assert!(
            m_max.tid_cmp * 5 < m_full.tid_cmp,
            "lookahead {} vs full {}",
            m_max.tid_cmp,
            m_full.tid_cmp
        );
    }

    #[test]
    fn dense_lookahead_agrees_across_representations() {
        let db = dense_db();
        let minsup = MinSupport::from_percent(50.0);
        let oracle = maximal_of(&crate::sequential::mine(&db, minsup));
        for repr in all_representations() {
            let cfg = EclatConfig::with_representation(repr);
            let got = mine_maximal_with(&db, minsup, &cfg, &mut OpMeter::new());
            assert_eq!(got, oracle, "{repr:?}");
        }
    }

    #[test]
    fn maximal_stats_report_switch_events_on_diffsets() {
        let db = dense_db();
        let minsup = MinSupport::from_percent(50.0);
        let cfg = EclatConfig::with_representation(Representation::Diffset);
        let (fs, stats) = mine_maximal_stats(&db, minsup, &cfg, &mut OpMeter::new());
        assert_eq!(fs.len(), 1);
        assert_eq!(stats.algorithm, "maxeclat");
        assert_eq!(stats.representation, "diffset");
        let totals = stats.kernel_totals();
        assert!(
            totals.switch_events > 0,
            "diffset look-ahead must record the tidlist → diffset switch"
        );
        assert!(totals.joins > 0);
        // The four live phases in order.
        let labels: Vec<&str> = stats.phases.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![PHASE_INIT, PHASE_TRANSFORM, PHASE_ASYNC, PHASE_REDUCE]
        );
        // The JSON surface carries the algorithm and switch events.
        let json = stats.to_json(false);
        assert!(json.contains("\"algorithm\":\"maxeclat\""), "{json}");
        assert!(json.contains("\"switch_events\""), "{json}");
    }

    #[test]
    fn no_member_of_output_subsumes_another() {
        let db = random_db(12, 300, 14, 6);
        let minsup = MinSupport::from_percent(5.0);
        let max = mine_maximal(&db, minsup);
        let v: Vec<_> = max.iter().collect();
        for (i, (a, _)) in v.iter().enumerate() {
            for (j, (b, _)) in v.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset_of(b), "{a} ⊆ {b}");
                }
            }
        }
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        assert!(mine_maximal(&db, MinSupport::from_percent(1.0)).is_empty());
        for repr in all_representations() {
            let cfg = EclatConfig::with_representation(repr);
            assert!(mine_maximal_with(
                &db,
                MinSupport::from_percent(1.0),
                &cfg,
                &mut OpMeter::new()
            )
            .is_empty());
        }
    }
}
