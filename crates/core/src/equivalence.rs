//! Equivalence-class partitioning of frequent itemsets (§4.1).
//!
//! `[a] = { b ∈ L_{k-1} | a[1:k−2] = b[1:k−2] }` — itemsets sharing their
//! length-(k−2) prefix. Candidates are generated *within* a class only,
//! and classes are independent: the insight that lets Eclat decouple the
//! processors after one scheduling step.

use mining_types::{ItemId, Itemset};
use tidlist::{TidList, TidSet};

/// A member of an equivalence class: the extension item beyond the shared
/// prefix, its full itemset, and its vertical representation (a tid-list
/// by default; any [`TidSet`] — diffsets, the adaptive switcher — works).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassMember<S = TidList> {
    /// The full itemset (prefix + extension).
    pub itemset: Itemset,
    /// The itemset's vertical representation.
    pub tids: S,
}

/// An equivalence class: a shared prefix and its members sorted by
/// extension item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivalenceClass<S = TidList> {
    /// The common length-(k−1) prefix of the k-itemset members... for
    /// members of size `k`, the prefix has size `k − 1`.
    pub prefix: Itemset,
    /// Members in ascending itemset order.
    pub members: Vec<ClassMember<S>>,
}

impl<S> EquivalenceClass<S> {
    /// Number of members `s`.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The §5.2.1 scheduling weight `C(s, 2)` — the number of candidate
    /// joins the class will produce at the next level.
    pub fn weight(&self) -> u64 {
        mining_types::itemset::choose2(self.size())
    }
}

impl<S: TidSet> EquivalenceClass<S> {
    /// Sum of member supports (the alternative weight heuristic the paper
    /// suggests: *"We could also make use of the average support of the
    /// itemsets within a class to get better weight factors"*).
    pub fn support_weight(&self) -> u64 {
        self.members.iter().map(|m| m.tids.support() as u64).sum()
    }

    /// Total vertical-representation bytes of the class (what moves in
    /// the exchange).
    pub fn byte_size(&self) -> u64 {
        self.members.iter().map(|m| m.tids.byte_size()).sum()
    }
}

/// Group frequent 2-itemsets (with tid-lists) into the `L2` equivalence
/// classes keyed by first item.
///
/// Input order is free; output classes are sorted by prefix item, members
/// by second item. Classes with a single member are **kept** here — the
/// scheduler needs to see them even though they generate no candidates
/// (§4.1 discards them only for candidate generation).
pub fn classes_of_l2(pairs: Vec<(ItemId, ItemId, TidList)>) -> Vec<EquivalenceClass> {
    let mut sorted = pairs;
    sorted.sort_by_key(|p| (p.0, p.1));
    let mut classes: Vec<EquivalenceClass> = Vec::new();
    for (a, b, tids) in sorted {
        assert!(a < b, "2-itemset must be ordered");
        let member = ClassMember {
            itemset: Itemset::pair(a, b),
            tids,
        };
        match classes.last_mut() {
            Some(c) if c.prefix.items() == [a] => c.members.push(member),
            _ => classes.push(EquivalenceClass {
                prefix: Itemset::single(a),
                members: vec![member],
            }),
        }
    }
    classes
}

/// Group same-size itemset members by their length-(k−1) prefix — the
/// recursive re-partitioning step inside `Compute_Frequent` (Figure 3:
/// *"Partition L_k into equivalence classes"*).
///
/// `members` must be sorted by itemset (they are, when produced by the
/// in-order joins of the kernel). Generic over the representation: the
/// grouping never looks at the vertical data.
pub fn repartition<S>(members: Vec<ClassMember<S>>) -> Vec<EquivalenceClass<S>> {
    let mut classes: Vec<EquivalenceClass<S>> = Vec::new();
    for m in members {
        let k = m.itemset.len();
        assert!(k >= 2, "repartition needs itemsets of size >= 2");
        let prefix_len = k - 1;
        match classes.last_mut() {
            Some(c)
                if c.prefix.len() == prefix_len
                    && c.prefix.items() == &m.itemset.items()[..prefix_len] =>
            {
                c.members.push(m)
            }
            _ => classes.push(EquivalenceClass {
                prefix: Itemset::from_sorted(m.itemset.items()[..prefix_len].to_vec()),
                members: vec![m],
            }),
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(raw: &[u32]) -> TidList {
        TidList::of(raw)
    }

    fn pair(a: u32, b: u32) -> (ItemId, ItemId, TidList) {
        (ItemId(a), ItemId(b), tl(&[a * 10 + b]))
    }

    #[test]
    fn l2_classes_match_paper_example() {
        // §4.1: L2 = {AB AC AD AE BC BD BE DE} →
        // S_A = {AB,AC,AD,AE}, S_B = {BC,BD,BE}, S_D = {DE}
        let l2 = vec![
            pair(1, 3),
            pair(0, 1),
            pair(0, 2),
            pair(3, 4),
            pair(0, 3),
            pair(1, 2),
            pair(0, 4),
            pair(1, 4),
        ];
        let classes = classes_of_l2(l2);
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].prefix, Itemset::of(&[0]));
        assert_eq!(classes[0].size(), 4);
        assert_eq!(classes[1].prefix, Itemset::of(&[1]));
        assert_eq!(classes[1].size(), 3);
        assert_eq!(classes[2].prefix, Itemset::of(&[3]));
        assert_eq!(classes[2].size(), 1);
        // members sorted by extension
        let exts: Vec<u32> = classes[0]
            .members
            .iter()
            .map(|m| m.itemset.items()[1].0)
            .collect();
        assert_eq!(exts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn weights_match_section_521() {
        let l2 = vec![pair(0, 1), pair(0, 2), pair(0, 3), pair(0, 4), pair(5, 6)];
        let classes = classes_of_l2(l2);
        assert_eq!(classes[0].weight(), 6, "C(4,2)");
        assert_eq!(classes[1].weight(), 0, "singleton class");
    }

    #[test]
    fn support_weight_sums_tidlists() {
        let l2 = vec![
            (ItemId(0), ItemId(1), tl(&[1, 2, 3])),
            (ItemId(0), ItemId(2), tl(&[4])),
        ];
        let classes = classes_of_l2(l2);
        assert_eq!(classes[0].support_weight(), 4);
        assert_eq!(classes[0].byte_size(), 16);
    }

    #[test]
    fn repartition_groups_by_long_prefix() {
        let mk = |raw: &[u32]| ClassMember {
            itemset: Itemset::of(raw),
            tids: tl(&[1]),
        };
        let l3 = vec![
            mk(&[0, 1, 2]),
            mk(&[0, 1, 3]),
            mk(&[0, 2, 3]),
            mk(&[1, 2, 3]),
        ];
        let classes = repartition(l3);
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].prefix, Itemset::of(&[0, 1]));
        assert_eq!(classes[0].size(), 2);
        assert_eq!(classes[1].prefix, Itemset::of(&[0, 2]));
        assert_eq!(classes[2].prefix, Itemset::of(&[1, 2]));
    }

    #[test]
    fn empty_inputs() {
        assert!(classes_of_l2(vec![]).is_empty());
        assert!(repartition::<TidList>(vec![]).is_empty());
    }
}
