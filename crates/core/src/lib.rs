//! **Eclat** — the paper's contribution: localized (parallel) association
//! mining via equivalence-class clustering and vertical tid-list
//! intersections.
//!
//! One generic recursive kernel ([`compute::compute_frequent`], Figure 3
//! of the paper) serves every variant. It is parameterized over the
//! members' vertical representation ([`tidlist::TidSet`]): plain
//! tid-lists, d-Eclat diffsets, or the mid-recursion
//! [`tidlist::AdaptiveSet`] switcher — selected per run through
//! [`compute::Representation`] in [`EclatConfig`]. All pairwise candidate
//! generation funnels through one loop (`compute::join_level`), so
//! operation metering is comparable across variants and representations.
//!
//! The drivers share the three-phase [`pipeline`] (§7's three scans:
//! initialization/`L2` counting → vertical transformation → asynchronous
//! per-class mining), parameterized by an execution policy:
//!
//! * [`sequential`] — the pipeline under the single-processor
//!   [`pipeline::Serial`] policy (§5, specialized to one processor);
//! * [`parallel`] — the pipeline under the shared-memory
//!   [`pipeline::Rayon`] policy: classes are independent (§4.1), so they
//!   become rayon tasks — the API a downstream user wants on a modern
//!   multicore box;
//! * [`cluster`] — the paper's distributed algorithm, phase for phase
//!   (Figure 2: initialization / transformation / asynchronous / final
//!   reduction), composing the pipeline's phase helpers around the
//!   simulated DEC Memory Channel cluster of the [`memchannel`] crate,
//!   producing both the mining result and a virtual
//!   [`memchannel::Timeline`];
//! * [`hybrid`] — the future-work extension of §8.1/§9: the database is
//!   partitioned among *hosts* only and processors within a host share
//!   the class queue, eliminating intra-host disk contention.
//!
//! Companion algorithms from the paper's reference \[18\]: [`clique`]
//! (maximal-clique itemset clustering) and [`maximal`] (MaxEclat with
//! look-ahead for maximal frequent itemsets) — both reuse the shared
//! kernel loop for their pairwise joins.
//!
//! Supporting modules: [`equivalence`] (prefix-class partitioning, §4.1,
//! generic over the representation), [`schedule`] (greedy least-loaded
//! class scheduling with `C(s,2)` weights, §5.2.1), [`executor`] (the
//! [`TaskExecutor`] face of the three policies — weighted independent
//! tasks in task order, reused by the `eclat-seq` sequence miner),
//! [`transform`]
//! (horizontal → vertical transformation with §6.3's offset placement),
//! and [`diffset_mine`] (the d-Eclat entry point — a thin wrapper over
//! the generic kernel at [`compute::Representation::Diffset`]).

pub mod clique;
pub mod cluster;
pub mod compute;
pub mod diffset_mine;
pub mod equivalence;
pub mod executor;
pub mod hybrid;
pub mod maximal;
pub mod parallel;
pub mod pipeline;
pub mod schedule;
pub mod sequential;
pub mod transform;

pub use compute::{EclatConfig, Representation, DEFAULT_DENSITY_PERMILLE};
pub use executor::TaskExecutor;
pub use schedule::ScheduleHeuristic;
