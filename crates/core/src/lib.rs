//! **Eclat** — the paper's contribution: localized (parallel) association
//! mining via equivalence-class clustering and vertical tid-list
//! intersections.
//!
//! Four variants share one recursive kernel ([`compute::compute_frequent`],
//! Figure 3 of the paper):
//!
//! * [`sequential`] — single-process Eclat: triangular `L2` counting on
//!   the horizontal layout, vertical transformation, then depth-first
//!   equivalence-class mining (§5, specialized to one processor);
//! * [`parallel`] — shared-memory Eclat on rayon: classes are independent
//!   (§4.1), so they become parallel tasks — the API a downstream user
//!   wants on a modern multicore box;
//! * [`cluster`] — the paper's distributed algorithm, phase for phase
//!   (Figure 2: initialization / transformation / asynchronous / final
//!   reduction), executed against the simulated DEC Memory Channel
//!   cluster of the [`memchannel`] crate, producing both the mining
//!   result and a virtual [`memchannel::Timeline`];
//! * [`hybrid`] — the future-work extension of §8.1/§9: the database is
//!   partitioned among *hosts* only and processors within a host share
//!   the class queue, eliminating intra-host disk contention.
//!
//! Companion algorithms from the paper's reference \[18\]: [`clique`]
//! (maximal-clique itemset clustering) and [`maximal`] (MaxEclat with
//! look-ahead for maximal frequent itemsets).
//!
//! Supporting modules: [`equivalence`] (prefix-class partitioning, §4.1),
//! [`schedule`] (greedy least-loaded class scheduling with `C(s,2)`
//! weights, §5.2.1), [`transform`] (horizontal → vertical transformation
//! with §6.3's offset placement), and [`diffset_mine`] (the d-Eclat
//! diffset extension).

pub mod clique;
pub mod cluster;
pub mod compute;
pub mod diffset_mine;
pub mod equivalence;
pub mod hybrid;
pub mod maximal;
pub mod parallel;
pub mod schedule;
pub mod sequential;
pub mod transform;

pub use compute::EclatConfig;
pub use schedule::ScheduleHeuristic;
