//! Sequential Eclat — the paper's algorithm on one processor.
//!
//! Three database scans, exactly as §7 enumerates: *"The first scan for
//! building L2, the second for transforming the database, and the third
//! for obtaining the frequent itemsets"* (in-memory here, the scans are
//! the three passes over the horizontal structure; the cluster variant
//! prices them through the disk model).

use crate::compute::EclatConfig;
use crate::pipeline::{self, Serial};
use dbstore::HorizontalDb;
use mining_types::{FrequentSet, MinSupport, OpMeter};

/// Mine all frequent itemsets of size ≥ 2 with default configuration.
///
/// Like the paper's Eclat, singleton supports are not computed; pass
/// [`EclatConfig::with_singletons`] to [`mine_with`] for a complete
/// downward-closed result (needed by rule generation).
pub fn mine(db: &HorizontalDb, minsup: MinSupport) -> FrequentSet {
    let mut meter = OpMeter::new();
    mine_with(db, minsup, &EclatConfig::default(), &mut meter)
}

/// Mine with explicit configuration and metering: the three-phase
/// [`pipeline`] under the single-processor [`Serial`] policy.
pub fn mine_with(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> FrequentSet {
    pipeline::run(db, minsup, cfg, meter, &Serial)
}

/// [`mine_with`] that also returns the structured [`mining_types::MiningStats`] report
/// (per-phase timings/ops, per-level counts, per-class kernel work).
pub fn mine_stats(
    db: &HorizontalDb,
    minsup: MinSupport,
    cfg: &EclatConfig,
    meter: &mut OpMeter,
) -> (FrequentSet, mining_types::MiningStats) {
    pipeline::run_stats(db, minsup, cfg, meter, &Serial, "sequential")
}

#[cfg(test)]
mod tests {
    use super::*;
    use apriori::reference::{brute_force, random_db};
    use mining_types::Itemset;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    fn strip_singletons(fs: &FrequentSet) -> FrequentSet {
        fs.iter()
            .filter(|(is, _)| is.len() >= 2)
            .map(|(is, s)| (is.clone(), s))
            .collect()
    }

    #[test]
    fn toy_database_hand_check() {
        let db = HorizontalDb::of(&[&[0, 1, 2], &[0, 1], &[0, 2], &[1, 2], &[0, 1, 2], &[3]]);
        let fs = mine(&db, MinSupport::from_fraction(0.5)); // threshold 3
        assert_eq!(fs.support_of(&iset(&[0, 1])), Some(3));
        assert_eq!(fs.support_of(&iset(&[0, 2])), Some(3));
        assert_eq!(fs.support_of(&iset(&[1, 2])), Some(3));
        assert_eq!(fs.support_of(&iset(&[0, 1, 2])), None, "support 2 < 3");
        assert_eq!(fs.len(), 3, "no singletons by default");
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..5u64 {
            let db = random_db(seed, 80, 12, 6);
            for pct in [5.0, 10.0, 25.0] {
                let minsup = MinSupport::from_percent(pct);
                let ours = mine(&db, minsup);
                let truth = strip_singletons(&brute_force(&db, minsup));
                assert_eq!(ours, truth, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn agrees_with_apriori_including_singletons() {
        let db = random_db(42, 150, 14, 6);
        let minsup = MinSupport::from_percent(6.0);
        let mut meter = OpMeter::new();
        let ours = mine_with(&db, minsup, &EclatConfig::with_singletons(), &mut meter);
        let ap = apriori::mine(&db, minsup);
        assert_eq!(ours, ap);
        assert_eq!(ours.closure_violation(), None);
    }

    #[test]
    fn all_config_combinations_agree() {
        let db = random_db(7, 100, 12, 5);
        let minsup = MinSupport::from_percent(8.0);
        let base = mine(&db, minsup);
        for short_circuit in [true, false] {
            for prune in [true, false] {
                let cfg = EclatConfig {
                    short_circuit,
                    prune,
                    ..Default::default()
                };
                let mut meter = OpMeter::new();
                assert_eq!(
                    mine_with(&db, minsup, &cfg, &mut meter),
                    base,
                    "sc={short_circuit} prune={prune}"
                );
            }
        }
    }

    #[test]
    fn empty_database_and_no_frequent_pairs() {
        let empty = HorizontalDb::of(&[]);
        assert!(mine(&empty, MinSupport::from_percent(1.0)).is_empty());

        // every item occurs once — no frequent pair at threshold 2
        let sparse = HorizontalDb::of(&[&[0, 1], &[2, 3], &[4, 5]]);
        let fs = mine(&sparse, MinSupport::from_fraction(0.5));
        assert!(fs.is_empty());
    }

    #[test]
    fn meter_reports_the_three_scan_structure() {
        let db = random_db(3, 60, 10, 5);
        let mut meter = OpMeter::new();
        mine_with(
            &db,
            MinSupport::from_percent(10.0),
            &EclatConfig::default(),
            &mut meter,
        );
        // two horizontal scans → record >= 2·|D|
        assert!(meter.record >= 120);
        assert!(meter.pair_incr > 0, "triangular pass happened");
        assert!(meter.tid_cmp > 0, "intersections happened");
        assert_eq!(meter.hash_probe, 0, "no hash tree anywhere in Eclat");
    }
}
