//! `eclat` — command-line association mining.
//!
//! Subcommands:
//!
//! ```text
//! eclat generate --out data.ech --family t10i6 --transactions 100000 [--seed N]
//! eclat stats    --input data.ech
//! eclat mine     --input data.ech --support 0.1 [--algorithm eclat|parallel|apriori|clique]
//!                [--representation tidlist|diffset|autoswitch[:DEPTH]]
//!                [--maximal] [--min-size K] [--top N] [--stats[=json]]
//! ```
//!
//! `--repr` is accepted as a shorthand for `--representation`; `--maximal`
//! (MaxEclat) composes with every representation, and with `--stats[=json]`
//! it emits an `"algorithm":"maxeclat"` report including look-ahead switch
//! events.
//!
//! ```text
//! eclat rules    --input data.ech --support 0.5 --confidence 0.8 [--top N]
//! eclat simulate --input data.ech --support 0.1 --hosts 8 --procs 4
//!                [--algorithm eclat|hybrid|countdist]
//!                [--representation tidlist|diffset|autoswitch[:DEPTH]]
//!                [--stats[=json]]
//! ```
//!
//! `--stats` appends the structured [`mining_types::MiningStats`] report
//! (per-phase timings/ops, per-level counts, kernel work, and — for
//! `simulate` — the per-processor timeline split); `--stats=json` emits
//! only the machine-readable JSON document.
//!
//! Databases are the workspace's binary horizontal format
//! ([`dbstore::binfmt`]). Every subcommand is a pure function from
//! parsed arguments to a report string, so the whole surface is
//! unit-testable without spawning processes.

use dbstore::{binfmt, HorizontalDb};
use memchannel::{ClusterConfig, CostModel};
use mining_types::{FrequentSet, MinSupport, OpMeter};
use questgen::{QuestGenerator, QuestParams};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Top-level dispatch. `argv` excludes the program name.
///
/// # Errors
/// A human-readable message on bad usage, I/O failure, or bad data.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let args = parse_flags(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "mine" => cmd_mine(&args),
        "rules" => cmd_rules(&args),
        "simulate" => cmd_simulate(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown subcommand '{other}'\n\n{}", usage())),
    }
}

/// Usage text.
pub fn usage() -> String {
    "eclat — association mining (reproduction of Zaki et al., SPAA'97)\n\
     \n\
     subcommands:\n\
       generate --out FILE --transactions N [--family t10i6|t5i2|t20i4|t20i6] [--seed N]\n\
       stats    --input FILE\n\
       mine     --input FILE --support PCT [--algorithm eclat|parallel|apriori|clique]\n\
                [--representation tidlist|diffset|autoswitch[:DEPTH]] (alias --repr)\n\
                [--maximal] [--min-size K] [--top N] [--stats[=json]]\n\
       rules    --input FILE --support PCT --confidence FRAC [--top N]\n\
       simulate --input FILE --support PCT [--hosts H] [--procs P]\n\
                [--algorithm eclat|hybrid|countdist]\n\
                [--representation tidlist|diffset|autoswitch[:DEPTH]]\n\
                [--stats[=json]]\n"
        .to_string()
}

struct Flags {
    pairs: Vec<(String, String)>,
    bare: Vec<String>,
}

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn has(&self, key: &str) -> bool {
        self.bare.iter().any(|b| b == key) || self.get(key).is_some()
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }
}

fn parse_flags(rest: &[String]) -> Result<Flags, String> {
    let mut pairs = Vec::new();
    let mut bare = Vec::new();
    let mut it = rest.iter().peekable();
    while let Some(tok) = it.next() {
        let Some(stripped) = tok.strip_prefix("--") else {
            return Err(format!("unexpected argument '{tok}' (flags start with --)"));
        };
        if let Some((k, v)) = stripped.split_once('=') {
            pairs.push((k.to_string(), v.to_string()));
        } else if let Some(next) = it.peek() {
            if next.starts_with("--") {
                bare.push(stripped.to_string());
            } else {
                pairs.push((stripped.to_string(), it.next().unwrap().clone()));
            }
        } else {
            bare.push(stripped.to_string());
        }
    }
    Ok(Flags { pairs, bare })
}

fn load_db(flags: &Flags) -> Result<HorizontalDb, String> {
    let path = flags.require("input")?;
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut r = BufReader::new(f);
    let (db, _) = binfmt::read_horizontal(&mut r).map_err(|e| format!("read {path}: {e}"))?;
    Ok(db)
}

fn support_of(flags: &Flags) -> Result<MinSupport, String> {
    let pct: f64 = flags
        .require("support")?
        .trim_end_matches('%')
        .parse()
        .map_err(|_| "--support: expected a percentage".to_string())?;
    if !(0.0..=100.0).contains(&pct) {
        return Err("--support must be in [0, 100]".to_string());
    }
    Ok(MinSupport::from_percent(pct))
}

fn cmd_generate(flags: &Flags) -> Result<String, String> {
    let out = flags.require("out")?;
    let d: usize = flags.parse("transactions", 0usize)?;
    if d == 0 {
        return Err("--transactions must be > 0".to_string());
    }
    let seed: u64 = flags.parse("seed", 0x5EEDu64)?;
    let family = flags.get("family").unwrap_or("t10i6");
    let params = match family {
        "t10i6" => QuestParams::t10_i6(d),
        "t5i2" => QuestParams::t5_i2(d),
        "t20i4" => QuestParams::t20_i4(d),
        "t20i6" => QuestParams::t20_i6(d),
        other => return Err(format!("unknown family '{other}'")),
    }
    .with_seed(seed);
    let name = params.name();
    let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(f);
    let bytes = binfmt::write_horizontal(&db, &mut w).map_err(|e| e.to_string())?;
    Ok(format!(
        "generated {name}: {} transactions, {} items, {:.1} MB -> {out}\n",
        db.num_transactions(),
        db.num_items(),
        bytes as f64 / (1024.0 * 1024.0)
    ))
}

fn cmd_stats(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let mut hist = vec![0usize; 1 + db.iter().map(|(_, t)| t.len()).max().unwrap_or(0)];
    for (_, t) in db.iter() {
        hist[t.len()] += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "transactions : {}", db.num_transactions());
    let _ = writeln!(out, "items        : {}", db.num_items());
    let _ = writeln!(out, "avg length   : {:.2}", db.avg_transaction_len());
    let _ = writeln!(out, "total bytes  : {}", db.byte_size());
    let _ = writeln!(out, "length histogram:");
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (len, &n) in hist.iter().enumerate() {
        if n > 0 {
            let bar = "#".repeat((n * 40 / max).max(1));
            let _ = writeln!(out, "  {len:>3}: {n:>8} {bar}");
        }
    }
    Ok(out)
}

/// What `--stats[=json]` asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StatsMode {
    /// No stats report.
    Off,
    /// Append the human-readable report.
    Human,
    /// Emit only the JSON document.
    Json,
}

fn stats_mode(flags: &Flags) -> Result<StatsMode, String> {
    match flags.get("stats") {
        Some("json") => Ok(StatsMode::Json),
        Some(other) => Err(format!(
            "--stats: expected '--stats' or '--stats=json', got '{other}'"
        )),
        None if flags.has("stats") => Ok(StatsMode::Human),
        None => Ok(StatsMode::Off),
    }
}

/// Parse `--representation tidlist|diffset|autoswitch[:DEPTH]` (also
/// accepted under the `--repr` shorthand).
fn representation_of(flags: &Flags) -> Result<eclat::Representation, String> {
    let Some(raw) = flags.get("representation").or_else(|| flags.get("repr")) else {
        return Ok(eclat::Representation::default());
    };
    match raw.split_once(':') {
        None => match raw {
            "tidlist" => Ok(eclat::Representation::TidList),
            "diffset" => Ok(eclat::Representation::Diffset),
            "autoswitch" => Ok(eclat::Representation::AutoSwitch { depth: 2 }),
            other => Err(format!(
                "unknown representation '{other}' (tidlist|diffset|autoswitch[:DEPTH])"
            )),
        },
        Some(("autoswitch", d)) => {
            let depth: u32 = d
                .parse()
                .map_err(|_| format!("bad autoswitch depth '{d}'"))?;
            Ok(eclat::Representation::AutoSwitch { depth })
        }
        Some((other, _)) => Err(format!(
            "unknown representation '{other}' (only autoswitch takes a :DEPTH)"
        )),
    }
}

fn mine_by_algorithm(
    db: &HorizontalDb,
    minsup: MinSupport,
    algorithm: &str,
    representation: eclat::Representation,
) -> Result<FrequentSet, String> {
    let mut meter = OpMeter::new();
    let cfg = eclat::EclatConfig::with_representation(representation);
    Ok(match algorithm {
        "eclat" => eclat::sequential::mine_with(db, minsup, &cfg, &mut meter),
        "parallel" => eclat::parallel::mine_with(db, minsup, &cfg, &mut meter),
        "apriori" => {
            if representation != eclat::Representation::default() {
                return Err("--representation applies to the eclat variants only".to_string());
            }
            apriori::mine(db, minsup)
        }
        "clique" => eclat::clique::mine_with(db, minsup, &cfg, &mut meter),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn cmd_mine(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let algorithm = flags.get("algorithm").unwrap_or("eclat");
    let representation = representation_of(flags)?;
    let min_size: usize = flags.parse("min-size", 2usize)?;
    let top: usize = flags.parse("top", 20usize)?;
    let stats = stats_mode(flags)?;

    let t0 = std::time::Instant::now();
    let mut report = None;
    let fs = if flags.has("maximal") {
        let cfg = eclat::EclatConfig::with_representation(representation);
        if stats != StatsMode::Off {
            let (fs, r) =
                eclat::maximal::mine_maximal_stats(&db, minsup, &cfg, &mut OpMeter::new());
            report = Some(r);
            fs
        } else {
            eclat::maximal::mine_maximal_with(&db, minsup, &cfg, &mut OpMeter::new())
        }
    } else if stats != StatsMode::Off {
        let cfg = eclat::EclatConfig::with_representation(representation);
        let mut meter = OpMeter::new();
        let (fs, r) = match algorithm {
            "eclat" => eclat::sequential::mine_stats(&db, minsup, &cfg, &mut meter),
            "parallel" => eclat::parallel::mine_stats(&db, minsup, &cfg, &mut meter),
            other => {
                return Err(format!(
                    "--stats supports --algorithm eclat|parallel, not '{other}'"
                ))
            }
        };
        report = Some(r);
        fs
    } else {
        mine_by_algorithm(&db, minsup, algorithm, representation)?
    };
    let dt = t0.elapsed().as_secs_f64();

    if stats == StatsMode::Json {
        let mut json = report
            .expect("json mode always mines with stats")
            .to_json(true);
        json.push('\n');
        return Ok(json);
    }

    let mut out = String::new();
    let kind = if flags.has("maximal") {
        "maximal frequent"
    } else {
        "frequent"
    };
    let _ = writeln!(
        out,
        "{} {kind} itemsets in {dt:.2}s ({algorithm})",
        fs.len()
    );
    let counts = fs.counts_by_size();
    for (k, c) in counts.iter().enumerate() {
        if *c > 0 {
            let _ = writeln!(out, "  size {:>2}: {c}", k + 1);
        }
    }
    let mut shown = 0usize;
    let _ = writeln!(out, "top by support (size >= {min_size}):");
    let mut sorted = fs.sorted();
    sorted.sort_by(|a, b| b.support.cmp(&a.support).then(a.itemset.cmp(&b.itemset)));
    for c in sorted {
        if c.itemset.len() >= min_size {
            let _ = writeln!(out, "  {:<40} {:>8}", format!("{}", c.itemset), c.support);
            shown += 1;
            if shown >= top {
                break;
            }
        }
    }
    if let Some(r) = &report {
        out.push('\n');
        out.push_str(&r.render());
    }
    Ok(out)
}

fn cmd_rules(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let confidence: f64 = flags.parse("confidence", 0.8f64)?;
    if !(0.0..=1.0).contains(&confidence) {
        return Err("--confidence must be in [0, 1]".to_string());
    }
    let top: usize = flags.parse("top", 20usize)?;
    let mut meter = OpMeter::new();
    let fs = eclat::sequential::mine_with(
        &db,
        minsup,
        &eclat::EclatConfig::with_singletons(),
        &mut meter,
    );
    let rules = assoc_rules::generate(&fs, confidence);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} rules at confidence >= {confidence} (from {} frequent itemsets)",
        rules.len(),
        fs.len()
    );
    for r in rules.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<26} => {:<18} conf {:.3}  sup {:>6}  lift {:.2}",
            format!("{}", r.antecedent),
            format!("{}", r.consequent),
            r.confidence(),
            r.support,
            r.lift(db.num_transactions())
        );
    }
    Ok(out)
}

fn cmd_simulate(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let hosts: usize = flags.parse("hosts", 8usize)?;
    let procs: usize = flags.parse("procs", 1usize)?;
    if hosts == 0 || procs == 0 {
        return Err("--hosts and --procs must be > 0".to_string());
    }
    let topo = ClusterConfig::new(hosts, procs);
    let cost = CostModel::dec_alpha_1997();
    let algorithm = flags.get("algorithm").unwrap_or("eclat");
    let cfg = eclat::EclatConfig::with_representation(representation_of(flags)?);
    let stats = stats_mode(flags)?;
    let mut out = String::new();
    match algorithm {
        "eclat" | "hybrid" => {
            let rep = if algorithm == "hybrid" {
                eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &cfg)
            } else {
                eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg)
            };
            if stats == StatsMode::Json {
                let mut json = rep.stats.to_json(true);
                json.push('\n');
                return Ok(json);
            }
            let _ = writeln!(
                out,
                "{algorithm} on {} — simulated {:.2}s (setup {:.2}s), |L2| = {}, {} frequent itemsets",
                topo.label(),
                rep.total_secs(),
                rep.setup_secs(),
                rep.num_l2,
                rep.frequent.len()
            );
            out.push_str(&memchannel::stats::render(&rep.timeline));
            if stats == StatsMode::Human {
                out.push('\n');
                out.push_str(&rep.stats.render());
            }
        }
        "countdist" => {
            if stats != StatsMode::Off {
                return Err("--stats supports --algorithm eclat|hybrid only".to_string());
            }
            let rep = parbase::mine_count_dist(&db, minsup, &topo, &cost, &Default::default());
            let _ = writeln!(
                out,
                "countdist on {} — simulated {:.2}s, {} iterations, {} frequent itemsets",
                topo.label(),
                rep.total_secs(),
                rep.iterations,
                rep.frequent.len()
            );
            out.push_str(&memchannel::stats::render(&rep.timeline));
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn tempfile(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("eclat-cli-{tag}-{}.ech", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn generate(path: &str, n: usize) {
        let out = run(&argv(&[
            "generate",
            "--out",
            path,
            "--transactions",
            &n.to_string(),
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("generated T10.I6."), "{out}");
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&argv(&["help"])).unwrap().contains("subcommands"));
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn generate_stats_mine_rules_simulate_pipeline() {
        let path = tempfile("pipe");
        generate(&path, 3000);

        let stats = run(&argv(&["stats", "--input", &path])).unwrap();
        assert!(stats.contains("transactions : 3000"), "{stats}");
        assert!(stats.contains("length histogram"));

        let mined = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--top",
            "5",
        ]))
        .unwrap();
        assert!(mined.contains("frequent itemsets"), "{mined}");
        assert!(mined.contains("size  2:"), "{mined}");

        let rules = run(&argv(&[
            "rules",
            "--input",
            &path,
            "--support",
            "0.5",
            "--confidence",
            "0.7",
        ]))
        .unwrap();
        assert!(rules.contains("rules at confidence"), "{rules}");

        let sim = run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "0.5",
            "--hosts",
            "2",
            "--procs",
            "2",
        ]))
        .unwrap();
        assert!(sim.contains("simulated"), "{sim}");
        assert!(sim.contains("init"), "{sim}");

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn algorithms_agree_via_cli() {
        let path = tempfile("algos");
        generate(&path, 2000);
        let base = run(&argv(&["mine", "--input", &path, "--support", "0.5"])).unwrap();
        for algo in ["parallel", "apriori", "clique"] {
            let out = run(&argv(&[
                "mine",
                "--input",
                &path,
                "--support",
                "0.5",
                "--algorithm",
                algo,
            ]))
            .unwrap();
            // same per-size breakdown lines (apriori adds size-1 row)
            for line in base.lines().filter(|l| l.trim_start().starts_with("size")) {
                assert!(out.contains(line.trim()), "{algo} missing {line}");
            }
        }
        let maximal = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--maximal",
        ]))
        .unwrap();
        assert!(maximal.contains("maximal frequent"), "{maximal}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_paths() {
        assert!(run(&argv(&["mine", "--support", "1"]))
            .unwrap_err()
            .contains("--input"));
        assert!(run(&argv(&[
            "mine",
            "--input",
            "/nonexistent",
            "--support",
            "1"
        ]))
        .unwrap_err()
        .contains("open"));
        let path = tempfile("err");
        generate(&path, 100);
        assert!(run(&argv(&["mine", "--input", &path, "--support", "200"]))
            .unwrap_err()
            .contains("[0, 100]"));
        assert!(run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "1",
            "--algorithm",
            "bogus"
        ]))
        .unwrap_err()
        .contains("unknown algorithm"));
        assert!(run(&argv(&["generate", "--out", "/tmp/x.ech"]))
            .unwrap_err()
            .contains("--transactions"));
        assert!(run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "1",
            "--hosts",
            "0"
        ]))
        .unwrap_err()
        .contains("must be > 0"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_flag_on_mine_and_simulate() {
        let path = tempfile("stats");
        generate(&path, 1500);
        let human = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--stats",
        ]))
        .unwrap();
        assert!(
            human.contains("mining stats: eclat / sequential / tidlist"),
            "{human}"
        );
        assert!(human.contains("phases:"), "{human}");
        assert!(human.contains("kernel:"), "{human}");

        let json = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--algorithm",
            "parallel",
            "--stats=json",
        ]))
        .unwrap();
        assert!(
            json.starts_with('{') && json.trim_end().ends_with('}'),
            "{json}"
        );
        assert!(json.contains("\"variant\":\"parallel\""), "{json}");
        assert!(json.contains("\"cluster\":null"), "{json}");

        let sim = run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "0.5",
            "--hosts",
            "2",
            "--procs",
            "2",
            "--stats=json",
        ]))
        .unwrap();
        assert!(sim.contains("\"variant\":\"cluster\""), "{sim}");
        assert!(sim.contains("\"load_imbalance\""), "{sim}");

        // Stats are gated to the variants that produce them.
        assert!(run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--algorithm",
            "apriori",
            "--stats",
        ]))
        .unwrap_err()
        .contains("eclat|parallel"));
        assert!(run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "0.5",
            "--algorithm",
            "countdist",
            "--stats",
        ]))
        .unwrap_err()
        .contains("eclat|hybrid"));
        assert!(run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--stats=yaml",
        ]))
        .unwrap_err()
        .contains("--stats"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maximal_works_across_representations() {
        let path = tempfile("maxrep");
        generate(&path, 300);
        let base = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "1",
            "--maximal",
        ]))
        .unwrap();
        for repr in ["diffset", "autoswitch:0", "autoswitch:2"] {
            let out = run(&argv(&[
                "mine",
                "--input",
                &path,
                "--support",
                "1",
                "--maximal",
                "--repr",
                repr,
            ]))
            .unwrap();
            assert_eq!(out, base, "representation {repr} diverged");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maximal_stats_json_reports_switch_events() {
        let path = tempfile("maxstats");
        generate(&path, 300);
        let out = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "1",
            "--maximal",
            "--repr",
            "diffset",
            "--stats=json",
        ]))
        .unwrap();
        assert!(out.contains("\"algorithm\":\"maxeclat\""), "{out}");
        assert!(out.contains("\"representation\":\"diffset\""), "{out}");
        assert!(out.contains("\"switch_events\""), "{out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flag_parser_variants() {
        let f = parse_flags(&argv(&["--a=1", "--b", "2", "--bare"])).unwrap();
        assert_eq!(f.get("a"), Some("1"));
        assert_eq!(f.get("b"), Some("2"));
        assert!(f.has("bare"));
        assert!(!f.has("missing"));
        assert!(parse_flags(&argv(&["loose"])).is_err());
    }
}
