//! `eclat` — command-line association mining.
//!
//! Subcommands:
//!
//! ```text
//! eclat generate --out data.ech --family t10i6 --transactions 100000 [--seed N]
//! eclat stats    --input data.ech
//! eclat mine     --input data.ech --support 0.1 [--algorithm eclat|parallel|apriori|clique]
//!                [--representation tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]]
//!                [--maximal] [--min-size K] [--top N] [--stats[=json]]
//! ```
//!
//! `--repr` is accepted as a shorthand for `--representation`; `--maximal`
//! (MaxEclat) composes with every representation, and with `--stats[=json]`
//! it emits an `"algorithm":"maxeclat"` report including look-ahead switch
//! events.
//!
//! ```text
//! eclat rules    --input data.ech --support 0.5 --confidence 0.8 [--top N]
//! eclat simulate --input data.ech --support 0.1 --hosts 8 --procs 4
//!                [--algorithm eclat|hybrid|countdist]
//!                [--representation tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]]
//!                [--stats[=json]]
//! ```
//!
//! `--stats` appends the structured [`mining_types::MiningStats`] report
//! (per-phase timings/ops, per-level counts, kernel work, and — for
//! `simulate` — the per-processor timeline split); `--stats=json` emits
//! only the machine-readable JSON document.
//!
//! ```text
//! eclat worker   [--listen HOST:PORT] [--threads P] [--mem-budget BYTES]
//!                [--port-file PATH] [--serve-secs S]
//! eclat dmine    --input data.ech --support PCT
//!                (--workers HOST:PORT,... | --spawn-local N)
//!                [--threads P] [--mem-budget BYTES]
//!                [--representation tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]]
//!                [--min-size K] [--top N] [--stats[=json]]
//! ```
//!
//! `worker` runs one [`eclat_net`] cluster worker; `dmine` coordinates a
//! distributed mine over real TCP workers — either ones already running
//! (`--workers`) or `N` freshly spawned local child processes
//! (`--spawn-local`, killed when the command exits). Each worker is a
//! paper-style host: `--threads P` mines its scheduled classes on `P`
//! OS threads (`0` = one per core), and `--mem-budget BYTES` (suffixes
//! `k`/`m`/`g` accepted) caps the resident exchanged tid-lists, spilling
//! the excess through an out-of-core class store. With `--spawn-local`,
//! `dmine` forwards both flags to every child it spawns. The
//! frequent-set report is identical to `mine`'s after the headline, so
//! the two diff clean; `--stats=json` emits a `"variant":"dist"` report
//! whose `cluster` section shares the simulator's schema (one processor
//! row per worker thread).
//!
//! ```text
//! eclat stream   --input data.ech --support PCT --batch N [--confidence FRAC]
//!                [--representation ...] [--out snap.ecr] [--verify] [--stats[=json]]
//! ```
//!
//! `stream` replays the database as a sequence of `--batch`-sized
//! transaction batches through the incremental [`eclat_stream`] engine:
//! each batch appends to the vertical database, delta-counts the `L2`
//! triangle, re-mines only the *dirty* equivalence classes, and (with
//! `--out`) atomically rewrites the results snapshot with a bumped
//! generation — a live `serve --reload-secs` picks each one up without
//! restarting. `--verify` additionally full-mines every prefix and
//! asserts the incremental state matches exactly.
//!
//! ```text
//! eclat serve    (--input data.ech --support PCT | --load snap.ecr)
//!                [--port P] [--host H] [--reload-secs S]
//!                [--confidence FRAC] [--shards N] [--cache N] [--workers N]
//!                [--port-file PATH] [--serve-secs S]
//! eclat query    --addr HOST:PORT [--ping] [--support-of LIST]
//!                [--subsets-of LIST] [--supersets-of LIST] [--rules-for LIST]
//!                [--topk K [--size S]] [--limit N] [--top N] [--server-stats]
//! ```
//!
//! `serve` mines the database, generates rules, and serves both over the
//! [`assoc_serve`] wire protocol. `--port 0` binds an ephemeral port;
//! `--port-file` writes the bound port so scripts (and the tests) can
//! find it; `--serve-secs` serves for a fixed window and then reports
//! the connection/request counters (omit it to serve until killed).
//! `query` item lists are comma-separated, e.g. `--rules-for 3,17`.
//!
//! `mine --out snap.ecr` additionally persists the mined itemsets and
//! rules as a checksummed [`dbstore::binfmt`] snapshot;
//! `serve --load snap.ecr` boots the query index straight from such a
//! snapshot without re-mining.
//!
//! Databases are the workspace's binary horizontal format
//! ([`dbstore::binfmt`]). Every subcommand is a pure function from
//! parsed arguments to a report string, so the whole surface is
//! unit-testable without spawning processes.

mod common;
mod seq;

use common::{
    arm_tracing, parse_flags, parse_items, parse_mem_budget, stats_mode, support_of, Flags,
    StatsMode,
};
use dbstore::{binfmt, HorizontalDb};
use memchannel::{ClusterConfig, CostModel};
use mining_types::{FrequentSet, MinSupport, OpMeter};
use questgen::{QuestGenerator, QuestParams, SeqGenerator, SeqParams};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Top-level dispatch. `argv` excludes the program name.
///
/// # Errors
/// A human-readable message on bad usage, I/O failure, or bad data.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let args = parse_flags(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "mine" => cmd_mine(&args),
        "seq" => seq::cmd_seq(&args),
        "rules" => cmd_rules(&args),
        "simulate" => cmd_simulate(&args),
        "worker" => cmd_worker(&args),
        "dmine" => cmd_dmine(&args),
        "stream" => cmd_stream(&args),
        "serve" => cmd_serve(&args),
        "query" => cmd_query(&args),
        "trace" => cmd_trace(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown subcommand '{other}'\n\n{}", usage())),
    }
}

/// Usage text.
pub fn usage() -> String {
    "eclat — association mining (reproduction of Zaki et al., SPAA'97)\n\
     \n\
     subcommands:\n\
       generate --out FILE --transactions N [--family t10i6|t5i2|t20i4|t20i6] [--seed N]\n\
       generate --out FILE --sequences N [--family c10t4|c5t2|c20t3] [--seed N]\n\
       stats    --input FILE\n\
       mine     --input FILE --support PCT [--algorithm eclat|parallel|apriori|clique]\n\
                [--representation tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]] (alias --repr)\n\
                [--maximal] [--min-size K] [--top N] [--stats[=json]]\n\
                [--out SNAPSHOT [--confidence FRAC]]\n\
       seq      --input FILE (--minsup|--support) PCT [--maxlen K]\n\
                [--policy serial|rayon|threads[:P]] [--top N]\n\
                [--out SNAPSHOT] [--verify] [--stats[=json]] [--trace PATH]\n\
       rules    --input FILE --support PCT --confidence FRAC [--top N]\n\
       simulate --input FILE --support PCT [--hosts H] [--procs P]\n\
                [--algorithm eclat|hybrid|countdist]\n\
                [--representation tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]]\n\
                [--stats[=json]]\n\
       worker   [--listen HOST:PORT] [--threads P] [--mem-budget BYTES]\n\
                [--port-file PATH] [--serve-secs S]\n\
       dmine    --input FILE --support PCT (--workers HOST:PORT,... | --spawn-local N)\n\
                [--threads P] [--mem-budget BYTES]\n\
                [--representation tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]]\n\
                [--min-size K] [--top N] [--stats[=json]]\n\
       stream   --input FILE --support PCT --batch N [--confidence FRAC]\n\
                [--representation tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]]\n\
                [--out SNAPSHOT] [--verify] [--stats[=json]]\n\
       serve    (--input FILE --support PCT | --load SNAPSHOT) [--port P] [--host H] [--confidence FRAC]\n\
                [--shards N] [--cache N] [--workers N] [--port-file PATH] [--serve-secs S]\n\
                [--reload-secs S]\n\
       query    --addr HOST:PORT [--ping] [--support-of LIST] [--subsets-of LIST]\n\
                [--supersets-of LIST] [--rules-for LIST] [--topk K [--size S]]\n\
                [--limit N] [--top N] [--server-stats] [--metrics]\n\
       trace    --input FILE[,FILE...] [--merge OUT.jsonl] [--chrome OUT.json]\n\
     \n\
     observability:\n\
       mine/dmine/worker take --trace PATH to record span/event timelines\n\
       (dmine --spawn-local merges coordinator + worker traces into PATH);\n\
       `trace` validates/merges trace JSONL and converts it to Chrome\n\
       trace_event JSON; `query --metrics` fetches Prometheus-style text;\n\
       ECLAT_LOG=error|warn|info|debug controls runtime diagnostics.\n"
        .to_string()
}

fn load_db(flags: &Flags) -> Result<HorizontalDb, String> {
    let path = flags.require("input")?;
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut r = BufReader::new(f);
    let (db, _) = binfmt::read_horizontal(&mut r).map_err(|e| format!("read {path}: {e}"))?;
    Ok(db)
}

/// Generate a sequence database (`--sequences N`): Quest's procedure
/// lifted to customer histories, persisted as a [`dbstore::seqfmt`]
/// container for `eclat seq`.
fn generate_sequences(flags: &Flags, out: &str, d: usize, seed: u64) -> Result<String, String> {
    let family = flags.get("family").unwrap_or("c10t4");
    let params = match family {
        "c10t4" => SeqParams::c10_t4(d),
        "c5t2" => SeqParams::c5_t2(d),
        "c20t3" => SeqParams::c20_t3(d),
        other => return Err(format!("unknown sequence family '{other}'")),
    }
    .with_seed(seed);
    let name = params.name();
    let num_items = params.num_items;
    let raw = SeqGenerator::new(params).generate_all_raw();
    let events: usize = raw.iter().map(Vec::len).sum();
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(f);
    let bytes =
        dbstore::seqfmt::write_seq_db(&raw, num_items, &mut w).map_err(|e| e.to_string())?;
    Ok(format!(
        "generated {name}: {} sequences, {events} events, {} items, {:.1} MB -> {out}\n",
        raw.len(),
        num_items,
        bytes as f64 / (1024.0 * 1024.0)
    ))
}

fn cmd_generate(flags: &Flags) -> Result<String, String> {
    let out = flags.require("out")?;
    let seed: u64 = flags.parse("seed", 0x5EEDu64)?;
    if let Some(raw) = flags.get("sequences") {
        let d: usize = raw
            .parse()
            .map_err(|_| "--sequences: cannot parse".to_string())?;
        if d == 0 {
            return Err("--sequences must be > 0".to_string());
        }
        return generate_sequences(flags, out, d, seed);
    }
    let d: usize = flags.parse("transactions", 0usize)?;
    if d == 0 {
        return Err("--transactions must be > 0".to_string());
    }
    let family = flags.get("family").unwrap_or("t10i6");
    let params = match family {
        "t10i6" => QuestParams::t10_i6(d),
        "t5i2" => QuestParams::t5_i2(d),
        "t20i4" => QuestParams::t20_i4(d),
        "t20i6" => QuestParams::t20_i6(d),
        other => return Err(format!("unknown family '{other}'")),
    }
    .with_seed(seed);
    let name = params.name();
    let db = HorizontalDb::from_transactions(QuestGenerator::new(params).generate_all());
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(f);
    let bytes = binfmt::write_horizontal(&db, &mut w).map_err(|e| e.to_string())?;
    Ok(format!(
        "generated {name}: {} transactions, {} items, {:.1} MB -> {out}\n",
        db.num_transactions(),
        db.num_items(),
        bytes as f64 / (1024.0 * 1024.0)
    ))
}

fn cmd_stats(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let mut hist = vec![0usize; 1 + db.iter().map(|(_, t)| t.len()).max().unwrap_or(0)];
    for (_, t) in db.iter() {
        hist[t.len()] += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "transactions : {}", db.num_transactions());
    let _ = writeln!(out, "items        : {}", db.num_items());
    let _ = writeln!(out, "avg length   : {:.2}", db.avg_transaction_len());
    let _ = writeln!(out, "total bytes  : {}", db.byte_size());
    let _ = writeln!(out, "length histogram:");
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (len, &n) in hist.iter().enumerate() {
        if n > 0 {
            let bar = "#".repeat((n * 40 / max).max(1));
            let _ = writeln!(out, "  {len:>3}: {n:>8} {bar}");
        }
    }
    Ok(out)
}

/// Parse `--representation
/// tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE]`
/// (also accepted under the `--repr` shorthand).
fn representation_of(flags: &Flags) -> Result<eclat::Representation, String> {
    let Some(raw) = flags.get("representation").or_else(|| flags.get("repr")) else {
        return Ok(eclat::Representation::default());
    };
    match raw.split_once(':') {
        None => match raw {
            "tidlist" => Ok(eclat::Representation::TidList),
            "diffset" => Ok(eclat::Representation::Diffset),
            "autoswitch" => Ok(eclat::Representation::AutoSwitch { depth: 2 }),
            "bitmap" => Ok(eclat::Representation::Bitmap),
            "auto-density" => Ok(eclat::Representation::AutoDensity {
                permille: eclat::DEFAULT_DENSITY_PERMILLE,
            }),
            other => Err(format!(
                "unknown representation '{other}' (tidlist|diffset|autoswitch[:DEPTH]|bitmap|auto-density[:PERMILLE])"
            )),
        },
        Some(("autoswitch", d)) => {
            let depth: u32 = d
                .parse()
                .map_err(|_| format!("bad autoswitch depth '{d}'"))?;
            Ok(eclat::Representation::AutoSwitch { depth })
        }
        Some(("auto-density", p)) => {
            let permille: u32 = p
                .parse()
                .map_err(|_| format!("bad auto-density permille '{p}'"))?;
            if permille > 1000 {
                return Err(format!(
                    "auto-density permille must be 0..=1000, got {permille}"
                ));
            }
            Ok(eclat::Representation::AutoDensity { permille })
        }
        Some((other, _)) => Err(format!(
            "unknown representation '{other}' (only autoswitch takes a :DEPTH, auto-density a :PERMILLE)"
        )),
    }
}

fn mine_by_algorithm(
    db: &HorizontalDb,
    minsup: MinSupport,
    algorithm: &str,
    representation: eclat::Representation,
) -> Result<FrequentSet, String> {
    let mut meter = OpMeter::new();
    let cfg = eclat::EclatConfig::with_representation(representation);
    Ok(match algorithm {
        "eclat" => eclat::sequential::mine_with(db, minsup, &cfg, &mut meter),
        "parallel" => eclat::parallel::mine_with(db, minsup, &cfg, &mut meter),
        "apriori" => {
            if representation != eclat::Representation::default() {
                return Err("--representation applies to the eclat variants only".to_string());
            }
            apriori::mine(db, minsup)
        }
        "clique" => eclat::clique::mine_with(db, minsup, &cfg, &mut meter),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

/// Per-size counts plus the top-supported itemsets — shared by `mine`
/// and `dmine` so their reports are identical after the headline.
fn render_frequent_body(fs: &FrequentSet, min_size: usize, top: usize) -> String {
    let mut out = String::new();
    let counts = fs.counts_by_size();
    for (k, c) in counts.iter().enumerate() {
        if *c > 0 {
            let _ = writeln!(out, "  size {:>2}: {c}", k + 1);
        }
    }
    let mut shown = 0usize;
    let _ = writeln!(out, "top by support (size >= {min_size}):");
    let mut sorted = fs.sorted();
    sorted.sort_by(|a, b| b.support.cmp(&a.support).then(a.itemset.cmp(&b.itemset)));
    for c in sorted {
        if c.itemset.len() >= min_size {
            let _ = writeln!(out, "  {:<40} {:>8}", format!("{}", c.itemset), c.support);
            shown += 1;
            if shown >= top {
                break;
            }
        }
    }
    out
}

/// Mine with singletons, generate rules, and persist everything as a
/// checksummed results snapshot (the `mine --out` path).
fn write_snapshot(
    db: &HorizontalDb,
    minsup: MinSupport,
    confidence: f64,
    path: &str,
) -> Result<String, String> {
    if !(0.0..=1.0).contains(&confidence) {
        return Err("--confidence must be in [0, 1]".to_string());
    }
    // Rule generation needs the complete downward-closed set, so the
    // snapshot is mined with singletons regardless of the display run.
    let frequent = eclat::sequential::mine_with(
        db,
        minsup,
        &eclat::EclatConfig::with_singletons(),
        &mut OpMeter::new(),
    );
    let rules = assoc_rules::generate(&frequent, confidence);
    let snap = binfmt::ResultsSnapshot {
        num_transactions: db.num_transactions() as u32,
        frequent,
        rules: rules
            .into_iter()
            .map(|r| binfmt::RuleRecord {
                antecedent: r.antecedent,
                consequent: r.consequent,
                support: r.support,
                antecedent_support: r.antecedent_support,
                consequent_support: r.consequent_support,
            })
            .collect(),
        generation: 1,
    };
    let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = BufWriter::new(f);
    let bytes = binfmt::write_results(&snap, &mut w).map_err(|e| format!("write {path}: {e}"))?;
    Ok(format!(
        "snapshot: {} itemsets / {} rules, {bytes} bytes -> {path}\n",
        snap.frequent.len(),
        snap.rules.len()
    ))
}

fn cmd_mine(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let algorithm = flags.get("algorithm").unwrap_or("eclat");
    let representation = representation_of(flags)?;
    let min_size: usize = flags.parse("min-size", 2usize)?;
    let top: usize = flags.parse("top", 20usize)?;
    let stats = stats_mode(flags)?;
    let trace_path = flags.get("trace").map(str::to_string);
    if trace_path.is_some() {
        arm_tracing(0);
    }

    let t0 = std::time::Instant::now();
    let mut report = None;
    let fs = if flags.has("maximal") {
        let cfg = eclat::EclatConfig::with_representation(representation);
        if stats != StatsMode::Off {
            let (fs, r) =
                eclat::maximal::mine_maximal_stats(&db, minsup, &cfg, &mut OpMeter::new());
            report = Some(r);
            fs
        } else {
            eclat::maximal::mine_maximal_with(&db, minsup, &cfg, &mut OpMeter::new())
        }
    } else if stats != StatsMode::Off {
        let cfg = eclat::EclatConfig::with_representation(representation);
        let mut meter = OpMeter::new();
        let (fs, r) = match algorithm {
            "eclat" => eclat::sequential::mine_stats(&db, minsup, &cfg, &mut meter),
            "parallel" => eclat::parallel::mine_stats(&db, minsup, &cfg, &mut meter),
            other => {
                return Err(format!(
                    "--stats supports --algorithm eclat|parallel, not '{other}'"
                ))
            }
        };
        report = Some(r);
        fs
    } else {
        mine_by_algorithm(&db, minsup, algorithm, representation)?
    };
    let dt = t0.elapsed().as_secs_f64();

    let snapshot_msg = match flags.get("out") {
        Some(path) => {
            let confidence: f64 = flags.parse("confidence", 0.5f64)?;
            Some(write_snapshot(&db, minsup, confidence, path)?)
        }
        None => None,
    };

    let trace_msg = match &trace_path {
        Some(path) => {
            let doc = eclat_obs::trace::render_jsonl();
            std::fs::write(path, &doc).map_err(|e| format!("write {path}: {e}"))?;
            // One meta line, the rest events/dropped records.
            Some(format!(
                "trace: {} records -> {path}\n",
                doc.lines().count().saturating_sub(1)
            ))
        }
        None => None,
    };

    if stats == StatsMode::Json {
        let mut json = report
            .expect("json mode always mines with stats")
            .to_json(true);
        json.push('\n');
        return Ok(json);
    }

    let mut out = String::new();
    let kind = if flags.has("maximal") {
        "maximal frequent"
    } else {
        "frequent"
    };
    let _ = writeln!(
        out,
        "{} {kind} itemsets in {dt:.2}s ({algorithm})",
        fs.len()
    );
    out.push_str(&render_frequent_body(&fs, min_size, top));
    if let Some(msg) = snapshot_msg {
        out.push_str(&msg);
    }
    if let Some(msg) = trace_msg {
        out.push_str(&msg);
    }
    if let Some(r) = &report {
        out.push('\n');
        out.push_str(&r.render());
    }
    Ok(out)
}

fn cmd_rules(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let confidence: f64 = flags.parse("confidence", 0.8f64)?;
    if !(0.0..=1.0).contains(&confidence) {
        return Err("--confidence must be in [0, 1]".to_string());
    }
    let top: usize = flags.parse("top", 20usize)?;
    let mut meter = OpMeter::new();
    let fs = eclat::sequential::mine_with(
        &db,
        minsup,
        &eclat::EclatConfig::with_singletons(),
        &mut meter,
    );
    let rules = assoc_rules::generate(&fs, confidence);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} rules at confidence >= {confidence} (from {} frequent itemsets)",
        rules.len(),
        fs.len()
    );
    for r in rules.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<26} => {:<18} conf {:.3}  sup {:>6}  lift {:.2}",
            format!("{}", r.antecedent),
            format!("{}", r.consequent),
            r.confidence(),
            r.support,
            r.lift(db.num_transactions())
        );
    }
    Ok(out)
}

fn cmd_simulate(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let hosts: usize = flags.parse("hosts", 8usize)?;
    let procs: usize = flags.parse("procs", 1usize)?;
    if hosts == 0 || procs == 0 {
        return Err("--hosts and --procs must be > 0".to_string());
    }
    let topo = ClusterConfig::new(hosts, procs);
    let cost = CostModel::dec_alpha_1997();
    let algorithm = flags.get("algorithm").unwrap_or("eclat");
    let cfg = eclat::EclatConfig::with_representation(representation_of(flags)?);
    let stats = stats_mode(flags)?;
    let mut out = String::new();
    match algorithm {
        "eclat" | "hybrid" => {
            let rep = if algorithm == "hybrid" {
                eclat::hybrid::mine_hybrid(&db, minsup, &topo, &cost, &cfg)
            } else {
                eclat::cluster::mine_cluster(&db, minsup, &topo, &cost, &cfg)
            };
            if stats == StatsMode::Json {
                let mut json = rep.stats.to_json(true);
                json.push('\n');
                return Ok(json);
            }
            let _ = writeln!(
                out,
                "{algorithm} on {} — simulated {:.2}s (setup {:.2}s), |L2| = {}, {} frequent itemsets",
                topo.label(),
                rep.total_secs(),
                rep.setup_secs(),
                rep.num_l2,
                rep.frequent.len()
            );
            out.push_str(&memchannel::stats::render(&rep.timeline));
            if stats == StatsMode::Human {
                out.push('\n');
                out.push_str(&rep.stats.render());
            }
        }
        "countdist" => {
            if stats != StatsMode::Off {
                return Err("--stats supports --algorithm eclat|hybrid only".to_string());
            }
            let rep = parbase::mine_count_dist(&db, minsup, &topo, &cost, &Default::default());
            let _ = writeln!(
                out,
                "countdist on {} — simulated {:.2}s, {} iterations, {} frequent itemsets",
                topo.label(),
                rep.total_secs(),
                rep.iterations,
                rep.frequent.len()
            );
            out.push_str(&memchannel::stats::render(&rep.timeline));
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    Ok(out)
}

fn cmd_worker(flags: &Flags) -> Result<String, String> {
    let cfg = eclat_net::WorkerConfig {
        listen: flags.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        threads: flags.parse("threads", 1usize)?,
        mem_budget: flags.get("mem-budget").map(parse_mem_budget).transpose()?,
        trace: flags.get("trace").map(std::path::PathBuf::from),
        ..eclat_net::WorkerConfig::default()
    };
    let mut handle =
        eclat_net::start_worker(&cfg).map_err(|e| format!("bind {}: {e}", cfg.listen))?;
    let addr = handle.addr();
    let mut out = format!("worker listening on {addr}\n");
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    match flags.get("serve-secs") {
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("--serve-secs: cannot parse '{raw}'"))?;
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            handle.shutdown();
            let _ = writeln!(out, "worker shut down after {secs}s");
            Ok(out)
        }
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// Child worker processes spawned by `dmine --spawn-local`, killed when
/// the coordinator finishes (or fails) so no strays outlive the run.
struct ChildGuard(Vec<std::process::Child>);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawn `n` local `eclat worker` child processes on ephemeral ports and
/// return their addresses once each has published its port. `extra`
/// holds additional `worker` argv entries (e.g. `--threads`);
/// `trace_base` gives child `i` a per-process `--trace BASE.w{i}` file
/// for the coordinator to merge after the run.
fn spawn_local_workers(
    n: usize,
    extra: &[String],
    trace_base: Option<&str>,
    guard: &mut ChildGuard,
) -> Result<Vec<String>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("locate own binary: {e}"))?;
    let mut addrs = Vec::with_capacity(n);
    for i in 0..n {
        let port_file =
            std::env::temp_dir().join(format!("eclat-dmine-{}-{i}.port", std::process::id()));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("worker")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .args(extra);
        if let Some(base) = trace_base {
            cmd.arg("--trace").arg(format!("{base}.w{i}"));
        }
        let child = cmd
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn worker {i}: {e}"))?;
        guard.0.push(child);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            if std::time::Instant::now() >= deadline {
                return Err(format!("worker {i} never published its port"));
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let _ = std::fs::remove_file(&port_file);
        addrs.push(format!("127.0.0.1:{port}"));
    }
    Ok(addrs)
}

fn cmd_dmine(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let representation = representation_of(flags)?;
    let min_size: usize = flags.parse("min-size", 2usize)?;
    let top: usize = flags.parse("top", 20usize)?;
    let stats = stats_mode(flags)?;
    let trace = flags.get("trace").map(str::to_string);
    if trace.is_some() {
        // The coordinator mints the run id and stamps its own identity
        // inside mine_distributed; only the enable flag goes here.
        eclat_obs::trace::set_enabled(true);
    }

    // Per-worker execution knobs, forwarded verbatim to spawned
    // children. Pre-started `--workers` configure themselves, so the
    // flags are rejected there rather than silently ignored.
    let mut worker_args: Vec<String> = Vec::new();
    if let Some(raw) = flags.get("threads") {
        let _: usize = flags.parse("threads", 0usize)?;
        worker_args.extend(["--threads".to_string(), raw.to_string()]);
    }
    if let Some(raw) = flags.get("mem-budget") {
        parse_mem_budget(raw)?;
        worker_args.extend(["--mem-budget".to_string(), raw.to_string()]);
    }

    let mut guard = ChildGuard(Vec::new());
    let mut spawned = 0usize;
    let addrs: Vec<String> = if let Some(raw) = flags.get("workers") {
        if !worker_args.is_empty() {
            return Err(
                "dmine: --threads/--mem-budget apply to --spawn-local workers only; \
                 pass them to each `eclat worker` instead"
                    .to_string(),
            );
        }
        raw.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    } else {
        let n: usize = flags.parse("spawn-local", 0usize)?;
        if n == 0 {
            return Err(
                "dmine: need --workers HOST:PORT,... or --spawn-local N (N > 0)".to_string(),
            );
        }
        spawned = n;
        spawn_local_workers(n, &worker_args, trace.as_deref(), &mut guard)?
    };
    if addrs.is_empty() {
        return Err("dmine: --workers list is empty".to_string());
    }

    let dist_cfg = eclat_net::DistConfig {
        cfg: eclat::EclatConfig::with_representation(representation),
        ..eclat_net::DistConfig::default()
    };
    let t0 = std::time::Instant::now();
    let report =
        eclat_net::mine_distributed(&db, minsup, &addrs, &dist_cfg).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();

    let trace_msg = match &trace {
        Some(base) => Some(merge_dmine_trace(base, spawned)?),
        None => None,
    };

    if stats == StatsMode::Json {
        let mut json = report.stats.to_json(true);
        json.push('\n');
        return Ok(json);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} frequent itemsets in {dt:.2}s (dist, {} workers, |L2| = {})",
        report.frequent.len(),
        report.num_workers,
        report.num_l2
    );
    out.push_str(&render_frequent_body(&report.frequent, min_size, top));
    if let Some(msg) = trace_msg {
        out.push_str(&msg);
    }
    if stats == StatsMode::Human {
        out.push('\n');
        out.push_str(&report.stats.render());
    }
    Ok(out)
}

/// Collect the coordinator's own trace plus the per-child worker trace
/// files written by `--spawn-local` children, merge everything into one
/// cluster timeline at `base`, and delete the partials. Workers write
/// their file when the mining session closes, which races the
/// coordinator receiving the final result frame — hence the poll.
fn merge_dmine_trace(base: &str, children: usize) -> Result<String, String> {
    let mut docs = vec![eclat_obs::trace::render_jsonl()];
    for i in 0..children {
        let path = format!("{base}.w{i}");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let doc = loop {
            match std::fs::read_to_string(&path) {
                Ok(s) if s.ends_with('\n') => break s,
                _ => {}
            }
            if std::time::Instant::now() >= deadline {
                return Err(format!("dmine: worker {i} never wrote its trace to {path}"));
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let _ = std::fs::remove_file(&path);
        docs.push(doc);
    }
    let merged = eclat_obs::trace::merge_jsonl(&docs).map_err(|e| format!("merge traces: {e}"))?;
    std::fs::write(base, &merged).map_err(|e| format!("write {base}: {e}"))?;
    let summary =
        eclat_obs::trace::validate_jsonl(&merged).map_err(|e| format!("validate {base}: {e}"))?;
    Ok(format!(
        "trace: {} processes / {} events / {} spans -> {base}\n",
        summary.processes, summary.events, summary.spans
    ))
}

/// Read a results snapshot into a serve dataset, plus the
/// `(generation, checksum)` identity the hot-reload poller keys on.
/// Generation alone is not enough: `mine --out` always writes
/// generation 1, so two successive full mines would look identical
/// without the payload checksum.
fn read_snapshot_dataset(path: &str) -> Result<(assoc_serve::Dataset, (u64, u64)), String> {
    let key = {
        let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let (_, generation, checksum) = binfmt::peek_results_header(&mut BufReader::new(f))
            .map_err(|e| format!("read {path}: {e}"))?;
        (generation, checksum)
    };
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let (snap, _) =
        binfmt::read_results(&mut BufReader::new(f)).map_err(|e| format!("read {path}: {e}"))?;
    let dataset = assoc_serve::Dataset {
        frequent: snap.frequent,
        rules: snap
            .rules
            .into_iter()
            .map(|r| assoc_rules::Rule {
                antecedent: r.antecedent,
                consequent: r.consequent,
                support: r.support,
                antecedent_support: r.antecedent_support,
                consequent_support: r.consequent_support,
            })
            .collect(),
        num_transactions: snap.num_transactions,
    };
    Ok((dataset, key))
}

/// Header-only snapshot identity probe (`None` on any I/O or format
/// error — the poller treats those as "try again next tick").
fn peek_snapshot_key(path: &str) -> Option<(u64, u64)> {
    let f = File::open(path).ok()?;
    let (_, generation, checksum) = binfmt::peek_results_header(&mut BufReader::new(f)).ok()?;
    Some((generation, checksum))
}

/// Write `snap` to `path` atomically: serialize next to it, then rename
/// over. A concurrent `serve --reload-secs` poller therefore only ever
/// sees complete snapshots.
fn write_snapshot_atomic(snap: &binfmt::ResultsSnapshot, path: &str) -> Result<u64, String> {
    let tmp = format!("{path}.tmp");
    {
        let f = File::create(&tmp).map_err(|e| format!("create {tmp}: {e}"))?;
        let mut w = BufWriter::new(f);
        binfmt::write_results(snap, &mut w).map_err(|e| format!("write {tmp}: {e}"))?;
    }
    let bytes = std::fs::metadata(&tmp).map_err(|e| e.to_string())?.len();
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {tmp} -> {path}: {e}"))?;
    Ok(bytes)
}

fn cmd_stream(flags: &Flags) -> Result<String, String> {
    let db = load_db(flags)?;
    let minsup = support_of(flags)?;
    let batch: usize = flags.parse("batch", 0usize)?;
    if batch == 0 {
        return Err("--batch must be > 0".to_string());
    }
    let confidence: f64 = flags.parse("confidence", 0.5f64)?;
    if !(0.0..=1.0).contains(&confidence) {
        return Err("--confidence must be in [0, 1]".to_string());
    }
    let representation = representation_of(flags)?;
    let stats = stats_mode(flags)?;
    let verify = flags.has("verify");
    let out_path = flags.get("out").map(str::to_string);
    let trace_path = flags.get("trace").map(str::to_string);
    if trace_path.is_some() {
        arm_tracing(0);
    }

    let cfg = eclat::EclatConfig::with_representation(representation);
    let mut engine =
        eclat_stream::StreamEngine::new(db.num_items(), minsup, confidence, cfg.clone());
    let mut run = eclat_stream::StreamStats {
        representation: format!("{representation}"),
        batch_size: batch as u64,
        ..Default::default()
    };
    let transactions: Vec<Vec<mining_types::ItemId>> = db.iter().map(|(_, t)| t.to_vec()).collect();

    let mut out = String::new();
    let t0 = std::time::Instant::now();
    let mut chunks = transactions.chunks(batch).peekable();
    let mut seen = 0usize;
    // An empty database still emits one (empty) batch so `--out` always
    // produces a serveable snapshot.
    let mut first = true;
    while first || chunks.peek().is_some() {
        first = false;
        let chunk = chunks.next().unwrap_or(&[]);
        seen += chunk.len();
        let bstats = engine.ingest_batch(chunk, &eclat::pipeline::Serial);
        if verify {
            let prefix = HorizontalDb::from_transactions(transactions[..seen].to_vec());
            let full = eclat_stream::MinedState::full_mine(&prefix, minsup, confidence, &cfg);
            if engine.state().frequent != full.frequent || engine.state().rules != full.rules {
                return Err(format!(
                    "--verify: incremental state diverged from the full re-mine \
                     after batch {} ({} transactions)",
                    bstats.batch, seen
                ));
            }
        }
        if let Some(path) = &out_path {
            write_snapshot_atomic(&engine.state().to_snapshot(), path)?;
        }
        if stats != StatsMode::Json {
            let _ = writeln!(
                out,
                "batch {:>3}: +{} txns (total {}) | {}/{} classes dirty (bound {}), \
                 {} carried, {} born, {} dropped | {} itemsets / {} rules | \
                 {:.3}s remine",
                bstats.batch,
                bstats.transactions,
                bstats.total_transactions,
                bstats.classes_dirty,
                bstats.classes_total,
                bstats.dirty_bound,
                bstats.classes_carried,
                bstats.classes_born,
                bstats.classes_dropped,
                bstats.itemsets,
                bstats.rules,
                bstats.remine_secs
            );
        }
        run.push(bstats);
    }
    let dt = t0.elapsed().as_secs_f64();

    if stats == StatsMode::Json {
        let mut json = run.to_json();
        json.push('\n');
        return Ok(json);
    }
    let _ = writeln!(
        out,
        "streamed {} transactions in {} batches ({dt:.2}s): {} itemsets / {} rules at generation {}{}",
        run.total_transactions,
        run.generation,
        run.itemsets,
        run.rules,
        run.generation,
        if verify { " [verified]" } else { "" }
    );
    if let Some(path) = &out_path {
        let _ = writeln!(out, "snapshot -> {path}");
    }
    if let Some(path) = &trace_path {
        let doc = eclat_obs::trace::render_jsonl();
        std::fs::write(path, &doc).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "trace: {} records -> {path}",
            doc.lines().count().saturating_sub(1)
        );
    }
    if stats == StatsMode::Human {
        out.push('\n');
        out.push_str(&run.to_json());
        out.push('\n');
    }
    Ok(out)
}

fn cmd_serve(flags: &Flags) -> Result<String, String> {
    let shards: usize = flags.parse("shards", 16usize)?;
    let cache: usize = flags.parse("cache", 4096usize)?;
    let workers: usize = flags.parse("workers", 8usize)?;
    if shards == 0 || workers == 0 {
        return Err("--shards and --workers must be > 0".to_string());
    }

    let t0 = std::time::Instant::now();
    let mut snapshot_key = None;
    let dataset = if let Some(path) = flags.get("load") {
        // Boot from a persisted `mine --out` / `stream --out` snapshot —
        // no re-mining.
        let (dataset, key) = read_snapshot_dataset(path)?;
        snapshot_key = Some(key);
        dataset
    } else {
        let db = load_db(flags)?;
        let minsup = support_of(flags)?;
        let confidence: f64 = flags.parse("confidence", 0.5f64)?;
        if !(0.0..=1.0).contains(&confidence) {
            return Err("--confidence must be in [0, 1]".to_string());
        }
        let frequent = eclat::sequential::mine_with(
            &db,
            minsup,
            &eclat::EclatConfig::with_singletons(),
            &mut OpMeter::new(),
        );
        let rules = assoc_rules::generate(&frequent, confidence);
        assoc_serve::Dataset {
            frequent,
            rules,
            num_transactions: db.num_transactions() as u32,
        }
    };
    let store = std::sync::Arc::new(assoc_serve::Store::with_dataset(
        &dataset,
        &assoc_serve::StoreConfig {
            shards,
            cache_entries: cache,
        },
    ));
    let built = t0.elapsed().as_secs_f64();

    let cfg = assoc_serve::ServerConfig {
        host: flags.get("host").unwrap_or("127.0.0.1").to_string(),
        port: flags.parse("port", 0u16)?,
        workers,
        ..assoc_serve::ServerConfig::default()
    };
    let handle = assoc_serve::start(std::sync::Arc::clone(&store), &cfg)
        .map_err(|e| format!("bind {}:{}: {e}", cfg.host, cfg.port))?;
    let addr = handle.local_addr();

    // --reload-secs: poll the loaded snapshot and hot-swap the store
    // whenever its (generation, checksum) identity changes. The peek is
    // header-only, so an idle poll costs one 36-byte read; torn or
    // half-renamed files simply fail the peek and are retried next tick.
    let reloader = match flags.get("reload-secs") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("--reload-secs: cannot parse '{raw}'"))?;
            if secs <= 0.0 || secs.is_nan() {
                return Err("--reload-secs must be > 0".to_string());
            }
            let path = flags
                .get("load")
                .ok_or_else(|| "--reload-secs requires --load SNAPSHOT".to_string())?
                .to_string();
            let mut last = snapshot_key.expect("--load sets the snapshot key");
            let store = std::sync::Arc::clone(&store);
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop_flag = std::sync::Arc::clone(&stop);
            let thread = std::thread::spawn(move || {
                while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
                    let Some(key) = peek_snapshot_key(&path) else {
                        continue;
                    };
                    if key == last {
                        continue;
                    }
                    let Ok((dataset, key)) = read_snapshot_dataset(&path) else {
                        continue;
                    };
                    let generation = store.reload(&dataset);
                    last = key;
                    eclat_obs::log_info!(
                        "eclat-serve",
                        "hot-reloaded {path} (snapshot generation {}, serving generation {generation})",
                        key.0
                    );
                }
            });
            Some((stop, thread))
        }
    };

    let mut out = String::new();
    let stats = store.serve_stats(None);
    let _ = writeln!(
        out,
        "serving {} itemsets / {} rules on {addr} ({shards} shards, {workers} workers, built in {built:.2}s)",
        stats.itemsets, stats.rules
    );
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| format!("write {path}: {e}"))?;
    }

    match flags.get("serve-secs") {
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("--serve-secs: cannot parse '{raw}'"))?;
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            if let Some((stop, thread)) = reloader {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                let _ = thread.join();
            }
            let counters = handle.shutdown();
            let _ = writeln!(
                out,
                "served {} connections / {} requests ({} protocol errors, {} timeouts, {} reloads)",
                counters.connections,
                counters.requests,
                counters.protocol_errors,
                counters.timeouts,
                store.reloads()
            );
            let cs = store.cache_stats();
            let _ = writeln!(
                out,
                "cache: {} hits / {} misses ({:.0}% hit rate)",
                cs.hits,
                cs.misses,
                cs.hit_rate() * 100.0
            );
            Ok(out)
        }
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

fn cmd_query(flags: &Flags) -> Result<String, String> {
    let addr = flags.require("addr")?;
    let mut client =
        assoc_serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let limit: u32 = flags.parse("limit", 20u32)?;
    let top: u32 = flags.parse("top", 10u32)?;
    let err = |e: std::io::Error| format!("query {addr}: {e}");

    let mut out = String::new();
    let mut ran = false;
    let list = |out: &mut String, items: Vec<mining_types::Counted>| {
        for c in items {
            let _ = writeln!(out, "  {:<40} {:>8}", format!("{}", c.itemset), c.support);
        }
    };

    if flags.has("ping") {
        client.ping().map_err(err)?;
        out.push_str("pong\n");
        ran = true;
    }
    if let Some(raw) = flags.get("support-of") {
        let q = parse_items("support-of", raw)?;
        match client.support(q.clone()).map_err(err)? {
            Some(s) => {
                let _ = writeln!(out, "support({q}) = {s}");
            }
            None => {
                let _ = writeln!(out, "support({q}) : not frequent");
            }
        }
        ran = true;
    }
    if let Some(raw) = flags.get("subsets-of") {
        let q = parse_items("subsets-of", raw)?;
        let v = client.subsets(q.clone(), limit).map_err(err)?;
        let _ = writeln!(out, "{} frequent subsets of {q}:", v.len());
        list(&mut out, v);
        ran = true;
    }
    if let Some(raw) = flags.get("supersets-of") {
        let q = parse_items("supersets-of", raw)?;
        let v = client.supersets(q.clone(), limit).map_err(err)?;
        let _ = writeln!(out, "{} frequent supersets of {q}:", v.len());
        list(&mut out, v);
        ran = true;
    }
    if let Some(raw) = flags.get("rules-for") {
        let q = parse_items("rules-for", raw)?;
        let v = client.rules_for(q.clone(), top).map_err(err)?;
        let _ = writeln!(out, "{} rules for antecedent {q}:", v.len());
        for r in v {
            let _ = writeln!(
                out,
                "  {q} => {:<18} conf {:.3}  sup {:>6}",
                format!("{}", r.consequent),
                r.confidence(),
                r.support
            );
        }
        ran = true;
    }
    if flags.get("topk").is_some() {
        let k: u32 = flags.parse("topk", 0u32)?;
        let size: u32 = flags.parse("size", 0u32)?;
        let v = client.top_k(size, k).map_err(err)?;
        let label = if size == 0 {
            "any size".to_string()
        } else {
            format!("size {size}")
        };
        let _ = writeln!(out, "top {} itemsets by support ({label}):", v.len());
        list(&mut out, v);
        ran = true;
    }
    if flags.has("server-stats") {
        let mut json = client.stats_json().map_err(err)?;
        json.push('\n');
        out.push_str(&json);
        ran = true;
    }
    if flags.has("metrics") {
        let text = client.metrics_text().map_err(err)?;
        out.push_str(&text);
        if !text.ends_with('\n') {
            out.push('\n');
        }
        ran = true;
    }
    if !ran {
        return Err(
            "query: nothing to do (use --ping, --support-of, --subsets-of, --supersets-of, \
             --rules-for, --topk, --server-stats, or --metrics)"
                .to_string(),
        );
    }
    Ok(out)
}

/// Validate trace JSONL files (merging first when several are given),
/// optionally writing the merged timeline and/or a Chrome `trace_event`
/// conversion.
fn cmd_trace(flags: &Flags) -> Result<String, String> {
    let inputs = flags.require("input")?;
    let mut docs = Vec::new();
    for path in inputs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        docs.push(std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?);
    }
    if docs.is_empty() {
        return Err("trace: --input lists no files".to_string());
    }
    let merged = if docs.len() == 1 {
        docs.pop().expect("one doc")
    } else {
        eclat_obs::trace::merge_jsonl(&docs).map_err(|e| format!("merge: {e}"))?
    };
    let summary = eclat_obs::trace::validate_jsonl(&merged)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "valid trace: run {} / {} process(es) / {} events ({} spans, {} instants, {} dropped)",
        summary.run_id,
        summary.processes,
        summary.events,
        summary.spans,
        summary.instants,
        summary.dropped
    );
    let _ = writeln!(out, "  pids : {:?}", summary.pids);
    let _ = writeln!(out, "  names: {}", summary.names.join(", "));
    if let Some(path) = flags.get("merge") {
        std::fs::write(path, &merged).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "merged jsonl -> {path}");
    }
    if let Some(path) = flags.get("chrome") {
        let chrome = eclat_obs::trace::chrome_trace(&merged)?;
        std::fs::write(path, &chrome).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "chrome trace_event json -> {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn tempfile(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("eclat-cli-{tag}-{}.ech", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn generate(path: &str, n: usize) {
        let out = run(&argv(&[
            "generate",
            "--out",
            path,
            "--transactions",
            &n.to_string(),
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("generated T10.I6."), "{out}");
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&argv(&["help"])).unwrap().contains("subcommands"));
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn generate_stats_mine_rules_simulate_pipeline() {
        let path = tempfile("pipe");
        generate(&path, 3000);

        let stats = run(&argv(&["stats", "--input", &path])).unwrap();
        assert!(stats.contains("transactions : 3000"), "{stats}");
        assert!(stats.contains("length histogram"));

        let mined = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--top",
            "5",
        ]))
        .unwrap();
        assert!(mined.contains("frequent itemsets"), "{mined}");
        assert!(mined.contains("size  2:"), "{mined}");

        let rules = run(&argv(&[
            "rules",
            "--input",
            &path,
            "--support",
            "0.5",
            "--confidence",
            "0.7",
        ]))
        .unwrap();
        assert!(rules.contains("rules at confidence"), "{rules}");

        let sim = run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "0.5",
            "--hosts",
            "2",
            "--procs",
            "2",
        ]))
        .unwrap();
        assert!(sim.contains("simulated"), "{sim}");
        assert!(sim.contains("init"), "{sim}");

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn algorithms_agree_via_cli() {
        let path = tempfile("algos");
        generate(&path, 2000);
        let base = run(&argv(&["mine", "--input", &path, "--support", "0.5"])).unwrap();
        for algo in ["parallel", "apriori", "clique"] {
            let out = run(&argv(&[
                "mine",
                "--input",
                &path,
                "--support",
                "0.5",
                "--algorithm",
                algo,
            ]))
            .unwrap();
            // same per-size breakdown lines (apriori adds size-1 row)
            for line in base.lines().filter(|l| l.trim_start().starts_with("size")) {
                assert!(out.contains(line.trim()), "{algo} missing {line}");
            }
        }
        let maximal = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--maximal",
        ]))
        .unwrap();
        assert!(maximal.contains("maximal frequent"), "{maximal}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_paths() {
        assert!(run(&argv(&["mine", "--support", "1"]))
            .unwrap_err()
            .contains("--input"));
        assert!(run(&argv(&[
            "mine",
            "--input",
            "/nonexistent",
            "--support",
            "1"
        ]))
        .unwrap_err()
        .contains("open"));
        let path = tempfile("err");
        generate(&path, 100);
        assert!(run(&argv(&["mine", "--input", &path, "--support", "200"]))
            .unwrap_err()
            .contains("[0, 100]"));
        assert!(run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "1",
            "--algorithm",
            "bogus"
        ]))
        .unwrap_err()
        .contains("unknown algorithm"));
        assert!(run(&argv(&["generate", "--out", "/tmp/x.ech"]))
            .unwrap_err()
            .contains("--transactions"));
        assert!(run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "1",
            "--hosts",
            "0"
        ]))
        .unwrap_err()
        .contains("must be > 0"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_flag_on_mine_and_simulate() {
        let path = tempfile("stats");
        generate(&path, 1500);
        let human = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--stats",
        ]))
        .unwrap();
        assert!(
            human.contains("mining stats: eclat / sequential / tidlist"),
            "{human}"
        );
        assert!(human.contains("phases:"), "{human}");
        assert!(human.contains("kernel:"), "{human}");

        let json = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--algorithm",
            "parallel",
            "--stats=json",
        ]))
        .unwrap();
        assert!(
            json.starts_with('{') && json.trim_end().ends_with('}'),
            "{json}"
        );
        assert!(json.contains("\"variant\":\"parallel\""), "{json}");
        assert!(json.contains("\"cluster\":null"), "{json}");

        let sim = run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "0.5",
            "--hosts",
            "2",
            "--procs",
            "2",
            "--stats=json",
        ]))
        .unwrap();
        assert!(sim.contains("\"variant\":\"cluster\""), "{sim}");
        assert!(sim.contains("\"load_imbalance\""), "{sim}");

        // Stats are gated to the variants that produce them.
        assert!(run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--algorithm",
            "apriori",
            "--stats",
        ]))
        .unwrap_err()
        .contains("eclat|parallel"));
        assert!(run(&argv(&[
            "simulate",
            "--input",
            &path,
            "--support",
            "0.5",
            "--algorithm",
            "countdist",
            "--stats",
        ]))
        .unwrap_err()
        .contains("eclat|hybrid"));
        assert!(run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--stats=yaml",
        ]))
        .unwrap_err()
        .contains("--stats"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maximal_works_across_representations() {
        let path = tempfile("maxrep");
        generate(&path, 300);
        // The headline embeds wall time, so compare count + body only.
        let split = |s: String| {
            let count = s.split(' ').next().unwrap().to_string();
            let body = s.lines().skip(1).collect::<Vec<_>>().join("\n");
            (count, body)
        };
        let base = split(
            run(&argv(&[
                "mine",
                "--input",
                &path,
                "--support",
                "1",
                "--maximal",
            ]))
            .unwrap(),
        );
        for repr in [
            "diffset",
            "autoswitch:0",
            "autoswitch:2",
            "bitmap",
            "auto-density",
            "auto-density:1000",
        ] {
            let out = split(
                run(&argv(&[
                    "mine",
                    "--input",
                    &path,
                    "--support",
                    "1",
                    "--maximal",
                    "--repr",
                    repr,
                ]))
                .unwrap(),
            );
            assert_eq!(out, base, "representation {repr} diverged");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mine_agrees_across_bitmap_and_auto_density() {
        let path = tempfile("bitmaprep");
        generate(&path, 300);
        let base = run(&argv(&["mine", "--input", &path, "--support", "1"])).unwrap();
        let body = |s: String| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        let base_body = body(base);
        for repr in ["bitmap", "auto-density", "auto-density:0", "auto-density:8"] {
            let out = run(&argv(&[
                "mine",
                "--input",
                &path,
                "--support",
                "1",
                "--repr",
                repr,
            ]))
            .unwrap();
            assert_eq!(body(out), base_body, "representation {repr} diverged");
        }
        // Stats JSON carries the stable representation name.
        let out = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "1",
            "--repr",
            "auto-density",
            "--stats=json",
        ]))
        .unwrap();
        assert!(
            out.contains("\"representation\":\"auto-density:8\""),
            "{out}"
        );
        // Bad values are rejected with the full menu.
        for bad in ["auto-density:1001", "auto-density:x", "bitmaps"] {
            assert!(
                run(&argv(&[
                    "mine",
                    "--input",
                    &path,
                    "--support",
                    "1",
                    "--repr",
                    bad
                ]))
                .is_err(),
                "{bad} should be rejected"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maximal_stats_json_reports_switch_events() {
        let path = tempfile("maxstats");
        generate(&path, 300);
        let out = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "1",
            "--maximal",
            "--repr",
            "diffset",
            "--stats=json",
        ]))
        .unwrap();
        assert!(out.contains("\"algorithm\":\"maxeclat\""), "{out}");
        assert!(out.contains("\"representation\":\"diffset\""), "{out}");
        assert!(out.contains("\"switch_events\""), "{out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn serve_and_query_round_trip() {
        let path = tempfile("serve");
        generate(&path, 1200);
        let port_file = std::env::temp_dir()
            .join(format!("eclat-cli-port-{}.txt", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&port_file);

        let serve_args = argv(&[
            "serve",
            "--input",
            &path,
            "--support",
            "0.5",
            "--confidence",
            "0.3",
            "--port",
            "0",
            "--port-file",
            &port_file,
            "--serve-secs",
            "3",
        ]);
        let server = std::thread::spawn(move || run(&serve_args));

        // Wait for the server to publish its ephemeral port.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let addr = format!("127.0.0.1:{port}");

        let ping = run(&argv(&["query", "--addr", &addr, "--ping"])).unwrap();
        assert_eq!(ping, "pong\n");

        let sup = run(&argv(&["query", "--addr", &addr, "--support-of", "999999"])).unwrap();
        assert!(sup.contains("not frequent"), "{sup}");

        let topk = run(&argv(&[
            "query", "--addr", &addr, "--topk", "3", "--size", "1",
        ]))
        .unwrap();
        assert!(
            topk.contains("top 3 itemsets by support (size 1)"),
            "{topk}"
        );
        // Probe the most frequent singleton back through the other queries.
        let best: Vec<u32> = topk
            .lines()
            .nth(1)
            .unwrap()
            .trim()
            .trim_start_matches('{')
            .split('}')
            .next()
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        let best_list = best
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let sup = run(&argv(&[
            "query",
            "--addr",
            &addr,
            "--support-of",
            &best_list,
        ]))
        .unwrap();
        assert!(sup.contains("support("), "{sup}");
        let sups = run(&argv(&[
            "query",
            "--addr",
            &addr,
            "--supersets-of",
            &best_list,
            "--limit",
            "5",
        ]))
        .unwrap();
        assert!(sups.contains("frequent supersets of"), "{sups}");

        let stats = run(&argv(&["query", "--addr", &addr, "--server-stats"])).unwrap();
        assert!(stats.contains("\"cache\""), "{stats}");
        assert!(stats.contains("\"server\":{"), "{stats}");
        assert!(stats.contains("\"queries\":[{\"query\":\"all\""), "{stats}");

        let metrics = run(&argv(&["query", "--addr", &addr, "--metrics"])).unwrap();
        assert!(
            metrics.contains("# TYPE eclat_serve_requests_total counter"),
            "{metrics}"
        );
        assert!(
            metrics.contains("eclat_serve_latency_seconds{query=\"all\",quantile=\"0.99\"}"),
            "{metrics}"
        );
        let all_requests: u64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix("eclat_serve_requests_total{query=\"all\"} "))
            .expect("aggregate request counter")
            .trim()
            .parse()
            .unwrap();
        assert!(all_requests >= 6, "{metrics}");

        assert!(run(&argv(&["query", "--addr", &addr]))
            .unwrap_err()
            .contains("nothing to do"));

        let report = server.join().unwrap().unwrap();
        assert!(report.contains("serving"), "{report}");
        assert!(report.contains("connections"), "{report}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&port_file).unwrap();
    }

    #[test]
    fn dmine_matches_mine_modulo_headline() {
        let path = tempfile("dmine");
        generate(&path, 1500);
        let mined = run(&argv(&["mine", "--input", &path, "--support", "0.5"])).unwrap();

        // In-process workers: `--spawn-local` needs the real binary, but
        // `--workers` happily coordinates threads in this test process.
        let workers: Vec<_> = (0..3)
            .map(|_| eclat_net::start_worker(&eclat_net::WorkerConfig::default()).unwrap())
            .collect();
        let addrs = workers
            .iter()
            .map(|w| w.addr().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let dmined = run(&argv(&[
            "dmine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--workers",
            &addrs,
        ]))
        .unwrap();

        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&mined), tail(&dmined), "mine/dmine reports diverged");
        assert!(dmined.contains("(dist, 3 workers"), "{dmined}");

        let json = run(&argv(&[
            "dmine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--workers",
            &addrs,
            "--stats=json",
        ]))
        .unwrap();
        assert!(json.contains("\"variant\":\"dist\""), "{json}");
        assert!(json.contains("\"cluster\":{"), "{json}");
        assert!(json.contains("\"load_imbalance\""), "{json}");

        assert!(run(&argv(&["dmine", "--input", &path, "--support", "0.5"]))
            .unwrap_err()
            .contains("--workers"));

        // Execution knobs only make sense for workers dmine itself spawns.
        let err = run(&argv(&[
            "dmine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--workers",
            &addrs,
            "--threads",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("--spawn-local"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dmine_hybrid_spilling_workers_match_mine() {
        let path = tempfile("dminehy");
        generate(&path, 1500);
        let mined = run(&argv(&["mine", "--input", &path, "--support", "0.5"])).unwrap();

        // In-process equivalents of `--spawn-local 2 --threads 2
        // --mem-budget 0`: multithreaded workers whose every class
        // spills through the out-of-core store.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                eclat_net::start_worker(&eclat_net::WorkerConfig {
                    threads: 2,
                    mem_budget: Some(0),
                    ..eclat_net::WorkerConfig::default()
                })
                .unwrap()
            })
            .collect();
        let addrs = workers
            .iter()
            .map(|w| w.addr().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        // Every wire-encodable representation must survive the hybrid
        // spilling round trip bit-identically (bodies differ only in the
        // header line naming the runtime).
        for repr in ["tidlist", "diffset", "bitmap", "auto-density:8"] {
            let dmined = run(&argv(&[
                "dmine",
                "--input",
                &path,
                "--support",
                "0.5",
                "--repr",
                repr,
                "--workers",
                &addrs,
            ]))
            .unwrap();
            assert_eq!(
                tail(&mined),
                tail(&dmined),
                "hybrid spill run diverged for --repr {repr}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_round_trip_through_serve() {
        let path = tempfile("snapdb");
        generate(&path, 1200);
        let snap = std::env::temp_dir()
            .join(format!("eclat-cli-snap-{}.ecr", std::process::id()))
            .to_string_lossy()
            .into_owned();

        let mined = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "0.5",
            "--confidence",
            "0.3",
            "--out",
            &snap,
        ]))
        .unwrap();
        assert!(mined.contains("snapshot:"), "{mined}");
        assert!(mined.contains(&snap), "{mined}");

        // A corrupt snapshot is rejected with a checksum diagnostic.
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let bad = std::env::temp_dir()
            .join(format!("eclat-cli-snapbad-{}.ecr", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&bad, &bytes).unwrap();
        let err = run(&argv(&["serve", "--load", &bad])).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        std::fs::remove_file(&bad).unwrap();

        let port_file = std::env::temp_dir()
            .join(format!("eclat-cli-snapport-{}.txt", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&port_file);
        let serve_args = argv(&[
            "serve",
            "--load",
            &snap,
            "--port",
            "0",
            "--port-file",
            &port_file,
            "--serve-secs",
            "3",
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let addr = format!("127.0.0.1:{port}");

        let ping = run(&argv(&["query", "--addr", &addr, "--ping"])).unwrap();
        assert_eq!(ping, "pong\n");
        let topk = run(&argv(&[
            "query", "--addr", &addr, "--topk", "3", "--size", "1",
        ]))
        .unwrap();
        assert!(topk.contains("top 3 itemsets"), "{topk}");
        let stats = run(&argv(&["query", "--addr", &addr, "--server-stats"])).unwrap();
        assert!(stats.contains("\"itemsets\""), "{stats}");

        let report = server.join().unwrap().unwrap();
        assert!(report.contains("serving"), "{report}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&snap).unwrap();
        std::fs::remove_file(&port_file).unwrap();
    }

    #[test]
    fn stream_incremental_matches_mine_snapshot() {
        let path = tempfile("streamdb");
        generate(&path, 1200);
        let snap_stream = std::env::temp_dir()
            .join(format!("eclat-cli-streamsnap-{}.ecr", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let snap_full = std::env::temp_dir()
            .join(format!("eclat-cli-fullsnap-{}.ecr", std::process::id()))
            .to_string_lossy()
            .into_owned();

        let streamed = run(&argv(&[
            "stream",
            "--input",
            &path,
            "--support",
            "1",
            "--batch",
            "400",
            "--confidence",
            "0.3",
            "--out",
            &snap_stream,
            "--verify",
        ]))
        .unwrap();
        assert!(streamed.contains("[verified]"), "{streamed}");
        assert!(streamed.contains("classes dirty"), "{streamed}");
        assert!(
            streamed.contains("streamed 1200 transactions in 3 batches"),
            "{streamed}"
        );

        let mined = run(&argv(&[
            "mine",
            "--input",
            &path,
            "--support",
            "1",
            "--confidence",
            "0.3",
            "--out",
            &snap_full,
        ]))
        .unwrap();
        assert!(mined.contains("snapshot:"), "{mined}");

        let read = |p: &str| {
            let f = File::open(p).unwrap();
            binfmt::read_results(&mut BufReader::new(f)).unwrap().0
        };
        let incremental = read(&snap_stream);
        let full = read(&snap_full);
        assert_eq!(incremental.frequent, full.frequent);
        assert_eq!(incremental.rules, full.rules);
        assert_eq!(incremental.num_transactions, full.num_transactions);
        assert_eq!(incremental.generation, 3, "one generation per batch");
        assert_eq!(full.generation, 1, "mine --out always writes generation 1");

        let json = run(&argv(&[
            "stream",
            "--input",
            &path,
            "--support",
            "1",
            "--batch",
            "500",
            "--stats=json",
        ]))
        .unwrap();
        assert!(
            json.starts_with(
                "{\"schema_version\":1,\"algorithm\":\"eclat\",\"variant\":\"stream\""
            ),
            "{json}"
        );
        assert!(json.contains("\"batches\":[{\"batch\":0,"), "{json}");
        assert!(json.contains("\"classes_dirty\""), "{json}");

        assert!(
            run(&argv(&["stream", "--input", &path, "--support", "0.5"]))
                .unwrap_err()
                .contains("--batch")
        );

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&snap_stream).unwrap();
        std::fs::remove_file(&snap_full).unwrap();
    }

    /// Satellite loopback: overwrite the loaded snapshot while queries
    /// are in flight and assert the server switches from the old answers
    /// to the new ones exactly once, with no mixed or stale responses.
    #[test]
    fn serve_hot_reload_loopback() {
        use mining_types::Itemset;

        let make = |bump: u32, generation: u64| {
            let frequent: FrequentSet = [
                (Itemset::of(&[1]), 10 + bump),
                (Itemset::of(&[2]), 8 + bump),
                (Itemset::of(&[1, 2]), 5 + bump),
            ]
            .into_iter()
            .collect();
            let rules = assoc_rules::generate(&frequent, 0.0);
            binfmt::ResultsSnapshot {
                num_transactions: 100,
                frequent,
                rules: rules
                    .into_iter()
                    .map(|r| binfmt::RuleRecord {
                        antecedent: r.antecedent,
                        consequent: r.consequent,
                        support: r.support,
                        antecedent_support: r.antecedent_support,
                        consequent_support: r.consequent_support,
                    })
                    .collect(),
                generation,
            }
        };
        let snap = std::env::temp_dir()
            .join(format!("eclat-cli-reload-{}.ecr", std::process::id()))
            .to_string_lossy()
            .into_owned();
        write_snapshot_atomic(&make(0, 1), &snap).unwrap();

        let port_file = std::env::temp_dir()
            .join(format!("eclat-cli-reloadport-{}.txt", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&port_file);
        let serve_args = argv(&[
            "serve",
            "--load",
            &snap,
            "--port",
            "0",
            "--port-file",
            &port_file,
            "--serve-secs",
            "5",
            "--reload-secs",
            "0.05",
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let addr = format!("127.0.0.1:{port}");

        let support_of_12 = || -> u32 {
            let out = run(&argv(&["query", "--addr", &addr, "--support-of", "1,2"])).unwrap();
            out.trim()
                .rsplit("= ")
                .next()
                .unwrap()
                .parse()
                .unwrap_or_else(|_| panic!("unparseable support answer: {out}"))
        };

        assert_eq!(
            support_of_12(),
            5,
            "pre-reload answers come from snapshot 1"
        );
        write_snapshot_atomic(&make(100, 2), &snap).unwrap();

        // Keep querying through the swap; answers must be a run of old
        // values followed by a run of new values — never anything else,
        // never old again after the first new.
        let mut observed = Vec::new();
        let flip_deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let s = support_of_12();
            observed.push(s);
            if s == 105 {
                break;
            }
            assert!(
                std::time::Instant::now() < flip_deadline,
                "reload never observed: {observed:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let first_new = observed.iter().position(|&s| s == 105).unwrap();
        assert!(
            observed[..first_new].iter().all(|&s| s == 5)
                && observed[first_new..].iter().all(|&s| s == 105),
            "mixed-generation answers: {observed:?}"
        );
        assert_eq!(support_of_12(), 105, "post-reload answers stick");

        let stats = run(&argv(&["query", "--addr", &addr, "--server-stats"])).unwrap();
        assert!(stats.contains("\"reloads\":1"), "{stats}");
        assert!(stats.contains("\"generation\":2"), "{stats}");

        let report = server.join().unwrap().unwrap();
        assert!(report.contains("1 reloads"), "{report}");
        std::fs::remove_file(&snap).unwrap();
        std::fs::remove_file(&port_file).unwrap();
    }

    #[test]
    fn seq_generate_mine_verify_pipeline() {
        let path = std::env::temp_dir()
            .join(format!("eclat-cli-seq-{}.ecs", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let out = run(&argv(&[
            "generate",
            "--out",
            &path,
            "--sequences",
            "300",
            "--family",
            "c10t4",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("generated C10.T4.S4.I2.D300"), "{out}");

        // Mine under all three policies; reports must be byte-identical
        // after the wall-clock headline.
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        let base = run(&argv(&[
            "seq", "--input", &path, "--minsup", "4", "--verify",
        ]))
        .unwrap();
        assert!(base.contains("frequent sequences"), "{base}");
        assert!(base.contains("[verified]"), "{base}");
        assert!(base.contains("len  2:"), "{base}");
        for policy in ["rayon", "threads:3"] {
            let par = run(&argv(&[
                "seq", "--input", &path, "--minsup", "4", "--policy", policy,
            ]))
            .unwrap();
            assert_eq!(tail(&par), tail(&base), "policy {policy} diverged");
        }

        // --maxlen caps pattern length; --support is accepted too.
        let capped = run(&argv(&[
            "seq",
            "--input",
            &path,
            "--support",
            "4",
            "--maxlen",
            "2",
        ]))
        .unwrap();
        assert!(!capped.contains("len  3:"), "{capped}");

        // Stats JSON pins the spade algorithm tag and policy variant.
        let json = run(&argv(&[
            "seq",
            "--input",
            &path,
            "--minsup",
            "4",
            "--policy",
            "rayon",
            "--stats=json",
        ]))
        .unwrap();
        assert!(
            json.starts_with("{\"schema_version\":1,\"algorithm\":\"spade\""),
            "{json}"
        );
        assert!(json.contains("\"variant\":\"rayon\""), "{json}");
        assert!(json.contains("\"by_len\":[{\"len\":1,"), "{json}");

        // --out persists a checksummed snapshot that round-trips.
        let snap = std::env::temp_dir()
            .join(format!("eclat-cli-seq-{}.ecq", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let out = run(&argv(&[
            "seq", "--input", &path, "--minsup", "4", "--out", &snap,
        ]))
        .unwrap();
        assert!(out.contains("snapshot:"), "{out}");
        let f = File::open(&snap).unwrap();
        let ((n, patterns), _) = dbstore::seqfmt::read_seq_results(&mut BufReader::new(f)).unwrap();
        assert_eq!(n, 300);
        assert!(!patterns.is_empty());

        // Errors keep the shared parser's vocabulary.
        assert!(run(&argv(&["seq", "--input", &path]))
            .unwrap_err()
            .contains("--support"));
        assert!(run(&argv(&[
            "seq", "--input", &path, "--minsup", "4", "--policy", "bogus"
        ]))
        .unwrap_err()
        .contains("unknown policy"));
        assert!(
            run(&argv(&["generate", "--out", &path, "--sequences", "0"]))
                .unwrap_err()
                .contains("--sequences")
        );

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&snap).unwrap();
    }
}
