//! Flag parsing and option helpers shared by every subcommand.
//!
//! Factored out of the dispatch module so surfaces that grow their own
//! command file (`seq`) parse `--stats[=json]`, `--trace`, `--support`,
//! item lists, and byte sizes exactly like the itemset commands do —
//! one parser, one error vocabulary.

/// Parsed `--flag value` / `--flag=value` / bare `--flag` argv.
pub(crate) struct Flags {
    pairs: Vec<(String, String)>,
    bare: Vec<String>,
}

impl Flags {
    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub(crate) fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    pub(crate) fn has(&self, key: &str) -> bool {
        self.bare.iter().any(|b| b == key) || self.get(key).is_some()
    }

    pub(crate) fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }
}

pub(crate) fn parse_flags(rest: &[String]) -> Result<Flags, String> {
    let mut pairs = Vec::new();
    let mut bare = Vec::new();
    let mut it = rest.iter().peekable();
    while let Some(tok) = it.next() {
        let Some(stripped) = tok.strip_prefix("--") else {
            return Err(format!("unexpected argument '{tok}' (flags start with --)"));
        };
        if let Some((k, v)) = stripped.split_once('=') {
            pairs.push((k.to_string(), v.to_string()));
        } else if let Some(next) = it.peek() {
            if next.starts_with("--") {
                bare.push(stripped.to_string());
            } else {
                pairs.push((stripped.to_string(), it.next().unwrap().clone()));
            }
        } else {
            bare.push(stripped.to_string());
        }
    }
    Ok(Flags { pairs, bare })
}

/// What `--stats[=json]` asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StatsMode {
    /// No stats report.
    Off,
    /// Append the human-readable report.
    Human,
    /// Emit only the JSON document.
    Json,
}

pub(crate) fn stats_mode(flags: &Flags) -> Result<StatsMode, String> {
    match flags.get("stats") {
        Some("json") => Ok(StatsMode::Json),
        Some(other) => Err(format!(
            "--stats: expected '--stats' or '--stats=json', got '{other}'"
        )),
        None if flags.has("stats") => Ok(StatsMode::Human),
        None => Ok(StatsMode::Off),
    }
}

/// Parse the minimum-support percentage. `--support` is the canonical
/// spelling; `seq` documentation uses `--minsup` and both are accepted
/// everywhere.
pub(crate) fn support_of(flags: &Flags) -> Result<mining_types::MinSupport, String> {
    let raw = match flags.get("support").or_else(|| flags.get("minsup")) {
        Some(raw) => raw,
        None => return Err("missing required flag --support".to_string()),
    };
    let pct: f64 = raw
        .trim_end_matches('%')
        .parse()
        .map_err(|_| "--support: expected a percentage".to_string())?;
    if !(0.0..=100.0).contains(&pct) {
        return Err("--support must be in [0, 100]".to_string());
    }
    Ok(mining_types::MinSupport::from_percent(pct))
}

/// Arm the process-wide tracer for a `--trace PATH` run. Single-process
/// commands have no coordinator to mint a run id, so one is derived
/// from the wall clock and pid.
pub(crate) fn arm_tracing(rank: u32) {
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let run_id = (seed ^ u64::from(std::process::id()) << 32).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    eclat_obs::trace::set_identity(run_id.max(1), rank);
    eclat_obs::trace::set_enabled(true);
}

/// Parse a comma-separated item list ("3,17,42") into an [`Itemset`].
///
/// [`Itemset`]: mining_types::Itemset
pub(crate) fn parse_items(flag: &str, raw: &str) -> Result<mining_types::Itemset, String> {
    let mut items = Vec::new();
    for tok in raw.split(',').filter(|t| !t.trim().is_empty()) {
        let item: u32 = tok
            .trim()
            .parse()
            .map_err(|_| format!("--{flag}: '{tok}' is not an item id"))?;
        items.push(item);
    }
    Ok(mining_types::Itemset::of(&items))
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive): `"65536"`, `"64k"`, `"2m"`, `"1g"`.
pub(crate) fn parse_mem_budget(raw: &str) -> Result<u64, String> {
    let s = raw.trim();
    let (digits, shift) = match s.chars().last().map(|c| c.to_ascii_lowercase()) {
        Some('k') => (&s[..s.len() - 1], 10),
        Some('m') => (&s[..s.len() - 1], 20),
        Some('g') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("--mem-budget: cannot parse '{raw}' (want BYTES[k|m|g])"))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("--mem-budget: '{raw}' overflows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parser_variants() {
        let f = parse_flags(&argv(&["--a=1", "--b", "2", "--bare"])).unwrap();
        assert_eq!(f.get("a"), Some("1"));
        assert_eq!(f.get("b"), Some("2"));
        assert!(f.has("bare"));
        assert!(!f.has("missing"));
        assert!(parse_flags(&argv(&["loose"])).is_err());
    }

    #[test]
    fn mem_budget_parsing() {
        assert_eq!(parse_mem_budget("65536").unwrap(), 65536);
        assert_eq!(parse_mem_budget("64k").unwrap(), 64 << 10);
        assert_eq!(parse_mem_budget("2M").unwrap(), 2 << 20);
        assert_eq!(parse_mem_budget("1g").unwrap(), 1 << 30);
        assert_eq!(parse_mem_budget("0").unwrap(), 0);
        assert!(parse_mem_budget("lots").unwrap_err().contains("mem-budget"));
        assert!(parse_mem_budget("").is_err());
        assert!(parse_mem_budget("99999999999g").is_err(), "overflow");
    }

    #[test]
    fn minsup_is_an_alias_for_support() {
        let f = parse_flags(&argv(&["--minsup", "25"])).unwrap();
        let s = support_of(&f).unwrap();
        assert_eq!(s, mining_types::MinSupport::from_percent(25.0));
        let f = parse_flags(&argv(&["--support", "25%"])).unwrap();
        assert_eq!(support_of(&f).unwrap(), s);
        let f = parse_flags(&argv(&[])).unwrap();
        assert!(support_of(&f).unwrap_err().contains("--support"));
        let f = parse_flags(&argv(&["--minsup", "200"])).unwrap();
        assert!(support_of(&f).unwrap_err().contains("[0, 100]"));
    }

    #[test]
    fn stats_mode_variants() {
        let mode = |toks: &[&str]| stats_mode(&parse_flags(&argv(toks)).unwrap());
        assert_eq!(mode(&[]).unwrap(), StatsMode::Off);
        assert_eq!(mode(&["--stats"]).unwrap(), StatsMode::Human);
        assert_eq!(mode(&["--stats=json"]).unwrap(), StatsMode::Json);
        assert!(mode(&["--stats=yaml"]).is_err());
    }
}
