//! `eclat seq` — SPADE-style sequence mining over `.ecs` databases.
//!
//! ```text
//! eclat seq --input F.ecs (--minsup|--support) PCT [--maxlen K]
//!           [--policy serial|rayon|threads[:P]] [--top N]
//!           [--out SNAP.ecq] [--verify] [--stats[=json]] [--trace PATH]
//! ```
//!
//! All option parsing goes through [`crate::common`], so the flags
//! behave exactly like `mine`'s: `--stats[=json]` emits the
//! `"algorithm":"spade"` [`SeqStats`] report, `--trace PATH` records
//! the per-phase/per-class span timeline, `--out` persists the mined
//! sequences as a checksummed [`dbstore::seqfmt`] snapshot, and
//! `--verify` re-mines with the naive GSP-style reference and fails
//! loudly on any divergence — the `check.sh` diff gate runs exactly
//! that.

use crate::common::{arm_tracing, stats_mode, support_of, Flags, StatsMode};
use dbstore::seqfmt;
use eclat::pipeline::{FixedThreads, Rayon, Serial};
use eclat_seq::{mine_stats, reference, FrequentSequences, SeqConfig, SeqDb, SeqStats};
use mining_types::stats::MiningStats;
use mining_types::{MinSupport, OpMeter};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Which executor `--policy` asked for.
enum Policy {
    Serial,
    Rayon,
    Threads(usize),
}

fn policy_of(flags: &Flags) -> Result<Policy, String> {
    match flags.get("policy").unwrap_or("serial") {
        "serial" => Ok(Policy::Serial),
        "rayon" => Ok(Policy::Rayon),
        "threads" => Ok(Policy::Threads(0)),
        other => match other.split_once(':') {
            Some(("threads", p)) => {
                let threads: usize = p.parse().map_err(|_| format!("bad thread count '{p}'"))?;
                Ok(Policy::Threads(threads))
            }
            _ => Err(format!(
                "unknown policy '{other}' (serial|rayon|threads[:P])"
            )),
        },
    }
}

fn load_seq_db(flags: &Flags) -> Result<SeqDb, String> {
    let path = flags.require("input")?;
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut r = BufReader::new(f);
    let ((raw, _num_items), _) =
        seqfmt::read_seq_db(&mut r).map_err(|e| format!("read {path}: {e}"))?;
    Ok(SeqDb::from_events(raw))
}

fn run_policy(
    db: &SeqDb,
    minsup: MinSupport,
    cfg: &SeqConfig,
    policy: &Policy,
) -> (FrequentSequences, MiningStats) {
    let mut meter = OpMeter::new();
    match policy {
        Policy::Serial => mine_stats(db, minsup, cfg, &mut meter, &Serial, "sequential"),
        Policy::Rayon => mine_stats(db, minsup, cfg, &mut meter, &Rayon, "rayon"),
        Policy::Threads(p) => mine_stats(
            db,
            minsup,
            cfg,
            &mut meter,
            &FixedThreads::new(*p),
            "threads",
        ),
    }
}

pub(crate) fn cmd_seq(flags: &Flags) -> Result<String, String> {
    let db = load_seq_db(flags)?;
    let minsup = support_of(flags)?;
    let policy = policy_of(flags)?;
    let maxlen: Option<u32> = flags
        .get("maxlen")
        .map(str::parse)
        .transpose()
        .map_err(|_| "--maxlen: expected a pattern-length cap".to_string())?;
    let top: usize = flags.parse("top", 20usize)?;
    let stats = stats_mode(flags)?;
    let trace_path = flags.get("trace").map(str::to_string);
    if trace_path.is_some() {
        arm_tracing(0);
    }

    let cfg = SeqConfig {
        maxlen,
        ..SeqConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (fs, mining) = run_policy(&db, minsup, &cfg, &policy);
    let dt = t0.elapsed().as_secs_f64();

    let verified = if flags.has("verify") {
        let oracle = reference::mine_reference(&db, minsup, maxlen);
        if fs != oracle {
            return Err(format!(
                "--verify: spade kernel diverged from the reference miner \
                 ({} vs {} frequent sequences)",
                fs.len(),
                oracle.len()
            ));
        }
        true
    } else {
        false
    };

    let snapshot_msg = match flags.get("out") {
        Some(path) => {
            let patterns: Vec<seqfmt::RawSeqPattern> =
                fs.iter().map(|(p, &s)| (p.to_raw(), s)).collect();
            let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(f);
            let bytes = seqfmt::write_seq_results(db.num_sequences() as u32, &patterns, &mut w)
                .map_err(|e| format!("write {path}: {e}"))?;
            Some(format!(
                "snapshot: {} sequences, {bytes} bytes -> {path}\n",
                patterns.len()
            ))
        }
        None => None,
    };

    let trace_msg = match &trace_path {
        Some(path) => {
            let doc = eclat_obs::trace::render_jsonl();
            std::fs::write(path, &doc).map_err(|e| format!("write {path}: {e}"))?;
            Some(format!(
                "trace: {} records -> {path}\n",
                doc.lines().count().saturating_sub(1)
            ))
        }
        None => None,
    };

    let report = SeqStats::from_run(&db, &cfg, &fs, mining);
    if stats == StatsMode::Json {
        let mut json = report.to_json();
        json.push('\n');
        return Ok(json);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} frequent sequences in {dt:.2}s (spade, {}){}",
        fs.len(),
        report.mining.variant,
        if verified { " [verified]" } else { "" }
    );
    for &(len, n) in &report.by_len {
        let _ = writeln!(out, "  len {len:>2}: {n}");
    }
    let mut sorted: Vec<_> = fs.iter().collect();
    sorted.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let _ = writeln!(out, "top by support:");
    for (p, s) in sorted.into_iter().take(top) {
        let _ = writeln!(out, "  {:<40} {:>8}", format!("{p}"), s);
    }
    if let Some(msg) = snapshot_msg {
        out.push_str(&msg);
    }
    if let Some(msg) = trace_msg {
        out.push_str(&msg);
    }
    if stats == StatsMode::Human {
        out.push('\n');
        out.push_str(&report.mining.render());
    }
    Ok(out)
}
