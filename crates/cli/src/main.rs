//! `eclat` binary entry point: thin shell over [`eclat_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match eclat_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}
