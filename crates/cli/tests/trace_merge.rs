//! Multi-process tracing integration: every `eclat` invocation here is
//! a real subprocess, so the process-global tracer state of one command
//! cannot leak into another. The centerpiece pins the acceptance path:
//! a `dmine --spawn-local` fleet with `--trace` leaves ONE merged
//! cluster timeline showing all four protocol phases on every worker.

use std::path::PathBuf;
use std::process::Command;

fn eclat(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_eclat"))
        .args(args)
        .output()
        .expect("spawn eclat");
    assert!(
        out.status.success(),
        "eclat {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 report")
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eclat-tracetest-{}-{name}", std::process::id()))
}

fn generate(db: &std::path::Path) {
    let report = eclat(&[
        "generate",
        "--out",
        db.to_str().unwrap(),
        "--transactions",
        "2000",
        "--seed",
        "7",
    ]);
    assert!(report.contains("generated"), "{report}");
}

#[test]
fn mine_trace_roundtrips_to_chrome() {
    let db = temp("mine.ech");
    let trace = temp("mine.jsonl");
    let chrome = temp("mine.json");
    generate(&db);

    let mined = eclat(&[
        "mine",
        "--input",
        db.to_str().unwrap(),
        "--support",
        "0.5",
        "--algorithm",
        "parallel",
        "--stats",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(mined.contains("trace: "), "{mined}");

    let report = eclat(&[
        "trace",
        "--input",
        trace.to_str().unwrap(),
        "--chrome",
        chrome.to_str().unwrap(),
    ]);
    assert!(report.contains("valid trace"), "{report}");
    // The stats pipeline spans its phases; the kernels span their
    // scans; phase 3 spans each equivalence class.
    for name in ["init", "transform", "async", "scan:count_pairs", "class"] {
        assert!(report.contains(name), "missing span '{name}': {report}");
    }

    let cj = std::fs::read_to_string(&chrome).unwrap();
    assert!(cj.starts_with("{\"traceEvents\":["), "{cj}");
    assert!(
        cj.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"),
        "{cj}"
    );

    for p in [&db, &trace, &chrome] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn dmine_spawn_local_traces_merge_into_one_timeline() {
    let db = temp("dmine.ech");
    let trace = temp("dmine.jsonl");
    generate(&db);

    let report = eclat(&[
        "dmine",
        "--input",
        db.to_str().unwrap(),
        "--support",
        "0.5",
        "--spawn-local",
        "2",
        "--threads",
        "2",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(report.contains("frequent itemsets"), "{report}");
    assert!(report.contains("trace: 3 processes"), "{report}");

    // The per-worker partials were merged and removed.
    for i in 0..2 {
        let partial = format!("{}.w{i}", trace.display());
        assert!(
            !std::path::Path::new(&partial).exists(),
            "partial {partial} survived the merge"
        );
    }

    // One timeline: three meta lines that agree on a single run id.
    let doc = std::fs::read_to_string(&trace).unwrap();
    let run_id_of = |l: &str| {
        l.split("\"run_id\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .map(str::to_string)
    };
    let metas: Vec<&str> = doc
        .lines()
        .filter(|l| l.contains("\"type\":\"meta\""))
        .collect();
    assert_eq!(metas.len(), 3, "{doc}");
    let first = run_id_of(metas[0]).expect("run id");
    assert!(
        metas.iter().all(|m| run_id_of(m).as_ref() == Some(&first)),
        "run ids diverge across processes"
    );

    // Timestamps are globally monotone after the merge rebase.
    let mut last = 0u64;
    for line in doc.lines().filter(|l| l.contains("\"type\":\"event\"")) {
        let t: u64 = line
            .split("\"t_us\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("t_us");
        assert!(t >= last, "t_us goes backwards at: {line}");
        last = t;
    }

    // All four protocol phases open on BOTH workers, and the
    // coordinator (logical pid u32::MAX) drove its own four phases.
    for pid in ["0", "1", "4294967295"] {
        for phase in ["init", "transform", "async", "reduce"] {
            assert!(
                doc.lines().any(|l| l.contains("\"ph\":\"B\"")
                    && l.contains(&format!("\"pid\":{pid},"))
                    && l.contains(&format!("\"name\":\"{phase}\""))),
                "missing phase '{phase}' for pid {pid}"
            );
        }
    }

    // The trace subcommand agrees it is one valid merged document.
    let validated = eclat(&["trace", "--input", trace.to_str().unwrap()]);
    assert!(validated.contains("valid trace"), "{validated}");
    assert!(validated.contains("3 process(es)"), "{validated}");
    assert!(validated.contains("[0, 1, 4294967295]"), "{validated}");

    std::fs::remove_file(&db).unwrap();
    std::fs::remove_file(&trace).unwrap();
}
