//! The incremental mining engine: batch ingest, delta counting, and
//! class-localized re-mining.

use crate::stats::BatchStats;
use assoc_rules::Rule;
use dbstore::binfmt::{ResultsSnapshot, RuleRecord};
use dbstore::{HorizontalDb, VerticalDb};
use eclat::equivalence::classes_of_l2;
use eclat::pipeline::ExecutionPolicy;
use eclat::EclatConfig;
use mining_types::{
    Counted, FrequentSet, ItemId, Itemset, MinSupport, OpMeter, Tid, TriangleMatrix,
};
use std::collections::BTreeMap;
use std::time::Instant;
use tidlist::TidList;

/// Everything mined so far — the state a query server boots from.
///
/// After every [`StreamEngine::ingest_batch`] this equals the output of
/// a full re-mine of all transactions seen so far (same itemsets, same
/// supports, same rules); the golden replay tests pin that equality
/// byte-for-byte through the snapshot serializer.
#[derive(Clone, Debug)]
pub struct MinedState {
    /// Transactions ingested so far (support denominator).
    pub num_transactions: u32,
    /// Absolute support threshold at this size (minsup is a fraction,
    /// so the threshold rises as transactions accumulate).
    pub threshold: u32,
    /// The complete downward-closed frequent set (singletons included).
    pub frequent: FrequentSet,
    /// Rules regenerated over `frequent` after the last batch.
    pub rules: Vec<Rule>,
    /// Batches ingested (bumped once per batch; 0 = nothing ingested).
    pub generation: u64,
}

impl MinedState {
    fn empty(minsup: MinSupport) -> MinedState {
        MinedState {
            num_transactions: 0,
            threshold: minsup.count_threshold(0),
            frequent: FrequentSet::new(),
            rules: Vec::new(),
            generation: 0,
        }
    }

    /// Reference answer: mine `db` from scratch with the same config the
    /// engine uses (singletons forced on — rule generation needs the
    /// downward-closed set). The golden tests and `streambench` compare
    /// every incremental batch against this.
    pub fn full_mine(
        db: &HorizontalDb,
        minsup: MinSupport,
        confidence: f64,
        cfg: &EclatConfig,
    ) -> MinedState {
        let mut cfg = cfg.clone();
        cfg.include_singletons = true;
        let frequent = eclat::sequential::mine_with(db, minsup, &cfg, &mut OpMeter::new());
        let rules = assoc_rules::generate(&frequent, confidence);
        MinedState {
            num_transactions: db.num_transactions() as u32,
            threshold: minsup.count_threshold(db.num_transactions()),
            frequent,
            rules,
            generation: 0,
        }
    }

    /// Storage form of this state (for [`dbstore::binfmt::write_results`]).
    pub fn to_snapshot(&self) -> ResultsSnapshot {
        ResultsSnapshot {
            num_transactions: self.num_transactions,
            frequent: self.frequent.clone(),
            rules: self
                .rules
                .iter()
                .map(|r| RuleRecord {
                    antecedent: r.antecedent.clone(),
                    consequent: r.consequent.clone(),
                    support: r.support,
                    antecedent_support: r.antecedent_support,
                    consequent_support: r.consequent_support,
                })
                .collect(),
            generation: self.generation,
        }
    }
}

/// Per-class persisted state: the member fingerprint (extension item +
/// pair support at the last merge) and every frequent itemset rooted at
/// this class's prefix item, at the threshold it was last validated
/// against.
#[derive(Clone, Debug)]
struct ClassState {
    /// `(extension item, pair support)` for each current member — the
    /// fingerprint that would detect carry-over drift (checked in debug
    /// builds when a clean class is revalidated).
    members: Vec<(ItemId, u32)>,
    /// All frequent itemsets with this prefix item, members included,
    /// sorted by itemset.
    results: Vec<Counted>,
}

/// The incremental miner.
///
/// Holds the accumulated vertical database (per-item tid-lists), the
/// delta-maintained item counts and `L2` triangle, and one
/// `ClassState` per live equivalence class. Each
/// [`StreamEngine::ingest_batch`] runs the four spans
/// `stream:ingest` → `stream:delta` → `stream:remine` → `stream:merge`
/// and leaves [`StreamEngine::state`] equal to a full re-mine of the
/// prefix.
///
/// ## The dirty-set rule
///
/// After delta-counting a batch, a class (keyed by its prefix item `a`)
/// must be re-mined iff **any pair `{a, x}` frequent at the new
/// threshold gained tids in the batch**. Everything else carries over:
///
/// * an untouched class's member tid-lists are bit-identical to the
///   previous mine, so its previous results filtered to the new
///   threshold *are* the full re-mine (the threshold only rises —
///   `ceil(fraction · |D|)` is monotone in `|D|` — and the per-class
///   Eclat recursion is complete for its prefix, so filtering the old
///   superset is exact);
/// * a pair newly frequent without gaining tids is impossible (its
///   count is unchanged and the threshold did not fall), so every
///   *newly created* class is dirty by construction;
/// * a class whose pairs all dropped below the new threshold dies: no
///   superset itemset can reach the threshold its own 2-subsets miss.
///
/// This is at pair granularity, strictly tighter than (and bounded by)
/// the item-granular rule "classes containing any changed frequent
/// item" — [`BatchStats::dirty_bound`] reports the item-granular count
/// so the bench can assert `classes_dirty <= dirty_bound`.
pub struct StreamEngine {
    minsup: MinSupport,
    confidence: f64,
    cfg: EclatConfig,
    vertical: VerticalDb,
    item_counts: Vec<u32>,
    tri: TriangleMatrix,
    next_tid: u32,
    classes: BTreeMap<u32, ClassState>,
    state: MinedState,
    meter: OpMeter,
}

impl StreamEngine {
    /// A fresh engine over an (initially) `num_items`-wide universe.
    /// The universe widens automatically when a batch mentions a larger
    /// item id. Singletons are always mined (rule generation needs the
    /// complete downward-closed set, matching the `mine --out` snapshot
    /// semantics).
    pub fn new(num_items: u32, minsup: MinSupport, confidence: f64, cfg: EclatConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence must be in [0,1]"
        );
        let mut cfg = cfg;
        cfg.include_singletons = true;
        StreamEngine {
            minsup,
            confidence,
            cfg,
            vertical: VerticalDb::from_lists(vec![TidList::new(); num_items as usize]),
            item_counts: vec![0; num_items as usize],
            tri: TriangleMatrix::new(num_items as usize),
            next_tid: 0,
            classes: BTreeMap::new(),
            state: MinedState::empty(minsup),
            meter: OpMeter::new(),
        }
    }

    /// The mined state after the last batch.
    pub fn state(&self) -> &MinedState {
        &self.state
    }

    /// Batches ingested so far.
    pub fn generation(&self) -> u64 {
        self.state.generation
    }

    /// Transactions ingested so far.
    pub fn num_transactions(&self) -> usize {
        self.next_tid as usize
    }

    /// Cumulative intersection/scan work meter.
    pub fn meter(&self) -> &OpMeter {
        &self.meter
    }

    /// Current item universe width.
    pub fn num_items(&self) -> u32 {
        self.vertical.num_items()
    }

    /// Widen every delta structure to `n` items, preserving all counts.
    fn grow_items(&mut self, n: usize) {
        let old = self.tri.num_items();
        if n <= old {
            return;
        }
        self.vertical.grow_items(n as u32);
        self.item_counts.resize(n, 0);
        let mut wider = TriangleMatrix::new(n);
        for (a, b, c) in self.tri.frequent_pairs(1) {
            wider.add(a, b, c);
        }
        self.tri = wider;
    }

    /// Ingest one batch of transactions and re-mine exactly the dirty
    /// classes. Transactions are normalized (sorted, deduplicated) the
    /// same way [`HorizontalDb::from_transactions`] normalizes, so the
    /// incremental state tracks a full re-mine of the concatenated
    /// prefix. Returns the per-batch statistics.
    pub fn ingest_batch<P: ExecutionPolicy>(
        &mut self,
        batch: &[Vec<ItemId>],
        policy: &P,
    ) -> BatchStats {
        let batch_index = self.state.generation; // 0-based index of this batch
        let mut stats = BatchStats::new(batch_index, batch.len() as u64);

        // -- ingest: append to the vertical database, delta-count ------
        let t0 = Instant::now();
        let delta = {
            let _span = eclat_obs::trace::span_arg("stream:ingest", batch_index);
            let widest = batch
                .iter()
                .flat_map(|t| t.iter().map(|i| i.0 as usize + 1))
                .max()
                .unwrap_or(0);
            self.grow_items(widest);
            let mut delta = TriangleMatrix::new(self.tri.num_items());
            let mut txn: Vec<ItemId> = Vec::new();
            for raw in batch {
                txn.clear();
                txn.extend_from_slice(raw);
                txn.sort_unstable();
                txn.dedup();
                let tid = Tid(self.next_tid);
                self.next_tid += 1;
                for &it in &txn {
                    self.item_counts[it.index()] += 1;
                }
                self.vertical.append_transaction(tid, &txn);
                delta.count_transaction(&txn);
            }
            delta
        };
        stats.ingest_secs = t0.elapsed().as_secs_f64();

        // -- delta: merge counts, find the frequent pairs + dirty set --
        let t0 = Instant::now();
        let threshold = {
            let _span = eclat_obs::trace::span_arg("stream:delta", batch_index);
            self.tri.merge_from(&delta);
            self.minsup.count_threshold(self.next_tid as usize)
        };
        debug_assert!(
            threshold >= self.state.threshold,
            "the count threshold is monotone in |D|"
        );
        // Frequent pairs at the new threshold, grouped into classes by
        // prefix item; `changed` marks pairs that gained tids this batch.
        let mut grouped: BTreeMap<u32, Vec<(ItemId, u32, bool)>> = BTreeMap::new();
        for (a, b, support) in self.tri.frequent_pairs(threshold) {
            let changed = delta.get(a, b) > 0;
            grouped.entry(a.0).or_default().push((b, support, changed));
        }
        let changed_item = |i: ItemId| delta_item_changed(&delta, i);
        for (&a, members) in &grouped {
            stats.classes_total += 1;
            if members.iter().any(|m| m.2) {
                stats.classes_dirty += 1;
            }
            // The ISSUE's coarser, item-granular bound: the class is in
            // the dirty set if any member pair touches a changed item.
            if members
                .iter()
                .any(|&(b, _, _)| changed_item(ItemId(a)) || changed_item(b))
            {
                stats.dirty_bound += 1;
            }
        }
        stats.changed_pairs = count_changed_pairs(&delta);
        stats.delta_secs = t0.elapsed().as_secs_f64();

        // -- remine: rebuild + mine only the dirty classes -------------
        let t0 = Instant::now();
        let mut remined_by_prefix: BTreeMap<u32, Vec<Counted>> = BTreeMap::new();
        {
            let _span = eclat_obs::trace::span_arg("stream:remine", batch_index);
            let mut dirty_pairs: Vec<(ItemId, ItemId, TidList)> = Vec::new();
            for (&a, members) in &grouped {
                if !members.iter().any(|m| m.2) {
                    continue;
                }
                let ta = self.vertical.tidlist(ItemId(a));
                for &(b, support, _) in members {
                    let tl = ta.intersect_metered(self.vertical.tidlist(b), &mut self.meter);
                    debug_assert_eq!(tl.support(), support, "triangle and tid-lists agree");
                    dirty_pairs.push((ItemId(a), b, tl));
                }
            }
            let classes = classes_of_l2(dirty_pairs);
            let mut remined = FrequentSet::new();
            let mut class_stats = Vec::new();
            policy.mine_classes(
                classes,
                threshold,
                &self.cfg,
                &mut self.meter,
                &mut remined,
                &mut class_stats,
            );
            // Every itemset mined from class `a` starts with item `a`,
            // so the merged result set splits back by first item.
            for c in remined.sorted() {
                let first = c.itemset.first().expect("class results are non-empty").0;
                remined_by_prefix.entry(first).or_default().push(c);
            }
        }
        stats.remine_secs = t0.elapsed().as_secs_f64();

        // -- merge: carry clean classes, swap dirty ones, regen rules --
        let t0 = Instant::now();
        {
            let _span = eclat_obs::trace::span_arg("stream:merge", batch_index);
            stats.classes_dropped = self
                .classes
                .keys()
                .filter(|k| !grouped.contains_key(k))
                .count() as u64;
            let mut next: BTreeMap<u32, ClassState> = BTreeMap::new();
            for (&a, members) in &grouped {
                let fingerprint: Vec<(ItemId, u32)> =
                    members.iter().map(|&(b, s, _)| (b, s)).collect();
                let dirty = members.iter().any(|m| m.2);
                if dirty {
                    if !self.classes.contains_key(&a) {
                        stats.classes_born += 1;
                    }
                    let results = remined_by_prefix.remove(&a).unwrap_or_default();
                    let state = ClassState {
                        members: fingerprint,
                        results,
                    };
                    next.insert(a, state);
                } else {
                    // Clean: every member is unchanged and was frequent
                    // before (threshold never falls), so the class must
                    // pre-exist and its previous results filtered to the
                    // new threshold are exactly the re-mine.
                    let old = self
                        .classes
                        .remove(&a)
                        .expect("clean class must already exist");
                    debug_assert!(
                        fingerprint.iter().all(|m| old.members.contains(m)),
                        "clean members must be unchanged since the last mine"
                    );
                    stats.classes_carried += 1;
                    let results: Vec<Counted> = old
                        .results
                        .into_iter()
                        .filter(|c| c.support >= threshold)
                        .collect();
                    next.insert(
                        a,
                        ClassState {
                            members: fingerprint,
                            results,
                        },
                    );
                }
            }
            self.classes = next;

            let mut frequent = FrequentSet::new();
            for (i, &c) in self.item_counts.iter().enumerate() {
                if c >= threshold {
                    frequent.insert(Itemset::single(ItemId(i as u32)), c);
                }
            }
            for class in self.classes.values() {
                for c in &class.results {
                    frequent.insert(c.itemset.clone(), c.support);
                }
            }
            let rules = assoc_rules::generate(&frequent, self.confidence);
            self.state = MinedState {
                num_transactions: self.next_tid,
                threshold,
                frequent,
                rules,
                generation: self.state.generation + 1,
            };
        }
        stats.merge_secs = t0.elapsed().as_secs_f64();

        stats.total_transactions = self.next_tid as u64;
        stats.threshold = u64::from(threshold);
        stats.itemsets = self.state.frequent.len() as u64;
        stats.rules = self.state.rules.len() as u64;
        stats.generation = self.state.generation;
        stats
    }
}

/// Did `item` appear in the batch? Inferred from the delta triangle's
/// row/column, falling back on nothing else — a batch transaction with a
/// single item touches no pair, so singleton-only appearances are
/// invisible here. That is fine for the *bound*: a pair can only change
/// when both its items co-occur in some batch transaction, which this
/// predicate does see.
fn delta_item_changed(delta: &TriangleMatrix, item: ItemId) -> bool {
    let n = delta.num_items() as u32;
    (0..n).any(|other| other != item.0 && delta.get(item, ItemId(other)) > 0)
}

/// Number of distinct pairs that gained count this batch.
fn count_changed_pairs(delta: &TriangleMatrix) -> u64 {
    delta.frequent_pairs(1).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclat::pipeline::{FixedThreads, Rayon, Serial};

    fn txns(raw: &[&[u32]]) -> Vec<Vec<ItemId>> {
        raw.iter()
            .map(|t| t.iter().copied().map(ItemId).collect())
            .collect()
    }

    fn assert_state_matches_full(engine: &StreamEngine, prefix: &[Vec<ItemId>]) {
        let db = HorizontalDb::from_transactions(prefix.to_vec());
        let full = MinedState::full_mine(&db, engine.minsup, engine.confidence, &engine.cfg);
        assert_eq!(
            engine.state().frequent,
            full.frequent,
            "incremental != full at {} txns",
            prefix.len()
        );
        assert_eq!(engine.state().rules, full.rules);
        assert_eq!(engine.state().threshold, full.threshold);
        assert_eq!(engine.state().num_transactions, full.num_transactions);
    }

    #[test]
    fn single_batch_equals_full_mine() {
        let data = txns(&[&[0, 1, 2], &[0, 1], &[1, 2], &[0, 2], &[1, 2, 3]]);
        let mut e = StreamEngine::new(
            4,
            MinSupport::from_fraction(0.4),
            0.5,
            EclatConfig::default(),
        );
        e.ingest_batch(&data, &Serial);
        assert_state_matches_full(&e, &data);
        assert_eq!(e.generation(), 1);
    }

    #[test]
    fn incremental_batches_equal_full_mine_of_prefix() {
        let data = txns(&[
            &[0, 1, 2],
            &[0, 1],
            &[1, 2],
            &[0, 2],
            &[1, 2, 3],
            &[0, 1, 3],
            &[3],
            &[0, 1, 2, 3],
            &[2, 3],
            &[0, 3],
        ]);
        let mut e = StreamEngine::new(
            4,
            MinSupport::from_fraction(0.3),
            0.5,
            EclatConfig::default(),
        );
        for (i, chunk) in data.chunks(3).enumerate() {
            let stats = e.ingest_batch(chunk, &Serial);
            let seen = data.len().min((i + 1) * 3);
            assert_state_matches_full(&e, &data[..seen]);
            assert!(stats.classes_dirty <= stats.dirty_bound);
            assert_eq!(stats.generation, (i + 1) as u64);
        }
    }

    #[test]
    fn untouched_class_is_carried_not_remined() {
        // Batch 1 establishes two classes: {0,1} and {2,3}. Batch 2
        // touches only items 0/1, so class 2 must carry over.
        let first = txns(&[&[0, 1], &[0, 1], &[2, 3], &[2, 3]]);
        let second = txns(&[&[0, 1], &[0, 1]]);
        let mut e = StreamEngine::new(
            4,
            MinSupport::from_fraction(0.3),
            0.5,
            EclatConfig::default(),
        );
        e.ingest_batch(&first, &Serial);
        let stats = e.ingest_batch(&second, &Serial);
        assert_eq!(stats.classes_total, 2);
        assert_eq!(stats.classes_dirty, 1, "only class 0 saw new tids");
        assert_eq!(stats.classes_carried, 1);
        let mut all = first.clone();
        all.extend(second);
        assert_state_matches_full(&e, &all);
    }

    #[test]
    fn border_crossings_kill_and_create_classes() {
        // 50% minsup over 4 txns needs count >= 2; over 8 txns count >= 4.
        // The {2,3} pair (count 2) is frequent after batch 1, then falls
        // below threshold after batch 2 without losing a single tid —
        // the rising-threshold border crossing. Meanwhile {4,5} becomes
        // newly frequent, creating a class (prefix 4) that never existed.
        let first = txns(&[&[0, 1], &[0, 1], &[2, 3], &[2, 3]]);
        let second = txns(&[&[0, 1, 4, 5], &[0, 1, 4, 5], &[4, 5], &[4, 5]]);
        let mut e = StreamEngine::new(
            6,
            MinSupport::from_fraction(0.5),
            0.5,
            EclatConfig::default(),
        );
        let s1 = e.ingest_batch(&first, &Serial);
        assert_eq!(s1.classes_total, 2);
        let s2 = e.ingest_batch(&second, &Serial);
        assert_eq!(s2.classes_dropped, 1, "class 2 dies at the new threshold");
        assert!(s2.classes_born >= 1, "class 4 never existed before");
        let mut all = first.clone();
        all.extend(second);
        assert_state_matches_full(&e, &all);
        assert!(e
            .state()
            .frequent
            .support_of(&Itemset::of(&[2, 3]))
            .is_none());
    }

    #[test]
    fn item_universe_grows_mid_stream() {
        let first = txns(&[&[0, 1], &[0, 1]]);
        let second = txns(&[&[0, 7], &[0, 7], &[1, 7]]);
        let mut e = StreamEngine::new(
            2,
            MinSupport::from_fraction(0.4),
            0.5,
            EclatConfig::default(),
        );
        e.ingest_batch(&first, &Serial);
        assert_eq!(e.num_items(), 2);
        e.ingest_batch(&second, &Serial);
        assert_eq!(e.num_items(), 8);
        let mut all = first.clone();
        all.extend(second);
        assert_state_matches_full(&e, &all);
    }

    #[test]
    fn empty_and_degenerate_batches_are_harmless() {
        let mut e = StreamEngine::new(
            3,
            MinSupport::from_fraction(0.5),
            0.5,
            EclatConfig::default(),
        );
        let stats = e.ingest_batch(&[], &Serial);
        assert_eq!(stats.transactions, 0);
        assert_eq!(e.num_transactions(), 0);
        // Unsorted, duplicated input is normalized like HorizontalDb does.
        let messy = vec![vec![ItemId(2), ItemId(0), ItemId(2)], vec![]];
        e.ingest_batch(&messy, &Serial);
        assert_state_matches_full(&e, &txns(&[&[0, 2], &[]]));
    }

    #[test]
    fn policies_agree() {
        let data = txns(&[
            &[0, 1, 2],
            &[0, 1],
            &[1, 2],
            &[0, 2],
            &[1, 2, 3],
            &[0, 1, 3],
        ]);
        let minsup = MinSupport::from_fraction(0.3);
        let mut serial = StreamEngine::new(4, minsup, 0.5, EclatConfig::default());
        let mut rayon = StreamEngine::new(4, minsup, 0.5, EclatConfig::default());
        let mut fixed = StreamEngine::new(4, minsup, 0.5, EclatConfig::default());
        for chunk in data.chunks(2) {
            serial.ingest_batch(chunk, &Serial);
            rayon.ingest_batch(chunk, &Rayon);
            fixed.ingest_batch(chunk, &FixedThreads::new(2));
        }
        assert_eq!(serial.state().frequent, rayon.state().frequent);
        assert_eq!(serial.state().frequent, fixed.state().frequent);
        assert_eq!(serial.state().rules, rayon.state().rules);
        assert_eq!(serial.state().rules, fixed.state().rules);
    }

    #[test]
    fn snapshot_round_trips_generation() {
        let data = txns(&[&[0, 1], &[0, 1], &[1, 2]]);
        let mut e = StreamEngine::new(
            3,
            MinSupport::from_fraction(0.5),
            0.6,
            EclatConfig::default(),
        );
        e.ingest_batch(&data, &Serial);
        let snap = e.state().to_snapshot();
        assert_eq!(snap.generation, 1);
        let mut buf = Vec::new();
        dbstore::binfmt::write_results(&snap, &mut buf).unwrap();
        let (back, _) = dbstore::binfmt::read_results(&mut buf.as_slice()).unwrap();
        assert_eq!(back, snap);
    }
}
