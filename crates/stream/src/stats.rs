//! Per-batch and per-run statistics for the streaming engine.
//!
//! Serialized through [`mining_types::json`] like every other stats
//! surface in the workspace; the key set is pinned by
//! `tests/stats_schema.rs` at the repo root.

use mining_types::json::{Arr, Obj};

/// Bump when the JSON shape of [`StreamStats`]/[`BatchStats`] changes.
pub const STREAM_SCHEMA_VERSION: u64 = 1;

/// What one [`ingest_batch`](crate::StreamEngine::ingest_batch) did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// 0-based batch index (== generation before this batch).
    pub batch: u64,
    /// Transactions in this batch.
    pub transactions: u64,
    /// Transactions ingested so far, this batch included.
    pub total_transactions: u64,
    /// Absolute support threshold after this batch.
    pub threshold: u64,
    /// Distinct item pairs whose co-occurrence count grew this batch.
    pub changed_pairs: u64,
    /// Equivalence classes (frequent-pair prefixes) after this batch.
    pub classes_total: u64,
    /// Classes re-mined because a frequent member pair gained tids.
    pub classes_dirty: u64,
    /// Classes whose previous results carried over (threshold-filtered).
    pub classes_carried: u64,
    /// Dirty classes with no previous state (born at this batch).
    pub classes_born: u64,
    /// Previous classes with no frequent pair at the new threshold.
    pub classes_dropped: u64,
    /// The ISSUE's item-granular dirty bound: classes with any member
    /// pair touching an item changed this batch. Always
    /// `>= classes_dirty` (the engine's pair-granular rule is tighter).
    pub dirty_bound: u64,
    /// Frequent itemsets in the merged state.
    pub itemsets: u64,
    /// Rules regenerated over the merged state.
    pub rules: u64,
    /// Engine generation after this batch (== batch + 1).
    pub generation: u64,
    /// Wall-clock seconds appending the batch to the vertical database.
    pub ingest_secs: f64,
    /// Wall-clock seconds merging delta counts and computing the dirty set.
    pub delta_secs: f64,
    /// Wall-clock seconds re-mining the dirty classes.
    pub remine_secs: f64,
    /// Wall-clock seconds merging results and regenerating rules.
    pub merge_secs: f64,
}

impl BatchStats {
    /// A zeroed record for batch `batch` of `transactions` transactions.
    pub fn new(batch: u64, transactions: u64) -> BatchStats {
        BatchStats {
            batch,
            transactions,
            ..BatchStats::default()
        }
    }

    /// Fraction of classes re-mined this batch (0 when there are none).
    pub fn dirty_fraction(&self) -> f64 {
        if self.classes_total == 0 {
            0.0
        } else {
            self.classes_dirty as f64 / self.classes_total as f64
        }
    }

    /// JSON object for this batch.
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("batch", self.batch)
            .u64("transactions", self.transactions)
            .u64("total_transactions", self.total_transactions)
            .u64("threshold", self.threshold)
            .u64("changed_pairs", self.changed_pairs)
            .u64("classes_total", self.classes_total)
            .u64("classes_dirty", self.classes_dirty)
            .u64("classes_carried", self.classes_carried)
            .u64("classes_born", self.classes_born)
            .u64("classes_dropped", self.classes_dropped)
            .u64("dirty_bound", self.dirty_bound)
            .f64("dirty_fraction", self.dirty_fraction())
            .u64("itemsets", self.itemsets)
            .u64("rules", self.rules)
            .u64("generation", self.generation)
            .f64("ingest_secs", self.ingest_secs)
            .f64("delta_secs", self.delta_secs)
            .f64("remine_secs", self.remine_secs)
            .f64("merge_secs", self.merge_secs)
            .finish()
    }
}

/// A whole streaming run: configuration plus one record per batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamStats {
    /// Tid-list representation, via its `Display` form.
    pub representation: String,
    /// Requested transactions per batch.
    pub batch_size: u64,
    /// Transactions ingested over the whole run.
    pub total_transactions: u64,
    /// Final absolute support threshold.
    pub threshold: u64,
    /// Frequent itemsets in the final state.
    pub itemsets: u64,
    /// Rules in the final state.
    pub rules: u64,
    /// Final engine generation (== number of batches).
    pub generation: u64,
    /// Per-batch records, in order.
    pub batches: Vec<BatchStats>,
}

impl StreamStats {
    /// Fold a batch record into the running totals.
    pub fn push(&mut self, batch: BatchStats) {
        self.total_transactions = batch.total_transactions;
        self.threshold = batch.threshold;
        self.itemsets = batch.itemsets;
        self.rules = batch.rules;
        self.generation = batch.generation;
        self.batches.push(batch);
    }

    /// JSON document for the run.
    pub fn to_json(&self) -> String {
        let mut arr = Arr::new();
        for b in &self.batches {
            arr.raw(&b.to_json());
        }
        Obj::new()
            .u64("schema_version", STREAM_SCHEMA_VERSION)
            .str("algorithm", "eclat")
            .str("variant", "stream")
            .str("representation", &self.representation)
            .u64("batch_size", self.batch_size)
            .u64("total_transactions", self.total_transactions)
            .u64("threshold", self.threshold)
            .u64("itemsets", self.itemsets)
            .u64("rules", self.rules)
            .u64("generation", self.generation)
            .raw("batches", &arr.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_json_shape() {
        let mut b = BatchStats::new(2, 10);
        b.classes_total = 4;
        b.classes_dirty = 1;
        let json = b.to_json();
        assert!(json.starts_with("{\"batch\":2,\"transactions\":10,"));
        assert!(json.contains("\"dirty_fraction\":0.25"));
    }

    #[test]
    fn stream_json_accumulates() {
        let mut s = StreamStats {
            representation: "tidlist".to_string(),
            batch_size: 10,
            ..StreamStats::default()
        };
        let mut b = BatchStats::new(0, 10);
        b.total_transactions = 10;
        b.generation = 1;
        b.itemsets = 5;
        s.push(b);
        assert_eq!(s.generation, 1);
        assert_eq!(s.itemsets, 5);
        let json = s.to_json();
        assert!(json
            .starts_with("{\"schema_version\":1,\"algorithm\":\"eclat\",\"variant\":\"stream\","));
        assert!(json.contains("\"batches\":[{\"batch\":0,"));
    }

    #[test]
    fn dirty_fraction_handles_empty() {
        assert_eq!(BatchStats::new(0, 0).dirty_fraction(), 0.0);
    }
}
