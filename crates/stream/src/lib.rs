//! Incremental (streaming) association mining on the localized kernel.
//!
//! The paper's central property — after the tid-list exchange every
//! equivalence class is mined independently, with no further
//! communication (§4.1, §5.3) — makes *incremental* mining natural.
//! When a batch of new transactions arrives:
//!
//! 1. **ingest** — the batch is appended to the vertical database
//!    (tid-lists extend in place: new tids are strictly above all old
//!    ones, the same §6.3 disjoint-ascending-range argument that lets
//!    partial tid-lists concatenate without sorting);
//! 2. **delta** — item frequencies and the `L2` triangle are updated by
//!    counting *only the batch* and merging, never recounting history;
//! 3. **remine** — the *dirty set* is computed (see
//!    [`engine::StreamEngine::ingest_batch`] for the exact rule) and
//!    only those equivalence classes are re-mined through the existing
//!    `pipeline` kernel — any
//!    [`ExecutionPolicy`](eclat::pipeline::ExecutionPolicy) works
//!    unchanged;
//! 4. **merge** — clean classes carry their previous results over
//!    (filtered to the new, possibly higher, support threshold), dirty
//!    classes replace theirs, and rules are regenerated over the merged
//!    frequent set.
//!
//! The result after every batch is *exactly* the full re-mine of all
//! transactions seen so far — the golden replay tests assert
//! byte-identical snapshots across every representation.

pub mod engine;
pub mod stats;

pub use engine::{MinedState, StreamEngine};
pub use stats::{BatchStats, StreamStats, STREAM_SCHEMA_VERSION};
