//! A fast, deterministic multiplicative hasher (an `FxHash` workalike).
//!
//! The Rust performance guide recommends `rustc-hash`'s `FxHashMap` when
//! hashing small integer keys is hot and HashDoS is not a concern — exactly
//! our situation (item ids, itemset prefixes). `rustc-hash` is not on the
//! offline dependency allow-list, so we re-implement the ~30-line algorithm
//! here. Being fully deterministic (no per-process random state) also keeps
//! the simulated-cluster runs bit-for-bit reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplication constant (same as rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hashing state: `hash = (hash.rotl(5) ^ word) * SEED` per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (deterministic: no random seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single `u64` to a well-mixed `u64` (for hash-tree bucket choice
/// and the generator's deterministic sub-streams).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test — just a sanity check that consecutive
        // integers don't collide and spread across high bits.
        let hashes: Vec<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000, "collisions among 1000 consecutive ints");
        let high_bits_used = hashes.iter().filter(|&&h| h >> 63 == 1).count();
        assert!(high_bits_used > 300 && high_bits_used < 700);
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Streams differing only in a short tail must hash differently.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 3, 0]));
        assert_ne!(hash_of(&[0u8; 7].as_slice()), hash_of(&[0u8; 8].as_slice()));
        assert_ne!(
            hash_of(b"abcdefgh1".as_slice()),
            hash_of(b"abcdefgh2".as_slice())
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m[&1], "a");
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn hash_u64_mixes() {
        assert_ne!(hash_u64(0), hash_u64(1));
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_eq!(hash_u64(42), hash_u64(42));
    }
}
