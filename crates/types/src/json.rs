//! A tiny hand-rolled JSON writer.
//!
//! The workspace builds offline against vendored stub crates, so there is
//! no serde; the stats layer ([`crate::stats`]) instead serializes through
//! these two builders. The output is deliberately boring: objects keep
//! their insertion order, floats use Rust's shortest round-trip `Display`
//! form, and non-finite floats degrade to `0` — every emitter in the
//! workspace therefore produces byte-stable JSON for identical inputs,
//! which is what the schema golden tests pin.

/// Escape a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity; those
/// collapse to `0` (they only arise from degenerate zero-length runs).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Incremental `{...}` builder with insertion-ordered keys.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        let quoted = format!("\"{}\"", escape(v));
        self.key(k).push_str(&quoted);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Obj {
        let s = v.to_string();
        self.key(k).push_str(&s);
        self
    }

    /// Add a float field (non-finite values collapse to `0`).
    pub fn f64(mut self, k: &str, v: f64) -> Obj {
        let s = number(v);
        self.key(k).push_str(&s);
        self
    }

    /// Add a pre-serialized JSON value (nested object/array/`null`).
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k).push_str(v);
        self
    }

    /// Close the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental `[...]` builder.
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
}

impl Arr {
    /// Start an empty array.
    pub fn new() -> Arr {
        Arr::default()
    }

    /// Append a pre-serialized JSON value.
    pub fn raw(&mut self, v: &str) -> &mut Arr {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(v);
        self
    }

    /// Append an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Arr {
        self.raw(&v.to_string())
    }

    /// Close the array.
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

/// Collect every key appearing anywhere in a JSON document — a schema
/// fingerprint for drift tests (no full parser needed; the writer above
/// only emits keys via [`escape`], so a quote-aware scan suffices).
pub fn collect_keys(json: &str) -> Vec<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            // find the unescaped closing quote
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() {
                if bytes[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if bytes[j] == b'"' {
                    break;
                }
                j += 1;
            }
            // a string followed by ':' is a key
            let mut k = j + 1;
            while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.insert(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys.into_iter().collect()
}

/// A parsed JSON value — the read side of this module's writer.
///
/// The workspace's stats artifacts (`results/*.json`) are produced by
/// [`Obj`]/[`Arr`] above; [`parse`] reads them back so tools like the
/// `stats_diff` bench binary can compare artifacts across runs without
/// serde. Object keys keep document order (the writer is
/// insertion-ordered and the golden tests pin byte-stable output).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the writer only emits finite values).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// A message with the byte offset of the first syntax error (including
/// trailing non-whitespace after the top-level value).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let value = parse_value(text, bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing characters at byte {at}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && bytes[*at].is_ascii_whitespace() {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*at) == Some(&c) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {at}", c as char))
    }
}

fn parse_value(text: &str, bytes: &[u8], at: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err("unexpected end of document".to_string()),
        Some(b'{') => {
            *at += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, at);
                let key = parse_string(text, bytes, at)?;
                skip_ws(bytes, at);
                expect(bytes, at, b':')?;
                fields.push((key, parse_value(text, bytes, at)?));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {at}")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, at)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {at}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(text, bytes, at)?)),
        Some(b't') if text[*at..].starts_with("true") => {
            *at += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if text[*at..].starts_with("false") => {
            *at += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if text[*at..].starts_with("null") => {
            *at += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *at;
            while *at < bytes.len()
                && matches!(bytes[*at], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *at += 1;
            }
            text[start..*at]
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn parse_string(text: &str, bytes: &[u8], at: &mut usize) -> Result<String, String> {
    expect(bytes, at, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = text
                            .get(*at + 1..*at + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {at}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {at}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u codepoint at byte {at}"))?,
                        );
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let c = text[*at..].chars().next().unwrap();
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_compose() {
        let inner = Obj::new().u64("a", 1).f64("b", 2.5).finish();
        let mut arr = Arr::new();
        arr.raw(&inner).u64(7);
        let outer = Obj::new()
            .str("name", "x")
            .raw("items", &arr.finish())
            .raw("none", "null")
            .finish();
        assert_eq!(
            outer,
            r#"{"name":"x","items":[{"a":1,"b":2.5},7],"none":null}"#
        );
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let o = Obj::new().str("k\"ey", "v\nal").finish();
        assert_eq!(o, "{\"k\\\"ey\":\"v\\nal\"}");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        assert_eq!(Obj::new().u64("n", u64::MAX).finish(), {
            format!("{{\"n\":{}}}", u64::MAX)
        });
    }

    #[test]
    fn key_collection_ignores_string_values() {
        let json = r#"{"a":1,"b":{"c":"not:akey","d":[{"e":2}]}}"#;
        assert_eq!(collect_keys(json), vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn empty_builders() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut arr = Arr::new();
        arr.raw(
            &Obj::new()
                .str("name", "tr\"an\nsform")
                .f64("secs", 1.25)
                .finish(),
        );
        arr.u64(3);
        let doc = Obj::new()
            .str("bench", "x")
            .f64("neg", -0.5)
            .raw("rows", &arr.finish())
            .raw("none", "null")
            .raw("flag", "true")
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("neg").and_then(Value::as_num), Some(-0.5));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        match v.get("rows") {
            Some(Value::Arr(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(
                    items[0].get("name").and_then(Value::as_str),
                    Some("tr\"an\nsform")
                );
                assert_eq!(items[1], Value::Num(3.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_exponents() {
        let v = parse(" { \"a\" : [ 1e3 , -2.5E-1 , \"\\u0041\\t\" ] } ").unwrap();
        match v.get("a") {
            Some(Value::Arr(items)) => {
                assert_eq!(items[0], Value::Num(1000.0));
                assert_eq!(items[1], Value::Num(-0.25));
                assert_eq!(items[2], Value::Str("A\t".to_string()));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_preserves_object_key_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        match v {
            Value::Obj(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["z", "a", "m"]);
            }
            other => panic!("{other:?}"),
        }
    }
}
