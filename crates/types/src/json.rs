//! A tiny hand-rolled JSON writer.
//!
//! The workspace builds offline against vendored stub crates, so there is
//! no serde; the stats layer ([`crate::stats`]) instead serializes through
//! these two builders. The output is deliberately boring: objects keep
//! their insertion order, floats use Rust's shortest round-trip `Display`
//! form, and non-finite floats degrade to `0` — every emitter in the
//! workspace therefore produces byte-stable JSON for identical inputs,
//! which is what the schema golden tests pin.

/// Escape a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity; those
/// collapse to `0` (they only arise from degenerate zero-length runs).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Incremental `{...}` builder with insertion-ordered keys.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        let quoted = format!("\"{}\"", escape(v));
        self.key(k).push_str(&quoted);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Obj {
        let s = v.to_string();
        self.key(k).push_str(&s);
        self
    }

    /// Add a float field (non-finite values collapse to `0`).
    pub fn f64(mut self, k: &str, v: f64) -> Obj {
        let s = number(v);
        self.key(k).push_str(&s);
        self
    }

    /// Add a pre-serialized JSON value (nested object/array/`null`).
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k).push_str(v);
        self
    }

    /// Close the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental `[...]` builder.
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
}

impl Arr {
    /// Start an empty array.
    pub fn new() -> Arr {
        Arr::default()
    }

    /// Append a pre-serialized JSON value.
    pub fn raw(&mut self, v: &str) -> &mut Arr {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(v);
        self
    }

    /// Append an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Arr {
        self.raw(&v.to_string())
    }

    /// Close the array.
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

/// Collect every key appearing anywhere in a JSON document — a schema
/// fingerprint for drift tests (no full parser needed; the writer above
/// only emits keys via [`escape`], so a quote-aware scan suffices).
pub fn collect_keys(json: &str) -> Vec<String> {
    let mut keys = std::collections::BTreeSet::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            // find the unescaped closing quote
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() {
                if bytes[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if bytes[j] == b'"' {
                    break;
                }
                j += 1;
            }
            // a string followed by ':' is a key
            let mut k = j + 1;
            while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.insert(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_compose() {
        let inner = Obj::new().u64("a", 1).f64("b", 2.5).finish();
        let mut arr = Arr::new();
        arr.raw(&inner).u64(7);
        let outer = Obj::new()
            .str("name", "x")
            .raw("items", &arr.finish())
            .raw("none", "null")
            .finish();
        assert_eq!(
            outer,
            r#"{"name":"x","items":[{"a":1,"b":2.5},7],"none":null}"#
        );
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let o = Obj::new().str("k\"ey", "v\nal").finish();
        assert_eq!(o, "{\"k\\\"ey\":\"v\\nal\"}");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        assert_eq!(Obj::new().u64("n", u64::MAX).finish(), {
            format!("{{\"n\":{}}}", u64::MAX)
        });
    }

    #[test]
    fn key_collection_ignores_string_values() {
        let json = r#"{"a":1,"b":{"c":"not:akey","d":[{"e":2}]}}"#;
        assert_eq!(collect_keys(json), vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn empty_builders() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }
}
