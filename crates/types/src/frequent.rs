//! The result type of frequent-itemset mining.
//!
//! Every miner in the workspace — Apriori, Eclat in all four variants,
//! Count Distribution, Candidate Distribution — produces a
//! [`FrequentSet`]: the set `∪_k L_k` of frequent itemsets with their
//! absolute support counts. Integration tests assert the *identical*
//! `FrequentSet` comes out of every algorithm on the same input, which is
//! the workspace's golden correctness invariant.

use crate::hash::FxHashMap;
use crate::itemset::Itemset;

/// One frequent itemset with its absolute support count.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Counted {
    /// The itemset.
    pub itemset: Itemset,
    /// Number of transactions containing it.
    pub support: u32,
}

/// A collection of frequent itemsets with supports.
///
/// Backed by a hash map for `O(1)` support lookup (rule generation probes
/// subsets constantly); iteration is available in sorted order for
/// deterministic output.
///
/// ```
/// use mining_types::{FrequentSet, Itemset};
/// let fs: FrequentSet = [
///     (Itemset::of(&[1]), 10),
///     (Itemset::of(&[2]), 8),
///     (Itemset::of(&[1, 2]), 5),
/// ].into_iter().collect();
/// assert_eq!(fs.support_of(&Itemset::of(&[1, 2])), Some(5));
/// assert_eq!(fs.counts_by_size(), vec![2, 1]);
/// assert_eq!(fs.closure_violation(), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FrequentSet {
    map: FxHashMap<Itemset, u32>,
}

impl FrequentSet {
    /// Empty set.
    pub fn new() -> Self {
        FrequentSet::default()
    }

    /// Insert an itemset with its support.
    ///
    /// # Panics
    /// Panics if the itemset was already present with a *different*
    /// support — two code paths disagreeing on a support is always a bug.
    pub fn insert(&mut self, itemset: Itemset, support: u32) {
        if let Some(&old) = self.map.get(&itemset) {
            assert_eq!(
                old, support,
                "conflicting supports for {itemset}: {old} vs {support}"
            );
            return;
        }
        self.map.insert(itemset, support);
    }

    /// Merge another set into this one (same conflict rule as `insert`).
    pub fn merge(&mut self, other: FrequentSet) {
        for (is, sup) in other.map {
            self.insert(is, sup);
        }
    }

    /// Support of `itemset`, if frequent.
    pub fn support_of(&self, itemset: &Itemset) -> Option<u32> {
        self.map.get(itemset).copied()
    }

    /// Whether `itemset` is present.
    pub fn contains(&self, itemset: &Itemset) -> bool {
        self.map.contains_key(itemset)
    }

    /// Number of frequent itemsets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is frequent.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Largest itemset size present (0 when empty).
    pub fn max_size(&self) -> usize {
        self.map.keys().map(|k| k.len()).max().unwrap_or(0)
    }

    /// Count of frequent `k`-itemsets for each `k` in `1..=max_size` —
    /// the series Figure 6 of the paper plots.
    pub fn counts_by_size(&self) -> Vec<usize> {
        let max = self.max_size();
        let mut counts = vec![0usize; max];
        for k in self.map.keys() {
            counts[k.len() - 1] += 1;
        }
        counts
    }

    /// All itemsets of size `k`, sorted (deterministic order).
    pub fn of_size(&self, k: usize) -> Vec<Counted> {
        let mut v: Vec<Counted> = self
            .map
            .iter()
            .filter(|(is, _)| is.len() == k)
            .map(|(is, &s)| Counted {
                itemset: is.clone(),
                support: s,
            })
            .collect();
        v.sort();
        v
    }

    /// All itemsets, sorted (deterministic order).
    pub fn sorted(&self) -> Vec<Counted> {
        let mut v: Vec<Counted> = self
            .map
            .iter()
            .map(|(is, &s)| Counted {
                itemset: is.clone(),
                support: s,
            })
            .collect();
        v.sort();
        v
    }

    /// Iterate in arbitrary (hash) order; use [`FrequentSet::sorted`] when
    /// determinism matters.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, u32)> {
        self.map.iter().map(|(is, &s)| (is, s))
    }

    /// Check downward closure: every non-empty subset of every member is
    /// itself a member with support ≥ the member's. Returns the first
    /// violation, if any. (Test oracle for the Apriori property.)
    pub fn closure_violation(&self) -> Option<(Itemset, Itemset)> {
        for (is, &sup) in &self.map {
            if is.len() <= 1 {
                continue;
            }
            for sub in is.one_smaller_subsets() {
                match self.map.get(&sub) {
                    Some(&ssup) if ssup >= sup => {}
                    _ => return Some((is.clone(), sub)),
                }
            }
        }
        None
    }
}

impl PartialEq for FrequentSet {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl Eq for FrequentSet {}

impl FromIterator<(Itemset, u32)> for FrequentSet {
    fn from_iter<I: IntoIterator<Item = (Itemset, u32)>>(iter: I) -> Self {
        let mut fs = FrequentSet::new();
        for (is, s) in iter {
            fs.insert(is, s);
        }
        fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    fn sample() -> FrequentSet {
        [
            (iset(&[1]), 10),
            (iset(&[2]), 8),
            (iset(&[1, 2]), 5),
            (iset(&[3]), 6),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn insert_lookup() {
        let fs = sample();
        assert_eq!(fs.support_of(&iset(&[1, 2])), Some(5));
        assert_eq!(fs.support_of(&iset(&[1, 3])), None);
        assert!(fs.contains(&iset(&[3])));
        assert_eq!(fs.len(), 4);
        assert!(!fs.is_empty());
    }

    #[test]
    fn reinsert_same_support_is_idempotent() {
        let mut fs = sample();
        fs.insert(iset(&[1]), 10);
        assert_eq!(fs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "conflicting supports")]
    fn reinsert_different_support_panics() {
        let mut fs = sample();
        fs.insert(iset(&[1]), 11);
    }

    #[test]
    fn counts_by_size_is_figure6_series() {
        let fs = sample();
        assert_eq!(fs.counts_by_size(), vec![3, 1]);
        assert_eq!(FrequentSet::new().counts_by_size(), Vec::<usize>::new());
        assert_eq!(fs.max_size(), 2);
    }

    #[test]
    fn of_size_and_sorted_are_deterministic() {
        let fs = sample();
        let ones = fs.of_size(1);
        assert_eq!(
            ones.iter().map(|c| c.itemset.clone()).collect::<Vec<_>>(),
            vec![iset(&[1]), iset(&[2]), iset(&[3])]
        );
        let all = fs.sorted();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_combines() {
        let mut a = sample();
        let b: FrequentSet = [(iset(&[4]), 3)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.support_of(&iset(&[4])), Some(3));
    }

    #[test]
    fn closure_violation_detects_missing_subset() {
        let fs = sample();
        assert_eq!(fs.closure_violation(), None);
        let bad: FrequentSet = [(iset(&[1, 2]), 5), (iset(&[1]), 10)].into_iter().collect();
        let (sup, sub) = bad.closure_violation().expect("violation");
        assert_eq!(sup, iset(&[1, 2]));
        assert_eq!(sub, iset(&[2]));
    }

    #[test]
    fn closure_violation_detects_support_inversion() {
        // subset with *smaller* support than superset is impossible
        let bad: FrequentSet = [(iset(&[1]), 3), (iset(&[2]), 9), (iset(&[1, 2]), 5)]
            .into_iter()
            .collect();
        assert!(bad.closure_violation().is_some());
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = sample();
        let b: FrequentSet = [
            (iset(&[3]), 6),
            (iset(&[1, 2]), 5),
            (iset(&[2]), 8),
            (iset(&[1]), 10),
        ]
        .into_iter()
        .collect();
        assert_eq!(a, b);
    }
}
