//! Minimum-support conversion between fractions and absolute counts.
//!
//! The paper specifies support as a percentage of `|D|` ("All the
//! experiments were performed with a minimum support value of 0.1%"). The
//! algorithms compare tid-list cardinalities against an **absolute** count,
//! so the conversion — and its rounding rule — must be pinned down once:
//! an itemset is frequent iff `count ≥ ceil(fraction · |D|)`, with a floor
//! of 1 so that an empty database yields no frequent itemsets.

/// A minimum-support threshold, stored as a fraction of the database size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinSupport {
    fraction: f64,
}

impl MinSupport {
    /// From a fraction in `\[0, 1\]` (e.g. `0.001` for the paper's 0.1 %).
    ///
    /// # Panics
    /// Panics if the fraction is not a finite value in `\[0, 1\]`.
    pub fn from_fraction(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "support fraction must be in [0,1], got {fraction}"
        );
        MinSupport { fraction }
    }

    /// From a percentage (e.g. `0.1` for the paper's 0.1 %).
    pub fn from_percent(pct: f64) -> Self {
        Self::from_fraction(pct / 100.0)
    }

    /// The stored fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Absolute count threshold for a database of `num_transactions`:
    /// `max(1, ceil(fraction · |D|))`.
    ///
    /// An itemset is frequent iff its support count `≥` this value.
    pub fn count_threshold(&self, num_transactions: usize) -> u32 {
        let raw = (self.fraction * num_transactions as f64).ceil();
        // Guard against f64 artifacts like 3.0000000000000004 → already
        // handled by ceil on the product; clamp to at least 1.
        (raw as u64).max(1).min(u32::MAX as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setting_on_paper_sizes() {
        let s = MinSupport::from_percent(0.1);
        assert_eq!(s.count_threshold(800_000), 800);
        assert_eq!(s.count_threshold(1_600_000), 1600);
        assert_eq!(s.count_threshold(6_400_000), 6400);
    }

    #[test]
    fn ceil_rounding() {
        let s = MinSupport::from_fraction(0.001);
        assert_eq!(s.count_threshold(1001), 2, "0.001*1001 = 1.001 → ceil 2");
        assert_eq!(s.count_threshold(1000), 1);
        assert_eq!(s.count_threshold(999), 1);
    }

    #[test]
    fn floor_of_one() {
        let s = MinSupport::from_fraction(0.0);
        assert_eq!(s.count_threshold(0), 1);
        assert_eq!(s.count_threshold(10), 1);
    }

    #[test]
    fn full_support() {
        let s = MinSupport::from_fraction(1.0);
        assert_eq!(s.count_threshold(12345), 12345);
    }

    #[test]
    fn percent_and_fraction_agree() {
        assert_eq!(
            MinSupport::from_percent(25.0).count_threshold(400),
            MinSupport::from_fraction(0.25).count_threshold(400)
        );
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_out_of_range() {
        MinSupport::from_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn rejects_nan() {
        MinSupport::from_fraction(f64::NAN);
    }
}
