//! Upper-triangular 2-itemset count matrix.
//!
//! §5.1 of the paper: *"For computing 2-itemsets we use an upper triangular
//! array, local to each processor, indexed by the items in the database in
//! both dimensions."* — the initialization phase counts every pair in one
//! horizontal scan, then a sum-reduction produces global `L2`.
//!
//! The matrix stores counts for unordered pairs `{i, j}` with `i < j` over
//! `n` items in a flat `Vec<u32>` of length `C(n, 2)`.

use crate::item::ItemId;

/// Flat upper-triangular pair-count matrix over `n` items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriangleMatrix {
    n: usize,
    counts: Vec<u32>,
}

impl TriangleMatrix {
    /// Zeroed matrix over `n` items. Allocates `C(n,2)` u32 counters — the
    /// "very small space overhead" the paper trades for the saved database
    /// scan (footnote 1 of §5.1).
    pub fn new(n: usize) -> Self {
        let cells = n * n.saturating_sub(1) / 2;
        TriangleMatrix {
            n,
            counts: vec![0u32; cells],
        }
    }

    /// Rebuild a matrix from its flat cell vector, e.g. after a network
    /// transfer of the per-processor partial counts.
    ///
    /// # Panics
    /// Panics if `counts.len() != C(n, 2)`.
    pub fn from_raw(n: usize, counts: Vec<u32>) -> Self {
        let cells = n * n.saturating_sub(1) / 2;
        assert_eq!(counts.len(), cells, "triangle shape mismatch");
        TriangleMatrix { n, counts }
    }

    /// Number of items the matrix covers.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.n
    }

    /// Flat index of the unordered pair `(i, j)` with `i < j`.
    ///
    /// Row `i` starts after the `i` shorter rows above it:
    /// `offset(i) = i·n − i·(i+1)/2 − i` … simplified below. The formula is
    /// checked exhaustively in tests against a naive enumeration.
    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < j && j < self.n,
            "pair ({i},{j}) out of range n={}",
            self.n
        );
        // Row i holds pairs (i, i+1..n): length n-1-i. Rows 0..i hold
        // sum_{r<i} (n-1-r) = i*(n-1) - i*(i-1)/2 cells.
        i * (self.n - 1) - i * (i.saturating_sub(1)) / 2 + (j - i - 1)
    }

    /// Increment the count of pair `{a, b}` (any order, `a != b`).
    #[inline]
    pub fn increment(&mut self, a: ItemId, b: ItemId) {
        let (i, j) = order(a, b);
        let idx = self.index(i, j);
        self.counts[idx] += 1;
    }

    /// Add `delta` to the count of pair `{a, b}`.
    #[inline]
    pub fn add(&mut self, a: ItemId, b: ItemId, delta: u32) {
        let (i, j) = order(a, b);
        let idx = self.index(i, j);
        self.counts[idx] += delta;
    }

    /// Current count of pair `{a, b}`.
    #[inline]
    pub fn get(&self, a: ItemId, b: ItemId) -> u32 {
        let (i, j) = order(a, b);
        self.counts[self.index(i, j)]
    }

    /// Count all item pairs of one (sorted, duplicate-free) transaction.
    ///
    /// This is the §4.2 horizontal-layout L2 pass: `C(|t|, 2)` increments
    /// per transaction.
    pub fn count_transaction(&mut self, txn: &[ItemId]) {
        debug_assert!(txn.windows(2).all(|w| w[0] < w[1]));
        for (p, &a) in txn.iter().enumerate() {
            for &b in &txn[p + 1..] {
                self.increment(a, b);
            }
        }
    }

    /// Element-wise sum with another matrix of identical shape — the
    /// sum-reduction that builds global counts from per-processor partials.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn merge_from(&mut self, other: &TriangleMatrix) {
        assert_eq!(self.n, other.n, "triangle shape mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
    }

    /// Iterate all pairs with a count `>= threshold`, ascending by pair.
    pub fn frequent_pairs(
        &self,
        threshold: u32,
    ) -> impl Iterator<Item = (ItemId, ItemId, u32)> + '_ {
        (0..self.n).flat_map(move |i| {
            (i + 1..self.n).filter_map(move |j| {
                let c = self.counts[self.index(i, j)];
                (c >= threshold).then_some((ItemId(i as u32), ItemId(j as u32), c))
            })
        })
    }

    /// Raw flat counts (for the cluster sum-reduction's byte accounting).
    pub fn raw(&self) -> &[u32] {
        &self.counts
    }

    /// Total number of cells, `C(n, 2)`.
    pub fn cells(&self) -> usize {
        self.counts.len()
    }
}

#[inline]
fn order(a: ItemId, b: ItemId) -> (usize, usize) {
    assert_ne!(a, b, "a pair must have two distinct items");
    if a < b {
        (a.index(), b.index())
    } else {
        (b.index(), a.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_formula_matches_naive_enumeration() {
        for n in 0..12 {
            let m = TriangleMatrix::new(n);
            let mut expect = 0usize;
            for i in 0..n {
                for j in i + 1..n {
                    assert_eq!(m.index(i, j), expect, "n={n} i={i} j={j}");
                    expect += 1;
                }
            }
            assert_eq!(m.cells(), expect);
        }
    }

    #[test]
    fn increment_get_symmetric() {
        let mut m = TriangleMatrix::new(5);
        m.increment(ItemId(3), ItemId(1));
        m.increment(ItemId(1), ItemId(3));
        assert_eq!(m.get(ItemId(1), ItemId(3)), 2);
        assert_eq!(m.get(ItemId(3), ItemId(1)), 2);
        assert_eq!(m.get(ItemId(0), ItemId(4)), 0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn diagonal_rejected() {
        let m = TriangleMatrix::new(5);
        m.get(ItemId(2), ItemId(2));
    }

    #[test]
    fn count_transaction_counts_all_pairs() {
        let mut m = TriangleMatrix::new(6);
        let txn: Vec<ItemId> = [0u32, 2, 5].map(ItemId).to_vec();
        m.count_transaction(&txn);
        assert_eq!(m.get(ItemId(0), ItemId(2)), 1);
        assert_eq!(m.get(ItemId(0), ItemId(5)), 1);
        assert_eq!(m.get(ItemId(2), ItemId(5)), 1);
        assert_eq!(m.get(ItemId(1), ItemId(2)), 0);
        // total increments = C(3,2) = 3
        assert_eq!(m.raw().iter().sum::<u32>(), 3);
    }

    #[test]
    fn merge_from_sums_partials() {
        let mut a = TriangleMatrix::new(4);
        let mut b = TriangleMatrix::new(4);
        a.add(ItemId(0), ItemId(1), 5);
        b.add(ItemId(0), ItemId(1), 7);
        b.add(ItemId(2), ItemId(3), 1);
        a.merge_from(&b);
        assert_eq!(a.get(ItemId(0), ItemId(1)), 12);
        assert_eq!(a.get(ItemId(2), ItemId(3)), 1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = TriangleMatrix::new(4);
        let b = TriangleMatrix::new(5);
        a.merge_from(&b);
    }

    #[test]
    fn frequent_pairs_filters_and_orders() {
        let mut m = TriangleMatrix::new(4);
        m.add(ItemId(0), ItemId(1), 3);
        m.add(ItemId(0), ItemId(3), 10);
        m.add(ItemId(2), ItemId(3), 5);
        let freq: Vec<_> = m.frequent_pairs(5).collect();
        assert_eq!(
            freq,
            vec![(ItemId(0), ItemId(3), 10), (ItemId(2), ItemId(3), 5)]
        );
        assert_eq!(m.frequent_pairs(11).count(), 0);
        assert_eq!(m.frequent_pairs(1).count(), 3);
    }

    #[test]
    fn from_raw_round_trips() {
        let mut m = TriangleMatrix::new(4);
        m.add(ItemId(1), ItemId(3), 9);
        let rebuilt = TriangleMatrix::from_raw(4, m.raw().to_vec());
        assert_eq!(rebuilt, m);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_raw_rejects_wrong_length() {
        TriangleMatrix::from_raw(4, vec![0; 5]);
    }

    #[test]
    fn zero_and_one_item_matrices() {
        let m0 = TriangleMatrix::new(0);
        assert_eq!(m0.cells(), 0);
        let m1 = TriangleMatrix::new(1);
        assert_eq!(m1.cells(), 0);
        assert_eq!(m1.frequent_pairs(0).count(), 0);
    }
}
