//! Fundamental types shared by every crate in the Eclat reproduction.
//!
//! This crate deliberately has **zero dependencies**: it defines the small,
//! hot vocabulary types — [`ItemId`], [`Tid`], [`Itemset`] — together with
//! the counting substrate every algorithm in the workspace shares:
//!
//! * [`TriangleMatrix`] — the upper-triangular 2-itemset count array the
//!   paper uses in Eclat's initialization phase (§5.1),
//! * [`hash`] — a fast deterministic multiplicative hasher (an `FxHash`
//!   workalike, written in-repo so we stay inside the offline crate set),
//! * [`OpMeter`] — cheap operation counters that feed the simulated-cluster
//!   cost model,
//! * [`MinSupport`] — the fraction ↔ absolute-count support conversion with
//!   explicit rounding semantics.

pub mod frequent;
pub mod hash;
pub mod item;
pub mod itemset;
pub mod json;
pub mod meter;
pub mod stats;
pub mod support;
pub mod triangle;

pub use frequent::{Counted, FrequentSet};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use item::{ItemId, Tid};
pub use itemset::{Itemset, KSubsets};
pub use meter::OpMeter;
pub use stats::{
    ClassStats, ClusterStats, KernelStats, LevelCounts, MiningStats, PhaseStats, ProcStats,
};
pub use support::MinSupport;
pub use triangle::TriangleMatrix;
