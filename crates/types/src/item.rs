//! Item and transaction identifiers.
//!
//! The paper's databases have at most a few thousand distinct items and a
//! few million transactions, so `u32` is ample for both. Newtypes keep the
//! two id spaces from being confused at compile time; both are `repr
//! (transparent)` so slices of them can be reinterpreted as raw `u32`
//! buffers by the binary storage layer.

use std::fmt;

/// Identifier of an item (an attribute of the universe `I` in §1.1).
///
/// Items are densely numbered `0..num_items`; itemsets are ordered by this
/// numbering, which stands in for the lexicographic item order the paper
/// assumes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct ItemId(pub u32);

/// Identifier of a transaction (the `TID` of §1.1).
///
/// Tids are densely numbered `0..num_transactions` in database order; the
/// block partitioning of §3 hands each processor a contiguous, monotonically
/// increasing tid range, which is what lets the transformation phase place
/// incoming partial tid-lists at precomputed offsets (§6.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Tid(pub u32);

impl ItemId {
    /// The raw index, widened for use as a slice index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Tid {
    /// The raw index, widened for use as a slice index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<u32> for Tid {
    #[inline]
    fn from(v: u32) -> Self {
        Tid(v)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Reinterpret a slice of [`ItemId`] as its underlying `u32`s.
///
/// Sound because `ItemId` is `#[repr(transparent)]` over `u32`.
#[inline]
pub fn items_as_u32(items: &[ItemId]) -> &[u32] {
    // SAFETY: ItemId is repr(transparent) over u32, so layout and
    // alignment are identical.
    unsafe { std::slice::from_raw_parts(items.as_ptr().cast::<u32>(), items.len()) }
}

/// Reinterpret a slice of [`Tid`] as its underlying `u32`s.
///
/// Sound because `Tid` is `#[repr(transparent)]` over `u32`.
#[inline]
pub fn tids_as_u32(tids: &[Tid]) -> &[u32] {
    // SAFETY: Tid is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(tids.as_ptr().cast::<u32>(), tids.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_ordering_follows_raw_value() {
        assert!(ItemId(3) < ItemId(7));
        assert!(Tid(0) < Tid(1));
        let mut v = vec![ItemId(5), ItemId(1), ItemId(3)];
        v.sort();
        assert_eq!(v, vec![ItemId(1), ItemId(3), ItemId(5)]);
    }

    #[test]
    fn display_and_debug_formats() {
        assert_eq!(format!("{}", ItemId(42)), "42");
        assert_eq!(format!("{:?}", ItemId(42)), "i42");
        assert_eq!(format!("{}", Tid(7)), "7");
        assert_eq!(format!("{:?}", Tid(7)), "t7");
    }

    #[test]
    fn transparent_reinterpretation_roundtrips() {
        let items = vec![ItemId(1), ItemId(2), ItemId(9)];
        assert_eq!(items_as_u32(&items), &[1, 2, 9]);
        let tids = vec![Tid(10), Tid(20)];
        assert_eq!(tids_as_u32(&tids), &[10, 20]);
        assert_eq!(items_as_u32(&[]), &[] as &[u32]);
    }

    #[test]
    fn index_widens() {
        assert_eq!(ItemId(u32::MAX).index(), u32::MAX as usize);
        assert_eq!(Tid(0).index(), 0);
    }

    #[test]
    fn from_u32_conversions() {
        let i: ItemId = 5u32.into();
        assert_eq!(i, ItemId(5));
        let t: Tid = 9u32.into();
        assert_eq!(t, Tid(9));
    }
}
