//! Sorted itemsets and the operations association mining performs on them.
//!
//! An [`Itemset`] is a set of items kept sorted ascending with no
//! duplicates — the invariant every algorithm in the paper relies on:
//! Apriori's join step assumes `L_{k-1}` is lexicographically sorted (§2),
//! and Eclat's equivalence classes are keyed by the common `k-2` prefix of
//! sorted itemsets (§4.1).

use crate::item::ItemId;
use std::fmt;

/// A sorted, duplicate-free set of items.
///
/// Ordering on `Itemset` is lexicographic over the sorted item sequence,
/// which matches the order the paper's candidate generation assumes.
///
/// ```
/// use mining_types::Itemset;
/// let ab = Itemset::of(&[0, 1]);
/// let ac = Itemset::of(&[0, 2]);
/// // the Apriori join: same k−1 prefix, ordered last items
/// assert_eq!(ab.join(&ac), Some(Itemset::of(&[0, 1, 2])));
/// assert_eq!(ac.join(&ab), None);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Itemset {
    items: Vec<ItemId>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset { items: Vec::new() }
    }

    /// A singleton `{item}`.
    pub fn single(item: ItemId) -> Self {
        Itemset { items: vec![item] }
    }

    /// A pair `{a, b}` (in either argument order; `a != b` required).
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn pair(a: ItemId, b: ItemId) -> Self {
        assert_ne!(a, b, "an itemset cannot contain a duplicate item");
        let items = if a < b { vec![a, b] } else { vec![b, a] };
        Itemset { items }
    }

    /// Build from an arbitrary iterator: sorts and deduplicates.
    pub fn from_unsorted<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        let mut items: Vec<ItemId> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        Itemset { items }
    }

    /// Build from a vector already sorted ascending with no duplicates.
    ///
    /// # Panics
    /// Panics (in debug and release) if the invariant does not hold; the
    /// mining kernels silently produce garbage on unsorted input, so this
    /// is always checked.
    pub fn from_sorted(items: Vec<ItemId>) -> Self {
        assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "itemset must be strictly ascending: {items:?}"
        );
        Itemset { items }
    }

    /// Build from raw `u32` item ids (convenience for tests and examples).
    pub fn of(raw: &[u32]) -> Self {
        Itemset::from_unsorted(raw.iter().copied().map(ItemId))
    }

    /// Number of items; the `k` of a *k-itemset*.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The sorted items.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// The last (largest) item, if any.
    #[inline]
    pub fn last(&self) -> Option<ItemId> {
        self.items.last().copied()
    }

    /// The first (smallest) item, if any.
    #[inline]
    pub fn first(&self) -> Option<ItemId> {
        self.items.first().copied()
    }

    /// Membership test (binary search; itemsets are tiny, but sorted).
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Is `self` a subset of the **sorted** transaction `txn`?
    ///
    /// Linear merge over the two sorted sequences.
    pub fn is_subset_of_sorted(&self, txn: &[ItemId]) -> bool {
        let mut it = txn.iter();
        'outer: for &needle in &self.items {
            for &t in it.by_ref() {
                match t.cmp(&needle) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Is `self` a subset of `other` (both sorted itemsets)?
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        self.is_subset_of_sorted(other.items())
    }

    /// The length-`n` prefix of the sorted item sequence.
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> &[ItemId] {
        &self.items[..n]
    }

    /// Do `self` and `other` share the same length-`n` prefix?
    ///
    /// This is the equivalence-class relation of §4.1: `a ≡ b` iff
    /// `a[1..k-1] = b[1..k-1]` (1-indexed in the paper; here the first
    /// `k-1` items of a `k`-itemset).
    pub fn shares_prefix(&self, other: &Itemset, n: usize) -> bool {
        self.items.len() >= n && other.items.len() >= n && self.prefix(n) == other.prefix(n)
    }

    /// Apriori join (§2): if `self` and `other` are `k`-itemsets agreeing
    /// on the first `k-1` items and `self.last() < other.last()`, return
    /// the `(k+1)`-itemset `self ∪ other`; otherwise `None`.
    pub fn join(&self, other: &Itemset) -> Option<Itemset> {
        let k = self.len();
        if k == 0 || other.len() != k {
            return None;
        }
        if self.items[..k - 1] != other.items[..k - 1] {
            return None;
        }
        let (a, b) = (self.items[k - 1], other.items[k - 1]);
        if a >= b {
            return None;
        }
        let mut items = Vec::with_capacity(k + 1);
        items.extend_from_slice(&self.items);
        items.push(b);
        debug_assert_eq!(items[k - 1], a);
        Some(Itemset { items })
    }

    /// Union with another itemset (general, not just the join special case).
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut items = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    items.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    items.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    items.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        items.extend_from_slice(&self.items[i..]);
        items.extend_from_slice(&other.items[j..]);
        Itemset { items }
    }

    /// The itemset with `item` appended; `item` must exceed `self.last()`.
    ///
    /// # Panics
    /// Panics if the ordering invariant would be violated.
    pub fn extend_with(&self, item: ItemId) -> Itemset {
        if let Some(last) = self.last() {
            assert!(item > last, "extend_with must preserve ascending order");
        }
        let mut items = Vec::with_capacity(self.len() + 1);
        items.extend_from_slice(&self.items);
        items.push(item);
        Itemset { items }
    }

    /// The itemset with the item at `idx` removed — one of the `(k-1)`-
    /// subsets used by Apriori's pruning step.
    pub fn without_index(&self, idx: usize) -> Itemset {
        let mut items = Vec::with_capacity(self.len() - 1);
        items.extend_from_slice(&self.items[..idx]);
        items.extend_from_slice(&self.items[idx + 1..]);
        Itemset { items }
    }

    /// Set difference `self − other` (both sorted).
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let mut items = Vec::with_capacity(self.len());
        let mut j = 0;
        for &x in &self.items {
            while j < other.items.len() && other.items[j] < x {
                j += 1;
            }
            if j >= other.items.len() || other.items[j] != x {
                items.push(x);
            }
        }
        Itemset { items }
    }

    /// Iterate all `(k-1)`-subsets (each drops one item), in the order that
    /// drops the last item first — so the two subsets whose tid-lists Eclat
    /// intersects (drop last, drop second-to-last) come first.
    pub fn one_smaller_subsets(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.len()).rev().map(move |i| self.without_index(i))
    }

    /// Iterate all `k`-subsets of this itemset in lexicographic order.
    ///
    /// Used by the hash-tree support counting of Apriori (§2): "for each
    /// transaction in the database, all k-subsets of the transaction are
    /// generated in lexicographical order".
    pub fn k_subsets(&self, k: usize) -> KSubsets<'_> {
        KSubsets::new(&self.items, k)
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, it) in self.items.iter().enumerate() {
            if n > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", it.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Itemset::from_unsorted(iter)
    }
}

impl<'a> IntoIterator for &'a Itemset {
    type Item = ItemId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ItemId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

/// Lexicographic iterator over all `k`-subsets of a sorted item slice.
///
/// Classic combination enumeration: maintains `k` indices into the base
/// slice and advances the rightmost index that can still move.
pub struct KSubsets<'a> {
    base: &'a [ItemId],
    idx: Vec<usize>,
    done: bool,
}

impl<'a> KSubsets<'a> {
    fn new(base: &'a [ItemId], k: usize) -> Self {
        let done = k > base.len() || k == 0;
        KSubsets {
            base,
            idx: (0..k).collect(),
            done,
        }
    }

    /// Write the current subset into `out` (cleared first) without
    /// allocating; returns `false` when exhausted.
    pub fn next_into(&mut self, out: &mut Vec<ItemId>) -> bool {
        if self.done {
            return false;
        }
        out.clear();
        out.extend(self.idx.iter().map(|&i| self.base[i]));
        self.advance();
        true
    }

    fn advance(&mut self) {
        let k = self.idx.len();
        let n = self.base.len();
        // Find rightmost index that can be incremented.
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return;
            }
            i -= 1;
            if self.idx[i] < n - (k - i) {
                break;
            }
        }
        self.idx[i] += 1;
        for j in i + 1..k {
            self.idx[j] = self.idx[j - 1] + 1;
        }
    }
}

impl Iterator for KSubsets<'_> {
    type Item = Itemset;

    fn next(&mut self) -> Option<Itemset> {
        if self.done {
            return None;
        }
        let items: Vec<ItemId> = self.idx.iter().map(|&i| self.base[i]).collect();
        self.advance();
        Some(Itemset { items })
    }
}

/// `C(n, 2) = n·(n−1)/2` — the class weight of §5.2.1 ("we assign the
/// weight (s choose 2) to a class with s elements").
#[inline]
pub fn choose2(n: usize) -> u64 {
    (n as u64) * (n as u64).saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = Itemset::from_unsorted([3, 1, 2, 3, 1].map(ItemId));
        assert_eq!(s, iset(&[1, 2, 3]));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_unsorted() {
        Itemset::from_sorted(vec![ItemId(2), ItemId(1)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_duplicates() {
        Itemset::from_sorted(vec![ItemId(1), ItemId(1)]);
    }

    #[test]
    fn pair_normalizes_order() {
        assert_eq!(Itemset::pair(ItemId(5), ItemId(2)), iset(&[2, 5]));
        assert_eq!(Itemset::pair(ItemId(2), ItemId(5)), iset(&[2, 5]));
    }

    #[test]
    #[should_panic]
    fn pair_rejects_equal_items() {
        Itemset::pair(ItemId(3), ItemId(3));
    }

    #[test]
    fn join_matches_paper_example() {
        // §2: L2 = {AB AC AD AE BC BD BE DE} with A=0 B=1 C=2 D=3 E=4
        // → C3 = {ABC ABD ABE ACD ACE ADE BCD BCE BDE}
        let l2 = [
            iset(&[0, 1]),
            iset(&[0, 2]),
            iset(&[0, 3]),
            iset(&[0, 4]),
            iset(&[1, 2]),
            iset(&[1, 3]),
            iset(&[1, 4]),
            iset(&[3, 4]),
        ];
        let mut c3 = Vec::new();
        for a in &l2 {
            for b in &l2 {
                if let Some(j) = a.join(b) {
                    c3.push(j);
                }
            }
        }
        c3.sort();
        let expect: Vec<Itemset> = [
            [0u32, 1, 2],
            [0, 1, 3],
            [0, 1, 4],
            [0, 2, 3],
            [0, 2, 4],
            [0, 3, 4],
            [1, 2, 3],
            [1, 2, 4],
            [1, 3, 4],
        ]
        .iter()
        .map(|r| iset(r))
        .collect();
        assert_eq!(c3, expect);
    }

    #[test]
    fn join_rejects_mismatched_prefix_and_order() {
        assert_eq!(iset(&[1, 2]).join(&iset(&[3, 4])), None);
        assert_eq!(
            iset(&[1, 3]).join(&iset(&[1, 2])),
            None,
            "requires a.last < b.last"
        );
        assert_eq!(iset(&[1, 2]).join(&iset(&[1, 2])), None);
        assert_eq!(iset(&[1]).join(&iset(&[2])), Some(iset(&[1, 2])));
        assert_eq!(Itemset::empty().join(&Itemset::empty()), None);
        assert_eq!(
            iset(&[1, 2]).join(&iset(&[1, 2, 3])),
            None,
            "length mismatch"
        );
    }

    #[test]
    fn subset_of_sorted_transaction() {
        let t: Vec<ItemId> = [1u32, 3, 5, 7, 9].map(ItemId).to_vec();
        assert!(iset(&[3, 7]).is_subset_of_sorted(&t));
        assert!(iset(&[1, 9]).is_subset_of_sorted(&t));
        assert!(!iset(&[2]).is_subset_of_sorted(&t));
        assert!(!iset(&[7, 10]).is_subset_of_sorted(&t));
        assert!(Itemset::empty().is_subset_of_sorted(&t));
        assert!(Itemset::empty().is_subset_of_sorted(&[]));
        assert!(!iset(&[1]).is_subset_of_sorted(&[]));
    }

    #[test]
    fn prefix_sharing_is_the_equivalence_relation() {
        let a = iset(&[0, 1, 2]);
        let b = iset(&[0, 1, 4]);
        let c = iset(&[0, 2, 3]);
        assert!(a.shares_prefix(&b, 2));
        assert!(!a.shares_prefix(&c, 2));
        assert!(a.shares_prefix(&c, 1));
        assert!(a.shares_prefix(&b, 0));
    }

    #[test]
    fn union_and_difference() {
        let a = iset(&[1, 3, 5]);
        let b = iset(&[2, 3, 6]);
        assert_eq!(a.union(&b), iset(&[1, 2, 3, 5, 6]));
        assert_eq!(a.difference(&b), iset(&[1, 5]));
        assert_eq!(b.difference(&a), iset(&[2, 6]));
        assert_eq!(a.difference(&a), Itemset::empty());
        assert_eq!(a.union(&Itemset::empty()), a);
    }

    #[test]
    fn k_subsets_lexicographic() {
        let s = iset(&[1, 2, 3, 4]);
        let subs: Vec<Itemset> = s.k_subsets(2).collect();
        let expect: Vec<Itemset> = [[1u32, 2], [1, 3], [1, 4], [2, 3], [2, 4], [3, 4]]
            .iter()
            .map(|r| iset(r))
            .collect();
        assert_eq!(subs, expect);
    }

    #[test]
    fn k_subsets_edge_cases() {
        let s = iset(&[1, 2, 3]);
        assert_eq!(s.k_subsets(3).count(), 1);
        assert_eq!(s.k_subsets(4).count(), 0);
        assert_eq!(s.k_subsets(0).count(), 0);
        assert_eq!(Itemset::empty().k_subsets(1).count(), 0);
    }

    #[test]
    fn k_subsets_next_into_matches_iterator() {
        let s = iset(&[2, 4, 6, 8, 10]);
        let via_iter: Vec<Itemset> = s.k_subsets(3).collect();
        let mut via_into = Vec::new();
        let mut ks = s.k_subsets(3);
        let mut buf = Vec::new();
        while ks.next_into(&mut buf) {
            via_into.push(Itemset::from_sorted(buf.clone()));
        }
        assert_eq!(via_iter, via_into);
    }

    #[test]
    fn one_smaller_subsets_order() {
        let s = iset(&[1, 2, 3]);
        let subs: Vec<Itemset> = s.one_smaller_subsets().collect();
        // drop-last first: {1,2}, then {1,3}, then {2,3}
        assert_eq!(subs, vec![iset(&[1, 2]), iset(&[1, 3]), iset(&[2, 3])]);
    }

    #[test]
    fn extend_with_and_without_index() {
        let s = iset(&[1, 3]);
        assert_eq!(s.extend_with(ItemId(7)), iset(&[1, 3, 7]));
        assert_eq!(s.without_index(0), iset(&[3]));
        assert_eq!(s.without_index(1), iset(&[1]));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn extend_with_rejects_out_of_order() {
        iset(&[1, 3]).extend_with(ItemId(2));
    }

    #[test]
    fn choose2_values() {
        assert_eq!(choose2(0), 0);
        assert_eq!(choose2(1), 0);
        assert_eq!(choose2(2), 1);
        assert_eq!(choose2(5), 10);
        assert_eq!(choose2(1000), 499_500);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![iset(&[2]), iset(&[1, 9]), iset(&[1, 2]), iset(&[1])];
        v.sort();
        assert_eq!(
            v,
            vec![iset(&[1]), iset(&[1, 2]), iset(&[1, 9]), iset(&[2])]
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", iset(&[1, 2, 3])), "{1 2 3}");
        assert_eq!(format!("{}", Itemset::empty()), "{}");
    }
}
