//! Count Distribution / CCPD (§3.1) on the simulated cluster.
//!
//! *"Each processor generates the partial supports of the candidates from
//! its local database partition. This is followed by a sum-reduction to
//! obtain the global counts. … This simple algorithm minimizes
//! communication since only the counts are exchanged among the
//! processors."* — and pays for it with one full local-partition scan
//! plus one barrier **per iteration**, the cost structure Eclat removes.

use apriori::gen::generate_candidates;
use apriori::hash_tree::HashTree;
use dbstore::{BlockPartition, HorizontalDb};
use memchannel::collective::{sum_reduce, BarrierSeq};
use memchannel::{ClusterConfig, CostModel, Timeline, TraceRecorder};
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport, OpMeter, TriangleMatrix};

/// Tuning knobs for the Count Distribution baseline.
#[derive(Clone, Debug)]
pub struct CountDistConfig {
    /// Hash-tree fanout.
    pub fanout: usize,
    /// Hash-tree leaf split threshold.
    pub leaf_threshold: usize,
    /// Count `C2` with the triangular array (a CCPD-style optimization);
    /// `false` is the plain hash-tree Apriori the paper describes.
    pub triangle_l2: bool,
}

impl Default for CountDistConfig {
    fn default() -> Self {
        CountDistConfig {
            fanout: apriori::hash_tree::DEFAULT_FANOUT,
            leaf_threshold: apriori::hash_tree::DEFAULT_LEAF_THRESHOLD,
            triangle_l2: false,
        }
    }
}

/// Result of a Count Distribution run.
#[derive(Clone, Debug)]
pub struct CdReport {
    /// The mined frequent itemsets (identical to sequential Apriori's).
    pub frequent: FrequentSet,
    /// The replayed virtual timeline.
    pub timeline: Timeline,
    /// Number of iterations (= database scans = barriers, ± 1).
    pub iterations: usize,
}

impl CdReport {
    /// Total virtual execution time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.timeline.total_secs()
    }
}

/// Approximate metered cost of building the candidate hash tree: one
/// probe per level per candidate.
fn meter_tree_build(meter: &mut OpMeter, candidates: usize, depth: usize) {
    meter.hash_probe += candidates as u64 * (depth as u64 + 1);
}

static ITER_PHASES: [&str; 24] = [
    "iter1", "iter2", "iter3", "iter4", "iter5", "iter6", "iter7", "iter8", "iter9", "iter10",
    "iter11", "iter12", "iter13", "iter14", "iter15", "iter16", "iter17", "iter18", "iter19",
    "iter20", "iter21", "iter22", "iter23", "iter24+",
];

/// Static per-iteration phase label (`iter1`, `iter2`, …; saturating).
pub fn phase_label(k: usize) -> &'static str {
    ITER_PHASES[(k - 1).min(ITER_PHASES.len() - 1)]
}

/// Run Count Distribution on the simulated cluster.
pub fn mine_count_dist(
    db: &HorizontalDb,
    minsup: MinSupport,
    cluster: &ClusterConfig,
    cost: &CostModel,
    cfg: &CountDistConfig,
) -> CdReport {
    let t = cluster.total();
    let n = db.num_transactions();
    let threshold = minsup.count_threshold(n);
    let partition = BlockPartition::equal_blocks(n, t);
    let mut recorders: Vec<TraceRecorder> = (0..t)
        .map(|p| TraceRecorder::new(p, cost.clone()))
        .collect();
    let mut barriers = BarrierSeq::new();
    let mut result = FrequentSet::new();

    // ---- Iteration 1: count single items.
    let mut item_counts = vec![0u32; db.num_items() as usize];
    for (p, rec) in recorders.iter_mut().enumerate() {
        rec.phase(phase_label(1));
        let block = partition.block(p);
        rec.disk_read(db.byte_size_range(block.clone()));
        let mut meter = OpMeter::new();
        for (_tid, items) in db.iter_range(block) {
            meter.record += 1;
            for &it in items {
                item_counts[it.index()] += 1;
                meter.record += 1;
            }
        }
        rec.compute(&meter);
    }
    let count_bytes = (db.num_items() as u64) * 4;
    sum_reduce(
        &mut recorders,
        &vec![count_bytes; t],
        count_bytes,
        &mut barriers,
    );

    let mut l_prev: Vec<Itemset> = Vec::new();
    for (i, &c) in item_counts.iter().enumerate() {
        if c >= threshold {
            let is = Itemset::single(ItemId(i as u32));
            result.insert(is.clone(), c);
            l_prev.push(is);
        }
    }

    let mut k = 2usize;
    while !l_prev.is_empty() {
        let phase = phase_label(k);
        let mut l_cur: Vec<(Itemset, u32)> = Vec::new();

        if k == 2 && cfg.triangle_l2 {
            // CCPD-style triangular counting for C2.
            let frequent_item: Vec<bool> = item_counts.iter().map(|&c| c >= threshold).collect();
            let mut tri = TriangleMatrix::new(db.num_items() as usize);
            for (p, rec) in recorders.iter_mut().enumerate() {
                rec.phase(phase);
                let block = partition.block(p);
                rec.disk_read(db.byte_size_range(block.clone()));
                let mut meter = OpMeter::new();
                let mut scratch: Vec<ItemId> = Vec::new();
                for (_tid, items) in db.iter_range(block) {
                    meter.record += 1;
                    scratch.clear();
                    scratch.extend(items.iter().copied().filter(|i| frequent_item[i.index()]));
                    meter.pair_incr += (scratch.len() * scratch.len().saturating_sub(1) / 2) as u64;
                    tri.count_transaction(&scratch);
                }
                rec.compute(&meter);
            }
            let tri_bytes = (tri.cells() as u64) * 4;
            sum_reduce(
                &mut recorders,
                &vec![tri_bytes; t],
                tri_bytes,
                &mut barriers,
            );
            l_cur = tri
                .frequent_pairs(threshold)
                .map(|(a, b, c)| (Itemset::pair(a, b), c))
                .collect();
        } else {
            // Candidate generation happens redundantly on every processor
            // ("All processors generate the entire candidate hash tree
            // from L_{k-1}"): generate once, charge everyone.
            let mut gen_meter = OpMeter::new();
            let candidates = generate_candidates(&l_prev, &mut gen_meter);
            if !candidates.is_empty() {
                let mut tree = HashTree::with_params(k, cfg.fanout, cfg.leaf_threshold);
                let num_candidates = candidates.len();
                for c in candidates {
                    tree.insert(c);
                }
                let depth = tree.depth();
                for (p, rec) in recorders.iter_mut().enumerate() {
                    rec.phase(phase);
                    let mut meter = gen_meter;
                    meter_tree_build(&mut meter, num_candidates, depth);
                    let block = partition.block(p);
                    rec.disk_read(db.byte_size_range(block.clone()));
                    for (_tid, items) in db.iter_range(block) {
                        meter.record += 1;
                        tree.count_transaction(items, &mut meter);
                    }
                    rec.compute(&meter);
                }
                // Only the counts are exchanged (one u32 per candidate).
                let bytes = (num_candidates as u64) * 4;
                sum_reduce(&mut recorders, &vec![bytes; t], bytes, &mut barriers);
                l_cur = tree.frequent(threshold);
            }
        }

        for (is, c) in &l_cur {
            result.insert(is.clone(), *c);
        }
        l_prev = l_cur.into_iter().map(|(is, _)| is).collect();
        k += 1;
    }

    let traces: Vec<_> = recorders.into_iter().map(|r| r.finish()).collect();
    let timeline = memchannel::des::replay(cluster, cost, &traces);
    CdReport {
        frequent: result,
        timeline,
        iterations: k - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apriori::reference::random_db;

    fn cost() -> CostModel {
        CostModel::dec_alpha_1997()
    }

    #[test]
    fn matches_sequential_apriori_on_every_topology() {
        let db = random_db(12, 250, 14, 6);
        let minsup = MinSupport::from_percent(5.0);
        let expect = apriori::mine(&db, minsup);
        for (h, p) in [(1, 1), (2, 1), (2, 2), (1, 4)] {
            let report = mine_count_dist(
                &db,
                minsup,
                &ClusterConfig::new(h, p),
                &cost(),
                &CountDistConfig::default(),
            );
            assert_eq!(report.frequent, expect, "H={h} P={p}");
        }
    }

    #[test]
    fn triangle_l2_option_agrees() {
        let db = random_db(3, 200, 12, 6);
        let minsup = MinSupport::from_percent(6.0);
        let a = mine_count_dist(
            &db,
            minsup,
            &ClusterConfig::new(2, 1),
            &cost(),
            &CountDistConfig::default(),
        );
        let b = mine_count_dist(
            &db,
            minsup,
            &ClusterConfig::new(2, 1),
            &cost(),
            &CountDistConfig {
                triangle_l2: true,
                ..Default::default()
            },
        );
        assert_eq!(a.frequent, b.frequent);
    }

    #[test]
    fn scans_database_once_per_iteration() {
        let db = random_db(5, 300, 12, 6);
        let minsup = MinSupport::from_percent(4.0);
        let report = mine_count_dist(
            &db,
            minsup,
            &ClusterConfig::new(2, 1),
            &cost(),
            &CountDistConfig::default(),
        );
        assert!(report.iterations >= 3, "got {}", report.iterations);
        // Disk time must be ≈ iterations × (block scan); with contention
        // it can only be more. Lower-bound check:
        let block_bytes = db.byte_size() / 2;
        let per_scan = cost().disk_seek_ns + block_bytes as f64 / cost().disk_bw * 1e9;
        let disk_ns = report.timeline.per_proc[0].disk_ns;
        // The final iteration may generate no candidates and skip its
        // scan, so allow one missing scan.
        assert!(
            disk_ns >= per_scan * (report.iterations as f64 - 1.5),
            "disk {disk_ns} vs {} scans of {per_scan}",
            report.iterations
        );
    }

    #[test]
    fn eclat_beats_count_distribution() {
        // The paper's headline claim, at toy scale: same database, same
        // support, same cluster — Eclat's virtual time is substantially
        // smaller.
        let db = random_db(21, 3000, 15, 6);
        let minsup = MinSupport::from_percent(3.0);
        let topo = ClusterConfig::new(4, 1);
        let cd = mine_count_dist(&db, minsup, &topo, &cost(), &CountDistConfig::default());
        let ec = eclat::cluster::mine_cluster(
            &db,
            minsup,
            &topo,
            &cost(),
            &eclat::EclatConfig::default(),
        );
        // identical answers (Eclat skips singletons)
        let cd_no_singles: FrequentSet = cd
            .frequent
            .iter()
            .filter(|(is, _)| is.len() >= 2)
            .map(|(is, s)| (is.clone(), s))
            .collect();
        assert_eq!(cd_no_singles, ec.frequent);
        // At this toy scale fixed costs (seeks, barriers) still blunt the
        // gap; the full factor (5–70x) shows up at Table 2 scale in the
        // repro harness.
        assert!(
            ec.total_secs() * 1.5 < cd.total_secs(),
            "Eclat {}s vs CD {}s",
            ec.total_secs(),
            cd.total_secs()
        );
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        let report = mine_count_dist(
            &db,
            MinSupport::from_percent(1.0),
            &ClusterConfig::new(2, 1),
            &cost(),
            &CountDistConfig::default(),
        );
        assert!(report.frequent.is_empty());
    }
}
