//! CCPD on actual shared memory — the paper's own prior system \[16\],
//! *"Parallel data mining for association rules on shared-memory
//! multiprocessors"*, which the SPAA'97 paper ported to the cluster as
//! its Count Distribution baseline (§3).
//!
//! *"The candidate itemsets are generated in parallel and are stored in a
//! hash structure which is shared among all the processors. Each
//! processor then scans its logical partition of the database and
//! atomically updates the counts of candidates in the shared hash tree.
//! There is no need to perform a sum-reduction to obtain global counts,
//! but there is a barrier synchronization at the end of each iteration."*
//!
//! Here the shared hash tree is a real shared [`HashTree`] (its counts
//! are relaxed atomics), the processors are rayon tasks over logical
//! partition blocks, and the per-iteration barrier is the implicit join
//! of the parallel iterator. This is the runnable shared-memory baseline
//! a downstream user can race against `eclat::parallel` on a multicore
//! machine.

use apriori::gen::generate_candidates;
use apriori::hash_tree::HashTree;
use dbstore::{BlockPartition, HorizontalDb};
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport, OpMeter};
use rayon::prelude::*;

/// Configuration for shared-memory CCPD.
#[derive(Clone, Debug)]
pub struct CcpdShmConfig {
    /// Hash-tree fanout.
    pub fanout: usize,
    /// Hash-tree leaf split threshold.
    pub leaf_threshold: usize,
    /// Number of logical partitions (defaults to the rayon thread count).
    pub partitions: Option<usize>,
}

impl Default for CcpdShmConfig {
    fn default() -> Self {
        CcpdShmConfig {
            fanout: apriori::hash_tree::DEFAULT_FANOUT,
            leaf_threshold: apriori::hash_tree::DEFAULT_LEAF_THRESHOLD,
            partitions: None,
        }
    }
}

/// Mine all frequent itemsets with shared-memory CCPD. Returns the same
/// result as sequential Apriori, computed with concurrent atomic counting
/// against one shared candidate tree.
pub fn mine_ccpd_shm(db: &HorizontalDb, minsup: MinSupport, cfg: &CcpdShmConfig) -> FrequentSet {
    let threshold = minsup.count_threshold(db.num_transactions());
    let parts = cfg
        .partitions
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);
    let partition = BlockPartition::equal_blocks(db.num_transactions(), parts);
    let blocks: Vec<std::ops::Range<usize>> = partition.iter().map(|(_, r)| r).collect();
    let mut result = FrequentSet::new();

    // Iteration 1: per-block item counts merged by reduction.
    let item_counts: Vec<u32> = blocks
        .par_iter()
        .map(|r| {
            let mut counts = vec![0u32; db.num_items() as usize];
            for (_tid, items) in db.iter_range(r.clone()) {
                for &it in items {
                    counts[it.index()] += 1;
                }
            }
            counts
        })
        .reduce(
            || vec![0u32; db.num_items() as usize],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );

    let mut l_prev: Vec<Itemset> = Vec::new();
    for (i, &c) in item_counts.iter().enumerate() {
        if c >= threshold {
            let is = Itemset::single(ItemId(i as u32));
            result.insert(is.clone(), c);
            l_prev.push(is);
        }
    }

    let mut k = 2usize;
    while !l_prev.is_empty() {
        let mut gen_meter = OpMeter::new();
        let candidates = generate_candidates(&l_prev, &mut gen_meter);
        let mut l_cur: Vec<(Itemset, u32)> = Vec::new();
        if !candidates.is_empty() {
            let mut tree = HashTree::with_params(k, cfg.fanout, cfg.leaf_threshold);
            for c in candidates {
                tree.insert(c);
            }
            let tree = &tree; // shared immutably; counts are atomic
            blocks.par_iter().for_each(|r| {
                let mut meter = OpMeter::new();
                for (_tid, items) in db.iter_range(r.clone()) {
                    tree.count_transaction(items, &mut meter);
                }
            });
            // implicit barrier: par_iter joined; select L_k
            l_cur = tree.frequent(threshold);
        }
        for (is, c) in &l_cur {
            result.insert(is.clone(), *c);
        }
        l_prev = l_cur.into_iter().map(|(is, _)| is).collect();
        k += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use apriori::reference::random_db;
    use questgen::{QuestGenerator, QuestParams};

    #[test]
    fn matches_sequential_apriori() {
        for seed in [1u64, 4] {
            let db = random_db(seed, 300, 14, 6);
            for pct in [4.0, 8.0] {
                let minsup = MinSupport::from_percent(pct);
                let shm = mine_ccpd_shm(&db, minsup, &CcpdShmConfig::default());
                let seq = apriori::mine(&db, minsup);
                assert_eq!(shm, seq, "seed {seed} pct {pct}");
            }
        }
    }

    #[test]
    fn partition_count_does_not_change_result() {
        let db = random_db(9, 400, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let reference = apriori::mine(&db, minsup);
        for parts in [1usize, 2, 3, 7, 16] {
            let cfg = CcpdShmConfig {
                partitions: Some(parts),
                ..Default::default()
            };
            assert_eq!(mine_ccpd_shm(&db, minsup, &cfg), reference, "parts {parts}");
        }
    }

    #[test]
    fn quest_data_agreement_with_eclat() {
        let db = HorizontalDb::from_transactions(
            QuestGenerator::new(QuestParams::tiny(2_000, 3)).generate_all(),
        );
        let minsup = MinSupport::from_percent(1.5);
        let shm = mine_ccpd_shm(&db, minsup, &CcpdShmConfig::default());
        let ec: FrequentSet = shm
            .iter()
            .filter(|(is, _)| is.len() >= 2)
            .map(|(is, s)| (is.clone(), s))
            .collect();
        assert_eq!(ec, eclat::sequential::mine(&db, minsup));
    }

    #[test]
    fn empty_database() {
        let db = HorizontalDb::of(&[]);
        assert!(mine_ccpd_shm(&db, MinSupport::from_percent(1.0), &Default::default()).is_empty());
    }
}
