//! Candidate Distribution (§3.2) on the simulated cluster.
//!
//! *"The Candidate Distribution algorithm uses a property of frequent
//! itemsets to partition the candidates during iteration l, so that each
//! processor can generate disjoint candidates independent of other
//! processors. At the same time the database is selectively replicated so
//! that a processor can generate global counts independently. … In their
//! experiments the repartitioning was done in the fourth pass."*
//!
//! Passes `2..l−1` run exactly as Count Distribution. At pass `l`:
//! `L_{l−1}` is split into equivalence classes, scheduled onto processors
//! (the same greedy machinery Eclat uses — the idea was *"independently
//! proposed in \[3, 16\]"*), each processor receives the **projection** of
//! every remote partition onto its candidate item universe, and from then
//! on iterates on its own: local candidate generation within its classes,
//! local scans of the (usually > |D|/P sized) replicated partition, and
//! an asynchronous broadcast of local frequent sets as best-effort
//! pruning information — no barriers, but no global pruning either.

use apriori::gen::{generate_candidates, join_step, partition_classes};
use apriori::hash_tree::HashTree;
use dbstore::{BlockPartition, HorizontalDb};
use memchannel::collective::{broadcast_all, lockstep_exchange, sum_reduce, BarrierSeq};
use memchannel::{ClusterConfig, CostModel, TraceRecorder};
use mining_types::{FrequentSet, FxHashSet, ItemId, Itemset, MinSupport, OpMeter};

use crate::count_dist::{phase_label, CdReport};

/// Configuration for Candidate Distribution.
#[derive(Clone, Debug)]
pub struct CandidateDistConfig {
    /// The pass `l` in which candidates are partitioned and the database
    /// is redistributed (the paper's experiments used 4).
    pub redistribution_pass: usize,
    /// Hash-tree fanout.
    pub fanout: usize,
    /// Hash-tree leaf split threshold.
    pub leaf_threshold: usize,
    /// Exchange buffer size for the redistribution.
    pub buffer_bytes: u64,
}

impl Default for CandidateDistConfig {
    fn default() -> Self {
        CandidateDistConfig {
            redistribution_pass: 4,
            fanout: apriori::hash_tree::DEFAULT_FANOUT,
            leaf_threshold: apriori::hash_tree::DEFAULT_LEAF_THRESHOLD,
            buffer_bytes: 2 * 1024 * 1024,
        }
    }
}

/// Run Candidate Distribution on the simulated cluster.
pub fn mine_candidate_dist(
    db: &HorizontalDb,
    minsup: MinSupport,
    cluster: &ClusterConfig,
    cost: &CostModel,
    cfg: &CandidateDistConfig,
) -> CdReport {
    assert!(
        cfg.redistribution_pass >= 2,
        "redistribution must happen at pass 2 or later"
    );
    let t = cluster.total();
    let n = db.num_transactions();
    let threshold = minsup.count_threshold(n);
    let partition = BlockPartition::equal_blocks(n, t);
    let mut recorders: Vec<TraceRecorder> = (0..t)
        .map(|p| TraceRecorder::new(p, cost.clone()))
        .collect();
    let mut barriers = BarrierSeq::new();
    let mut result = FrequentSet::new();

    // ---- Iteration 1 (as Count Distribution).
    let mut item_counts = vec![0u32; db.num_items() as usize];
    for (p, rec) in recorders.iter_mut().enumerate() {
        rec.phase(phase_label(1));
        let block = partition.block(p);
        rec.disk_read(db.byte_size_range(block.clone()));
        let mut meter = OpMeter::new();
        for (_tid, items) in db.iter_range(block) {
            meter.record += 1 + items.len() as u64;
        }
        for (_tid, items) in db.iter_range(partition.block(p)) {
            for &it in items {
                item_counts[it.index()] += 1;
            }
        }
        rec.compute(&meter);
    }
    let count_bytes = (db.num_items() as u64) * 4;
    sum_reduce(
        &mut recorders,
        &vec![count_bytes; t],
        count_bytes,
        &mut barriers,
    );

    let mut l_prev: Vec<Itemset> = Vec::new();
    for (i, &c) in item_counts.iter().enumerate() {
        if c >= threshold {
            let is = Itemset::single(ItemId(i as u32));
            result.insert(is.clone(), c);
            l_prev.push(is);
        }
    }

    // ---- Passes 2..l−1: Count Distribution.
    let mut k = 2usize;
    while !l_prev.is_empty() && k < cfg.redistribution_pass {
        let mut gen_meter = OpMeter::new();
        let candidates = generate_candidates(&l_prev, &mut gen_meter);
        let mut l_cur: Vec<(Itemset, u32)> = Vec::new();
        if !candidates.is_empty() {
            let mut tree = HashTree::with_params(k, cfg.fanout, cfg.leaf_threshold);
            let num_candidates = candidates.len();
            for c in candidates {
                tree.insert(c);
            }
            let depth = tree.depth() as u64;
            for (p, rec) in recorders.iter_mut().enumerate() {
                rec.phase(phase_label(k));
                let mut meter = gen_meter;
                meter.hash_probe += num_candidates as u64 * (depth + 1);
                let block = partition.block(p);
                rec.disk_read(db.byte_size_range(block.clone()));
                for (_tid, items) in db.iter_range(block) {
                    meter.record += 1;
                    tree.count_transaction(items, &mut meter);
                }
                rec.compute(&meter);
            }
            let bytes = (num_candidates as u64) * 4;
            sum_reduce(&mut recorders, &vec![bytes; t], bytes, &mut barriers);
            l_cur = tree.frequent(threshold);
        }
        for (is, c) in &l_cur {
            result.insert(is.clone(), *c);
        }
        l_prev = l_cur.into_iter().map(|(is, _)| is).collect();
        k += 1;
    }

    if l_prev.is_empty() {
        let traces: Vec<_> = recorders.into_iter().map(|r| r.finish()).collect();
        let timeline = memchannel::des::replay(cluster, cost, &traces);
        return CdReport {
            frequent: result,
            timeline,
            iterations: k - 1,
        };
    }

    // ---- Pass l: partition L_{l−1} into classes, schedule, replicate.
    let classes = partition_classes(&l_prev);
    // Greedy least-loaded by C(s,2) weights (the shared idea of [3, 16]).
    let mut order: Vec<usize> = (0..classes.len()).collect();
    let weight = |r: &std::ops::Range<usize>| mining_types::itemset::choose2(r.len());
    order.sort_by_key(|&c| std::cmp::Reverse(weight(&classes[c])));
    let mut owner = vec![0usize; classes.len()];
    let mut load = vec![0u64; t];
    for c in order {
        let p = (0..t).min_by_key(|&p| (load[p], p)).unwrap();
        owner[c] = p;
        load[p] += weight(&classes[c]);
    }

    // Item universe per processor = items of its assigned members.
    let mut universe: Vec<FxHashSet<ItemId>> = vec![FxHashSet::default(); t];
    for (ci, range) in classes.iter().enumerate() {
        for is in &l_prev[range.clone()] {
            universe[owner[ci]].extend(is.items().iter().copied());
        }
    }

    // Redistribution: every processor sends to q the projection of its
    // local block onto U_q. Compute exact byte counts and the replicated
    // databases.
    let mut replicated: Vec<Vec<Vec<ItemId>>> = vec![Vec::new(); t];
    let mut outgoing: Vec<Vec<u64>> = vec![vec![0u64; t]; t];
    for (p, rec) in recorders.iter_mut().enumerate() {
        rec.phase(phase_label(k));
        let block = partition.block(p);
        rec.disk_read(db.byte_size_range(block.clone()));
        let mut meter = OpMeter::new();
        for (_tid, items) in db.iter_range(block) {
            meter.record += 1 + items.len() as u64;
            for q in 0..t {
                let proj: Vec<ItemId> = items
                    .iter()
                    .copied()
                    .filter(|i| universe[q].contains(i))
                    .collect();
                if proj.len() >= 2 {
                    if q != p {
                        outgoing[p][q] += (proj.len() as u64 + 1) * 4;
                    }
                    replicated[q].push(proj);
                }
            }
        }
        rec.compute(&meter);
    }
    let exchange_rounds =
        lockstep_exchange(&mut recorders, &outgoing, cfg.buffer_bytes, &mut barriers);
    let _ = exchange_rounds;
    // Write the replicated partition to local disk.
    let repl_bytes: Vec<u64> = replicated
        .iter()
        .map(|txns| txns.iter().map(|x| (x.len() as u64 + 1) * 4).sum())
        .collect();
    for p in 0..t {
        if repl_bytes[p] > 0 {
            recorders[p].disk_write(repl_bytes[p]);
        }
    }

    // ---- Independent iterations per processor.
    let mut per_proc_l: Vec<Vec<Itemset>> = (0..t)
        .map(|p| {
            (0..classes.len())
                .filter(|&c| owner[c] == p)
                .flat_map(|c| l_prev[classes[c].clone()].to_vec())
                .collect()
        })
        .collect();
    let mut max_k = k;
    for (p, rec) in recorders.iter_mut().enumerate() {
        let mut kk = k;
        let db_p = &replicated[p];
        while !per_proc_l[p].is_empty() {
            rec.phase(phase_label(kk));
            let mut meter = OpMeter::new();
            // Join within local classes; prune only with local knowledge
            // (remote pruning info is best-effort and may not arrive in
            // time — we model the conservative no-prune case).
            let candidates = join_step(&per_proc_l[p], &mut meter);
            if candidates.is_empty() {
                rec.compute(&meter);
                break;
            }
            let mut tree = HashTree::with_params(kk, cfg.fanout, cfg.leaf_threshold);
            let num_candidates = candidates.len();
            for c in candidates {
                tree.insert(c);
            }
            meter.hash_probe += num_candidates as u64 * (tree.depth() as u64 + 1);
            // Scan the replicated local partition (from local disk).
            if repl_bytes[p] > 0 {
                rec.disk_read(repl_bytes[p]);
            }
            for txn in db_p {
                meter.record += 1;
                tree.count_transaction(txn, &mut meter);
            }
            rec.compute(&meter);
            let l_cur = tree.frequent(threshold);
            for (is, c) in &l_cur {
                result.insert(is.clone(), *c);
            }
            per_proc_l[p] = l_cur.into_iter().map(|(is, _)| is).collect();
            kk += 1;
        }
        max_k = max_k.max(kk);
    }

    // Asynchronous pruning-information broadcast (modelled once per
    // remaining level: local frequent sets travel to everyone).
    let bytes: Vec<u64> = (0..t)
        .map(|p| {
            per_proc_l[p]
                .iter()
                .map(|is| is.len() as u64 * 4)
                .sum::<u64>()
                + 64
        })
        .collect();
    broadcast_all(&mut recorders, &bytes, &mut barriers);

    let traces: Vec<_> = recorders.into_iter().map(|r| r.finish()).collect();
    let timeline = memchannel::des::replay(cluster, cost, &traces);
    CdReport {
        frequent: result,
        timeline,
        iterations: max_k - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_dist::{mine_count_dist, CountDistConfig};
    use apriori::reference::random_db;

    fn cost() -> CostModel {
        CostModel::dec_alpha_1997()
    }

    #[test]
    fn matches_sequential_apriori() {
        let db = random_db(17, 300, 14, 6);
        let minsup = MinSupport::from_percent(4.0);
        let expect = apriori::mine(&db, minsup);
        for (h, p) in [(1, 1), (2, 1), (2, 2)] {
            let report = mine_candidate_dist(
                &db,
                minsup,
                &ClusterConfig::new(h, p),
                &cost(),
                &CandidateDistConfig::default(),
            );
            assert_eq!(report.frequent, expect, "H={h} P={p}");
        }
    }

    #[test]
    fn early_redistribution_also_correct() {
        let db = random_db(23, 250, 12, 6);
        let minsup = MinSupport::from_percent(5.0);
        let expect = apriori::mine(&db, minsup);
        for pass in [2, 3, 5] {
            let report = mine_candidate_dist(
                &db,
                minsup,
                &ClusterConfig::new(2, 1),
                &cost(),
                &CandidateDistConfig {
                    redistribution_pass: pass,
                    ..Default::default()
                },
            );
            assert_eq!(report.frequent, expect, "pass {pass}");
        }
    }

    #[test]
    fn performs_worse_than_count_distribution() {
        // §3.2 / A5: the redistribution cost is not recovered.
        let db = random_db(31, 800, 15, 6);
        let minsup = MinSupport::from_percent(3.0);
        let topo = ClusterConfig::new(4, 1);
        let cd = mine_count_dist(&db, minsup, &topo, &cost(), &CountDistConfig::default());
        let cand =
            mine_candidate_dist(&db, minsup, &topo, &cost(), &CandidateDistConfig::default());
        assert_eq!(cd.frequent, cand.frequent);
        assert!(
            cand.total_secs() > cd.total_secs() * 0.8,
            "Candidate Dist. should not beat Count Dist. materially: {} vs {}",
            cand.total_secs(),
            cd.total_secs()
        );
    }

    #[test]
    #[should_panic(expected = "pass 2 or later")]
    fn rejects_pass_below_two() {
        let db = random_db(1, 10, 8, 4);
        mine_candidate_dist(
            &db,
            MinSupport::from_percent(10.0),
            &ClusterConfig::sequential(),
            &cost(),
            &CandidateDistConfig {
                redistribution_pass: 1,
                ..Default::default()
            },
        );
    }
}
