//! Parallel Apriori baselines on the simulated cluster.
//!
//! * [`count_dist`] — **Count Distribution** (§3.1), the algorithm the
//!   paper beats by an order of magnitude. The CCPD variant the paper
//!   actually ran (*"we assume that CCPD and Count Distribution refer to
//!   the same algorithm"*, §3) is the same structure with hash-tree
//!   optimizations; the short-circuited subset counting is inherent in
//!   our combination enumeration and the triangular-`L2` optimization is
//!   available as a switch.
//! * [`ccpd_shm`] — **CCPD on real shared memory** \[16\]: one shared
//!   candidate hash tree with atomic counts, rayon tasks as processors —
//!   the runnable multicore baseline.
//! * [`candidate_dist`] — **Candidate Distribution** (§3.2): Count
//!   Distribution up to a chosen pass `l`, then candidates are
//!   partitioned by equivalence class, the database is selectively
//!   replicated, and processors proceed independently with asynchronous
//!   pruning-information broadcasts. The paper reports it performs
//!   *worse* than Count Distribution — ablation A5 reproduces that.

pub mod candidate_dist;
pub mod ccpd_shm;
pub mod count_dist;

pub use candidate_dist::{mine_candidate_dist, CandidateDistConfig};
pub use ccpd_shm::{mine_ccpd_shm, CcpdShmConfig};
pub use count_dist::{mine_count_dist, CdReport, CountDistConfig};
