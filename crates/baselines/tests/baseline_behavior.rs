//! Behavioral tests of the parallel baselines on Quest-structured data:
//! correctness across knobs, and the cost-structure claims §3 makes
//! about them.

use dbstore::HorizontalDb;
use memchannel::{ClusterConfig, CostModel};
use mining_types::{FrequentSet, MinSupport};
use parbase::{CandidateDistConfig, CcpdShmConfig, CountDistConfig};
use questgen::{QuestGenerator, QuestParams};

fn quest(d: usize, seed: u64) -> HorizontalDb {
    HorizontalDb::from_transactions(QuestGenerator::new(QuestParams::tiny(d, seed)).generate_all())
}

fn cost() -> CostModel {
    CostModel::dec_alpha_1997()
}

#[test]
fn all_baselines_agree_with_apriori_on_quest_data() {
    let db = quest(2_000, 42);
    let minsup = MinSupport::from_percent(1.5);
    let reference = apriori::mine(&db, minsup);
    let topo = ClusterConfig::new(2, 2);

    let cd = parbase::mine_count_dist(&db, minsup, &topo, &cost(), &CountDistConfig::default());
    assert_eq!(cd.frequent, reference, "count distribution");

    let cand =
        parbase::mine_candidate_dist(&db, minsup, &topo, &cost(), &CandidateDistConfig::default());
    assert_eq!(cand.frequent, reference, "candidate distribution");

    let shm = parbase::mine_ccpd_shm(&db, minsup, &CcpdShmConfig::default());
    assert_eq!(shm, reference, "shared-memory CCPD");

    let (part, _) = apriori::mine_partition(&db, minsup, &Default::default());
    assert_eq!(part, reference, "partition algorithm");
}

#[test]
fn hash_tree_knobs_do_not_change_answers() {
    let db = quest(800, 7);
    let minsup = MinSupport::from_percent(2.0);
    let topo = ClusterConfig::new(2, 1);
    let reference = apriori::mine(&db, minsup);
    for (fanout, leaf) in [(2usize, 1usize), (8, 4), (64, 16), (1024, 64)] {
        let cfg = CountDistConfig {
            fanout,
            leaf_threshold: leaf,
            ..Default::default()
        };
        let rep = parbase::mine_count_dist(&db, minsup, &topo, &cost(), &cfg);
        assert_eq!(rep.frequent, reference, "fanout {fanout} leaf {leaf}");
    }
}

#[test]
fn count_dist_time_grows_with_iterations_not_with_processors_alone() {
    // §3.1's cost structure: CD's disk time scales with iterations; more
    // processors shrink per-proc block scans.
    let db = quest(3_000, 3);
    let minsup = MinSupport::from_percent(1.0);
    let seq = parbase::mine_count_dist(
        &db,
        minsup,
        &ClusterConfig::sequential(),
        &cost(),
        &CountDistConfig::default(),
    );
    let par = parbase::mine_count_dist(
        &db,
        minsup,
        &ClusterConfig::new(4, 1),
        &cost(),
        &CountDistConfig::default(),
    );
    assert_eq!(seq.frequent, par.frequent);
    assert_eq!(seq.iterations, par.iterations);
    assert!(
        par.total_secs() < seq.total_secs(),
        "CD parallelizes somewhat"
    );
    // but sublinearly: candidate generation is replicated per §3.1
    let speedup = seq.total_secs() / par.total_secs();
    assert!(speedup < 4.0, "CD speedup {speedup:.2} should be sublinear");
}

#[test]
fn candidate_dist_redistribution_pass_tradeoff() {
    // Early redistribution decouples sooner but replicates more of the
    // database; whatever the pass, answers are identical.
    let db = quest(1_500, 11);
    let minsup = MinSupport::from_percent(1.5);
    let topo = ClusterConfig::new(4, 1);
    let reference = apriori::mine(&db, minsup);
    let mut times = Vec::new();
    for pass in [2usize, 3, 4, 6] {
        let rep = parbase::mine_candidate_dist(
            &db,
            minsup,
            &topo,
            &cost(),
            &CandidateDistConfig {
                redistribution_pass: pass,
                ..Default::default()
            },
        );
        assert_eq!(rep.frequent, reference, "pass {pass}");
        times.push(rep.total_secs());
    }
    assert!(times.iter().all(|&t| t > 0.0));
}

#[test]
fn ccpd_shm_wall_clock_matches_apriori_results_under_thread_counts() {
    let db = quest(1_200, 19);
    let minsup = MinSupport::from_percent(2.0);
    let reference = apriori::mine(&db, minsup);
    for parts in [1usize, 2, 5, 9] {
        let shm = parbase::mine_ccpd_shm(
            &db,
            minsup,
            &CcpdShmConfig {
                partitions: Some(parts),
                ..Default::default()
            },
        );
        assert_eq!(shm, reference, "partitions {parts}");
    }
}

#[test]
fn cd_strips_to_eclat_answer() {
    // The two sides of Table 2 mine the same thing (modulo singletons).
    let db = quest(1_000, 23);
    let minsup = MinSupport::from_percent(2.0);
    let topo = ClusterConfig::new(2, 1);
    let cd = parbase::mine_count_dist(&db, minsup, &topo, &cost(), &Default::default());
    let ec = eclat::cluster::mine_cluster(&db, minsup, &topo, &cost(), &Default::default());
    let cd_pairs_up: FrequentSet = cd
        .frequent
        .iter()
        .filter(|(is, _)| is.len() >= 2)
        .map(|(is, s)| (is.clone(), s))
        .collect();
    assert_eq!(cd_pairs_up, ec.frequent);
}
