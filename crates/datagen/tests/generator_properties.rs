//! Property-based tests of the Quest generator across its parameter
//! space: every output must be structurally valid and deterministic, and
//! basic statistics must track the parameters.

use proptest::prelude::*;
use questgen::{DatabaseStats, QuestGenerator, QuestParams};

fn arb_params() -> impl Strategy<Value = QuestParams> {
    (
        10usize..400, // num_transactions
        2.0f64..15.0, // avg_transaction_len
        1.0f64..6.0,  // avg_pattern_len
        5usize..100,  // num_patterns
        10u32..200,   // num_items
        any::<u64>(), // seed
    )
        .prop_map(|(d, t, i, l, n, seed)| QuestParams {
            num_transactions: d,
            avg_transaction_len: t,
            avg_pattern_len: i.min(n as f64 / 2.0).max(1.0),
            num_patterns: l,
            num_items: n,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn output_is_structurally_valid(params in arb_params()) {
        let n = params.num_items;
        let d = params.num_transactions;
        let db = QuestGenerator::new(params).generate_all();
        prop_assert_eq!(db.len(), d);
        for t in &db {
            prop_assert!(!t.is_empty());
            prop_assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted+unique");
            prop_assert!(t.iter().all(|i| i.0 < n), "items in universe");
        }
    }

    #[test]
    fn deterministic_per_seed(params in arb_params()) {
        let a = QuestGenerator::new(params.clone()).generate_all();
        let b = QuestGenerator::new(params).generate_all();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn stats_track_parameters(params in arb_params()) {
        prop_assume!(params.num_transactions >= 100);
        let avg_t = params.avg_transaction_len;
        let db = QuestGenerator::new(params).generate_all();
        let stats = DatabaseStats::measure(&db);
        // baskets are packed in whole (corrupted) patterns, so the
        // measured average floats around the parameter — wide band, but
        // it must be in the right ballpark and never collapse to ~1
        // unless the parameter is tiny.
        prop_assert!(
            stats.avg_transaction_len > 0.3 * avg_t.min(stats.max_transaction_len as f64),
            "avg {} vs param {avg_t}", stats.avg_transaction_len
        );
        prop_assert!(
            stats.avg_transaction_len < 3.0 * avg_t + 4.0,
            "avg {} vs param {avg_t}", stats.avg_transaction_len
        );
        prop_assert_eq!(
            stats.horizontal_bytes,
            (stats.num_transactions as u64
                + db.iter().map(|t| t.len() as u64).sum::<u64>()) * 4
        );
    }

    #[test]
    fn different_seeds_differ(params in arb_params()) {
        prop_assume!(params.num_transactions >= 50);
        let a = QuestGenerator::new(params.clone()).generate_all();
        let b = QuestGenerator::new(params.with_seed(0xDEAD_BEEF)).generate_all();
        // (collision astronomically unlikely; if the seeds coincide the
        // assume above already filtered the degenerate tiny cases)
        prop_assert_ne!(a, b);
    }
}
