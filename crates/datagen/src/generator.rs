//! The Quest generation procedure: pattern table + transaction stream.

use crate::params::QuestParams;
use crate::sampler;
use mining_types::{FxHashSet, ItemId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The table of maximal potentially frequent itemsets ("patterns") with
/// their selection weights and corruption levels.
#[derive(Clone, Debug)]
pub struct PatternTable {
    /// Sorted item lists, one per pattern.
    patterns: Vec<Vec<ItemId>>,
    /// Cumulative selection weights (last entry ≈ 1.0).
    cumulative: Vec<f64>,
    /// Per-pattern corruption level in `\[0, 1\]`.
    corruption: Vec<f64>,
}

impl PatternTable {
    /// Build the pattern table per the published procedure.
    pub fn build(params: &QuestParams, rng: &mut StdRng) -> PatternTable {
        assert!(params.num_items >= 1, "need at least one item");
        assert!(params.num_patterns >= 1, "need at least one pattern");
        let n = params.num_items;
        let mut patterns: Vec<Vec<ItemId>> = Vec::with_capacity(params.num_patterns);
        let mut weights: Vec<f64> = Vec::with_capacity(params.num_patterns);
        let mut corruption: Vec<f64> = Vec::with_capacity(params.num_patterns);

        for p in 0..params.num_patterns {
            // Pattern length: Poisson(|I|), at least 1, at most N.
            let len = sampler::poisson(rng, params.avg_pattern_len)
                .max(1)
                .min(n as u64) as usize;

            let mut chosen: FxHashSet<ItemId> = FxHashSet::default();
            if p > 0 {
                // Correlation: an exponentially-distributed fraction
                // (mean = correlation level, clamped to [0,1]) of the
                // items come from the previous pattern.
                let frac = sampler::exponential(rng, params.correlation).min(1.0);
                let prev = &patterns[p - 1];
                let from_prev = ((frac * len as f64).round() as usize).min(prev.len());
                // Sample `from_prev` distinct indices of the previous
                // pattern (Floyd's algorithm would be overkill at these
                // sizes: rejection sampling over tiny sets).
                while chosen.len() < from_prev {
                    let idx = rng.random_range(0..prev.len());
                    chosen.insert(prev[idx]);
                }
            }
            // Fill the remainder with uniform random items.
            while chosen.len() < len {
                chosen.insert(ItemId(rng.random_range(0..n)));
            }
            let mut items: Vec<ItemId> = chosen.into_iter().collect();
            items.sort_unstable();
            patterns.push(items);

            weights.push(sampler::exponential(rng, 1.0));
            corruption.push(
                sampler::normal(rng, params.corruption_mean, params.corruption_sd).clamp(0.0, 1.0),
            );
        }

        // Normalize the weights into a cumulative table.
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();

        PatternTable {
            patterns,
            cumulative,
            corruption,
        }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the table is empty (never after [`PatternTable::build`]).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The items of pattern `idx` (sorted).
    pub fn pattern(&self, idx: usize) -> &[ItemId] {
        &self.patterns[idx]
    }

    /// Corruption level of pattern `idx`.
    pub fn corruption(&self, idx: usize) -> f64 {
        self.corruption[idx]
    }

    /// Draw a pattern index according to the weights.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sampler::weighted_index(rng, &self.cumulative)
    }
}

/// Streaming transaction generator. Implements `Iterator`, yielding each
/// transaction as a sorted, duplicate-free `Vec<ItemId>`.
pub struct QuestGenerator {
    params: QuestParams,
    table: PatternTable,
    rng: StdRng,
    emitted: usize,
    /// Pattern deferred from the previous transaction ("put aside for the
    /// next transaction" rule), already corrupted.
    pending: Option<Vec<ItemId>>,
    scratch: Vec<ItemId>,
}

impl QuestGenerator {
    /// Create a generator; builds the pattern table immediately.
    pub fn new(params: QuestParams) -> QuestGenerator {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let table = PatternTable::build(&params, &mut rng);
        QuestGenerator {
            params,
            table,
            rng,
            emitted: 0,
            pending: None,
            scratch: Vec::new(),
        }
    }

    /// The generation parameters.
    pub fn params(&self) -> &QuestParams {
        &self.params
    }

    /// The underlying pattern table (exposed for white-box tests).
    pub fn table(&self) -> &PatternTable {
        &self.table
    }

    /// Generate the whole database into memory.
    pub fn generate_all(mut self) -> Vec<Vec<ItemId>> {
        let mut out = Vec::with_capacity(self.params.num_transactions);
        for txn in &mut self {
            out.push(txn);
        }
        out
    }

    /// Corrupt a pattern: drop a random item while a uniform draw stays
    /// below the corruption level.
    fn corrupt(&mut self, idx: usize) -> Vec<ItemId> {
        let mut items = self.table.patterns[idx].clone();
        let c = self.table.corruption[idx];
        while items.len() > 1 && self.rng.random::<f64>() < c {
            let drop = self.rng.random_range(0..items.len());
            items.swap_remove(drop);
        }
        items
    }

    fn next_transaction(&mut self) -> Vec<ItemId> {
        let size = sampler::poisson(&mut self.rng, self.params.avg_transaction_len).max(1) as usize;
        self.scratch.clear();

        loop {
            let corrupted = match self.pending.take() {
                Some(p) => p,
                None => {
                    let idx = self.table.pick(&mut self.rng);
                    self.corrupt(idx)
                }
            };
            if self.scratch.len() + corrupted.len() <= size {
                self.scratch.extend_from_slice(&corrupted);
                if self.scratch.len() >= size {
                    break;
                }
            } else {
                // Doesn't fit: add anyway half the time, defer otherwise.
                // A transaction must contain at least one pattern, so the
                // first pattern is never deferred.
                if self.scratch.is_empty() || self.rng.random::<bool>() {
                    self.scratch.extend_from_slice(&corrupted);
                } else {
                    self.pending = Some(corrupted);
                }
                break;
            }
        }

        let mut txn = std::mem::take(&mut self.scratch);
        txn.sort_unstable();
        txn.dedup();
        self.scratch = Vec::new();
        txn
    }
}

impl Iterator for QuestGenerator {
    type Item = Vec<ItemId>;

    fn next(&mut self) -> Option<Vec<ItemId>> {
        if self.emitted >= self.params.num_transactions {
            return None;
        }
        self.emitted += 1;
        Some(self.next_transaction())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.params.num_transactions - self.emitted;
        (rem, Some(rem))
    }
}

/// Summary statistics of a generated database (Table 1 columns).
#[derive(Clone, Debug, PartialEq)]
pub struct DatabaseStats {
    /// `|D|` — number of transactions.
    pub num_transactions: usize,
    /// Measured average transaction size.
    pub avg_transaction_len: f64,
    /// Largest transaction.
    pub max_transaction_len: usize,
    /// Number of distinct items that actually occur.
    pub distinct_items: usize,
    /// Horizontal-layout size in bytes (tid + items, 4 bytes per word).
    pub horizontal_bytes: u64,
}

impl DatabaseStats {
    /// Compute the stats of an in-memory database.
    pub fn measure(db: &[Vec<ItemId>]) -> DatabaseStats {
        let mut total = 0usize;
        let mut max = 0usize;
        let mut seen: FxHashSet<ItemId> = FxHashSet::default();
        for t in db {
            total += t.len();
            max = max.max(t.len());
            seen.extend(t.iter().copied());
        }
        let n = db.len();
        DatabaseStats {
            num_transactions: n,
            avg_transaction_len: if n == 0 { 0.0 } else { total as f64 / n as f64 },
            max_transaction_len: max,
            distinct_items: seen.len(),
            horizontal_bytes: (n as u64 + total as u64) * 4,
        }
    }

    /// Megabytes of the horizontal layout.
    pub fn size_mb(&self) -> f64 {
        self.horizontal_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> QuestParams {
        QuestParams::tiny(2000, 11)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = QuestGenerator::new(small_params()).generate_all();
        let b = QuestGenerator::new(small_params()).generate_all();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = QuestGenerator::new(small_params()).generate_all();
        let b = QuestGenerator::new(small_params().with_seed(12)).generate_all();
        assert_ne!(a, b);
    }

    #[test]
    fn transactions_are_sorted_unique_and_in_range() {
        let p = small_params();
        let n = p.num_items;
        let db = QuestGenerator::new(p).generate_all();
        assert_eq!(db.len(), 2000);
        for t in &db {
            assert!(!t.is_empty());
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted+unique: {t:?}");
            assert!(t.iter().all(|i| i.0 < n));
        }
    }

    #[test]
    fn average_size_tracks_parameter() {
        // |T| = 8 in tiny params; the pack-patterns process overshoots a
        // little (patterns are added whole), so allow a generous band.
        let db = QuestGenerator::new(small_params()).generate_all();
        let stats = DatabaseStats::measure(&db);
        assert!(
            (5.0..13.0).contains(&stats.avg_transaction_len),
            "avg len {}",
            stats.avg_transaction_len
        );
        assert!(
            stats.distinct_items > 30,
            "items used: {}",
            stats.distinct_items
        );
    }

    #[test]
    fn patterns_actually_recur() {
        // The whole point of Quest data: planted patterns occur far more
        // often than chance. Take a frequent-ish pattern of size >= 2 and
        // check it appears as a subset in some transactions.
        let gen = QuestGenerator::new(small_params());
        let pat: Vec<ItemId> = (0..gen.table().len())
            .map(|i| gen.table().pattern(i).to_vec())
            .find(|p| p.len() >= 2 && p.len() <= 4)
            .expect("some small pattern exists");
        let db = QuestGenerator::new(small_params()).generate_all();
        let hits = db
            .iter()
            .filter(|t| pat.iter().all(|i| t.binary_search(i).is_ok()))
            .count();
        // 2000 transactions, 50 patterns: a planted pattern should show up
        // at least a handful of times (uniform-random chance would be
        // ≈ (8/60)^2 * corr …  tiny).
        assert!(hits >= 2, "pattern {pat:?} occurred {hits} times");
    }

    #[test]
    fn table1_shape_for_t10_i6() {
        // A scaled-down T10.I6: check the measured |T| is ≈ 10 and the
        // byte size matches the (|T|+1)·|D|·4 formula used by Table 1.
        let p = QuestParams::t10_i6(5_000).with_seed(3);
        let db = QuestGenerator::new(p.clone()).generate_all();
        let stats = DatabaseStats::measure(&db);
        assert!(
            (8.0..13.5).contains(&stats.avg_transaction_len),
            "avg {}",
            stats.avg_transaction_len
        );
        let predicted = p.approx_size_mb();
        let measured = stats.size_mb();
        assert!(
            (measured - predicted).abs() / predicted < 0.35,
            "predicted {predicted:.2} MB measured {measured:.2} MB"
        );
    }

    #[test]
    fn pattern_table_shapes() {
        let p = QuestParams::t10_i6(10).with_seed(5);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let t = PatternTable::build(&p, &mut rng);
        assert_eq!(t.len(), 2000);
        assert!(!t.is_empty());
        let mut total_len = 0usize;
        for i in 0..t.len() {
            let pat = t.pattern(i);
            assert!(!pat.is_empty());
            assert!(pat.windows(2).all(|w| w[0] < w[1]));
            assert!((0.0..=1.0).contains(&t.corruption(i)));
            total_len += pat.len();
        }
        let avg = total_len as f64 / t.len() as f64;
        assert!((avg - 6.0).abs() < 0.6, "avg pattern len {avg}");
    }

    #[test]
    fn size_hint_is_exact() {
        let mut g = QuestGenerator::new(QuestParams::tiny(5, 1));
        assert_eq!(g.size_hint(), (5, Some(5)));
        g.next();
        assert_eq!(g.size_hint(), (4, Some(4)));
        assert_eq!(g.count(), 4);
    }

    #[test]
    fn empty_database() {
        let db = QuestGenerator::new(QuestParams::tiny(0, 1)).generate_all();
        assert!(db.is_empty());
        let stats = DatabaseStats::measure(&db);
        assert_eq!(stats.num_transactions, 0);
        assert_eq!(stats.avg_transaction_len, 0.0);
    }
}
