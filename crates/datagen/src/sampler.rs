//! Small distribution samplers on top of `rand`'s uniform source.
//!
//! The offline dependency allow-list has `rand` but not `rand_distr`, so
//! the three distributions the Quest procedure needs — Poisson,
//! exponential, normal — are implemented here (Knuth's product method,
//! inverse transform, and Box–Muller respectively). All take `&mut impl
//! Rng` so the generator stays on one seeded stream.

use rand::Rng;

/// Poisson sample with the given mean, via Knuth's product-of-uniforms
/// method. O(mean) per draw — fine for the means here (|T| ≤ 40,
/// |I| ≤ 10).
///
/// # Panics
/// Panics if `mean` is not finite and positive.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean.is_finite() && mean > 0.0, "poisson mean must be > 0");
    // For large means the product underflows f64; split into chunks of
    // mean ≤ 500 (exp(-500) is representable) and sum.
    let mut remaining = mean;
    let mut total = 0u64;
    while remaining > 0.0 {
        let m = remaining.min(500.0);
        remaining -= m;
        let l = (-m).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                break;
            }
            k += 1;
        }
        total += k;
    }
    total
}

/// Exponential sample with the given mean (inverse transform).
///
/// # Panics
/// Panics if `mean` is not finite and positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be > 0"
    );
    // random() is in [0,1); use 1-u to avoid ln(0).
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

/// Normal sample via Box–Muller.
///
/// # Panics
/// Panics if `sd` is negative or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(mean.is_finite() && sd.is_finite() && sd >= 0.0);
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sd * z
}

/// Index sample from a cumulative-weight table (weights normalized so the
/// last entry is 1.0). Binary search over the prefix sums.
///
/// # Panics
/// Panics if the table is empty.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, cumulative: &[f64]) -> usize {
    assert!(!cumulative.is_empty(), "weight table must be non-empty");
    let u: f64 = rng.random::<f64>() * cumulative.last().unwrap();
    // partition_point: first index with cumulative[idx] > u.
    cumulative
        .partition_point(|&c| c <= u)
        .min(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        for mean in [0.5f64, 3.0, 10.0] {
            let sum: u64 = (0..n).map(|_| poisson(&mut r, mean)).sum();
            let est = sum as f64 / n as f64;
            assert!(
                (est - mean).abs() < 0.15 * mean.max(1.0),
                "poisson({mean}) sample mean {est}"
            );
        }
    }

    #[test]
    fn poisson_large_mean_does_not_underflow() {
        let mut r = rng();
        let x = poisson(&mut r, 2000.0);
        assert!((1500..2500).contains(&(x as i64)), "got {x}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 2.5)).sum();
        let est = sum / n as f64;
        assert!((est - 2.5).abs() < 0.2, "exp mean {est}");
        // always non-negative
        assert!((0..1000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 0.5, 0.3)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "normal mean {mean}");
        assert!((var - 0.09).abs() < 0.01, "normal var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        // weights 1:3 → cumulative [0.25, 1.0]
        let cum = vec![0.25, 1.0];
        let n = 40_000;
        let ones = (0..n).filter(|_| weighted_index(&mut r, &cum) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "weighted frac {frac}");
    }

    #[test]
    fn weighted_index_single_entry() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(weighted_index(&mut r, &[1.0]), 0);
        }
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| poisson(&mut r, 5.0)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| poisson(&mut r, 5.0)).collect()
        };
        assert_eq!(a, b);
    }
}
