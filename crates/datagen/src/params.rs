//! Parameters for the Quest generator, with the paper's presets.
//!
//! Table 1 of the paper names databases `T<|T|>.I<|I|>.D<|D|>`:
//! average transaction size |T|, average maximal potentially frequent
//! itemset size |I|, number of transactions |D|; with `|L| = 2000`
//! patterns and `N = 1000` items throughout.

/// Full parameter set for one synthetic database.
///
/// ```
/// use questgen::QuestParams;
/// let p = QuestParams::t10_i6(800_000);
/// assert_eq!(p.name(), "T10.I6.D800K");
/// assert!((p.approx_size_mb() - 33.6).abs() < 2.0); // Table 1's ~35 MB
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuestParams {
    /// `|D|` — number of transactions.
    pub num_transactions: usize,
    /// `|T|` — average transaction size (Poisson mean).
    pub avg_transaction_len: f64,
    /// `|I|` — average size of the maximal potentially frequent itemsets.
    pub avg_pattern_len: f64,
    /// `|L|` — number of maximal potentially frequent itemsets (2000 in
    /// the paper).
    pub num_patterns: usize,
    /// `N` — number of items (1000 in the paper).
    pub num_items: u32,
    /// Correlation level between consecutive patterns (0.25 in the
    /// original Quest description).
    pub correlation: f64,
    /// Mean of the per-pattern corruption level (0.5).
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level (√0.1 ≈ 0.316, i.e.
    /// variance 0.1 as published).
    pub corruption_sd: f64,
    /// RNG seed; same params + seed ⇒ identical database.
    pub seed: u64,
}

impl QuestParams {
    /// The `T10.I6` family of the paper with `d` transactions.
    pub fn t10_i6(d: usize) -> Self {
        QuestParams {
            num_transactions: d,
            avg_transaction_len: 10.0,
            avg_pattern_len: 6.0,
            ..QuestParams::base()
        }
    }

    /// The classic `T5.I2` family (small baskets).
    pub fn t5_i2(d: usize) -> Self {
        QuestParams {
            num_transactions: d,
            avg_transaction_len: 5.0,
            avg_pattern_len: 2.0,
            ..QuestParams::base()
        }
    }

    /// The classic `T20.I4` family.
    pub fn t20_i4(d: usize) -> Self {
        QuestParams {
            num_transactions: d,
            avg_transaction_len: 20.0,
            avg_pattern_len: 4.0,
            ..QuestParams::base()
        }
    }

    /// The classic `T20.I6` family (long baskets, long patterns).
    pub fn t20_i6(d: usize) -> Self {
        QuestParams {
            num_transactions: d,
            avg_transaction_len: 20.0,
            avg_pattern_len: 6.0,
            ..QuestParams::base()
        }
    }

    fn base() -> Self {
        QuestParams {
            num_transactions: 0,
            avg_transaction_len: 10.0,
            avg_pattern_len: 6.0,
            num_patterns: 2000,
            num_items: 1000,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed: 0x5EED_u64,
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scale for a small test database (fewer patterns/items keeps tiny
    /// databases from being pure noise).
    pub fn tiny(d: usize, seed: u64) -> Self {
        QuestParams {
            num_transactions: d,
            avg_transaction_len: 8.0,
            avg_pattern_len: 4.0,
            num_patterns: 50,
            num_items: 60,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed,
        }
    }

    /// A *dense* synthetic database: long baskets drawn from a tiny item
    /// universe, so each item lands in a large fraction of transactions
    /// (per-item density ≈ `|T| / N` ≈ 25%). This is the regime the
    /// bitmap representation is built for — the representation × density
    /// ablation mines it against [`QuestParams::sparse`].
    pub fn dense(d: usize, seed: u64) -> Self {
        QuestParams {
            num_transactions: d,
            avg_transaction_len: 12.0,
            avg_pattern_len: 5.0,
            num_patterns: 40,
            num_items: 48,
            correlation: 0.25,
            corruption_mean: 0.3,
            corruption_sd: 0.1f64.sqrt(),
            seed,
        }
    }

    /// A *sparse* synthetic database: short baskets over a wide item
    /// universe (per-item density ≈ `|T| / N` ≈ 0.5%), where tid-list
    /// merges beat word-wise bitmaps. Counterpart of
    /// [`QuestParams::dense`] in the representation × density ablation.
    pub fn sparse(d: usize, seed: u64) -> Self {
        QuestParams {
            num_transactions: d,
            avg_transaction_len: 6.0,
            avg_pattern_len: 3.0,
            num_patterns: 300,
            num_items: 1200,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed,
        }
    }

    /// The paper's name for this database, e.g. `T10.I6.D800K`.
    pub fn name(&self) -> String {
        let d = self.num_transactions;
        let dstr = if d >= 1000 && d.is_multiple_of(1000) {
            format!("{}K", d / 1000)
        } else {
            format!("{d}")
        };
        format!(
            "T{}.I{}.D{}",
            self.avg_transaction_len as u64, self.avg_pattern_len as u64, dstr
        )
    }

    /// Size in megabytes of the horizontal binary layout: each transaction
    /// stores its TID plus its items as 4-byte words. This is the figure
    /// Table 1 reports (T10.I6.D1600K ⇒ ≈ 68 MB).
    pub fn approx_size_mb(&self) -> f64 {
        let words = self.num_transactions as f64 * (1.0 + self.avg_transaction_len);
        words * 4.0 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(QuestParams::t10_i6(800_000).name(), "T10.I6.D800K");
        assert_eq!(QuestParams::t10_i6(6_400_000).name(), "T10.I6.D6400K");
        assert_eq!(QuestParams::t20_i4(100_000).name(), "T20.I4.D100K");
        assert_eq!(QuestParams::t5_i2(1234).name(), "T5.I2.D1234");
    }

    #[test]
    fn sizes_match_table1_approximately() {
        // Table 1: T10.I6.D1600K = 68 MB, D3200K = 138 MB, D6400K = 274 MB.
        let mb = QuestParams::t10_i6(1_600_000).approx_size_mb();
        assert!((mb - 68.0).abs() < 4.0, "D1600K ≈ {mb:.1} MB");
        let mb = QuestParams::t10_i6(3_200_000).approx_size_mb();
        assert!((mb - 138.0).abs() < 5.0, "D3200K ≈ {mb:.1} MB");
        let mb = QuestParams::t10_i6(6_400_000).approx_size_mb();
        assert!((mb - 274.0).abs() < 7.0, "D6400K ≈ {mb:.1} MB");
    }

    #[test]
    fn paper_defaults() {
        let p = QuestParams::t10_i6(800_000);
        assert_eq!(p.num_patterns, 2000);
        assert_eq!(p.num_items, 1000);
        assert!((p.corruption_sd * p.corruption_sd - 0.1).abs() < 1e-12);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = QuestParams::t10_i6(100);
        let b = a.clone().with_seed(99);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.num_transactions, b.num_transactions);
    }
}
