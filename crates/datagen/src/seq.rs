//! Quest-style *sequence* database generator for the SPADE workload.
//!
//! Mirrors the market-basket procedure in [`crate::generator`], lifted
//! one level: the pattern table holds maximal potentially frequent
//! *sequences* (lists of itemset elements), and each customer's history
//! packs corrupted patterns into a time-ordered event list. The
//! published notation names databases `C<|C|>.T<|T|>.S<|S|>.I<|I|>.D<|D|>`:
//! average events per customer |C|, average items per event |T|,
//! average elements per pattern |S|, average items per pattern element
//! |I|, number of customers |D|.
//!
//! Everything is seeded and deterministic, like the basket generator:
//! identical [`SeqParams`] produce byte-identical databases.

use crate::sampler;
use mining_types::{FxHashSet, ItemId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full parameter set for one synthetic sequence database.
///
/// ```
/// use questgen::SeqParams;
/// let p = SeqParams::c10_t4(1000);
/// assert_eq!(p.name(), "C10.T4.S4.I2.D1K");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SeqParams {
    /// `|D|` — number of customer sequences.
    pub num_sequences: usize,
    /// `|C|` — average events per sequence (Poisson mean).
    pub avg_events_per_seq: f64,
    /// `|T|` — average items per event (Poisson mean).
    pub avg_items_per_event: f64,
    /// `|S|` — average elements per potentially frequent sequence.
    pub avg_pattern_elems: f64,
    /// `|I|` — average items per pattern element.
    pub avg_pattern_elem_len: f64,
    /// `|L|` — number of potentially frequent sequences in the table.
    pub num_patterns: usize,
    /// `N` — number of items.
    pub num_items: u32,
    /// Correlation level between consecutive patterns.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level.
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level.
    pub corruption_sd: f64,
    /// RNG seed; same params + seed ⇒ identical database.
    pub seed: u64,
}

impl SeqParams {
    /// The `C10.T4.S4.I2` family with `d` customers — the mid-sized
    /// default for benchmarks.
    pub fn c10_t4(d: usize) -> Self {
        SeqParams {
            num_sequences: d,
            ..SeqParams::base()
        }
    }

    /// The `C5.T2.S3.I1` family (short histories, thin events): sparse,
    /// mostly single-item elements — the classic GSP/SPADE stress shape.
    pub fn c5_t2(d: usize) -> Self {
        SeqParams {
            num_sequences: d,
            avg_events_per_seq: 5.0,
            avg_items_per_event: 2.0,
            avg_pattern_elems: 3.0,
            avg_pattern_elem_len: 1.0,
            ..SeqParams::base()
        }
    }

    /// The `C20.T3.S6.I2` family (long histories): deep temporal
    /// patterns, the regime where S-extension chains dominate.
    pub fn c20_t3(d: usize) -> Self {
        SeqParams {
            num_sequences: d,
            avg_events_per_seq: 20.0,
            avg_items_per_event: 3.0,
            avg_pattern_elems: 6.0,
            ..SeqParams::base()
        }
    }

    fn base() -> Self {
        SeqParams {
            num_sequences: 0,
            avg_events_per_seq: 10.0,
            avg_items_per_event: 4.0,
            avg_pattern_elems: 4.0,
            avg_pattern_elem_len: 2.0,
            num_patterns: 1000,
            num_items: 500,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed: 0x5EED_u64,
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scale for a small test database (few patterns over a small
    /// alphabet, so tiny databases still contain frequent sequences).
    pub fn tiny(d: usize, seed: u64) -> Self {
        SeqParams {
            num_sequences: d,
            avg_events_per_seq: 6.0,
            avg_items_per_event: 3.0,
            avg_pattern_elems: 3.0,
            avg_pattern_elem_len: 2.0,
            num_patterns: 25,
            num_items: 40,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1f64.sqrt(),
            seed,
        }
    }

    /// The database's name, e.g. `C10.T4.S4.I2.D1K`.
    pub fn name(&self) -> String {
        let d = self.num_sequences;
        let dstr = if d >= 1000 && d.is_multiple_of(1000) {
            format!("{}K", d / 1000)
        } else {
            format!("{d}")
        };
        format!(
            "C{}.T{}.S{}.I{}.D{}",
            self.avg_events_per_seq as u64,
            self.avg_items_per_event as u64,
            self.avg_pattern_elems as u64,
            self.avg_pattern_elem_len as u64,
            dstr
        )
    }

    /// Size in megabytes of the binfmt sequence layout: per sequence an
    /// event count, per event an eid + length + items, 4-byte words.
    pub fn approx_size_mb(&self) -> f64 {
        let per_seq = 1.0 + self.avg_events_per_seq * (2.0 + self.avg_items_per_event);
        self.num_sequences as f64 * per_seq * 4.0 / (1024.0 * 1024.0)
    }
}

/// The table of maximal potentially frequent sequences: ordered element
/// lists with selection weights and corruption levels.
#[derive(Clone, Debug)]
pub struct SeqPatternTable {
    /// One pattern per entry: a list of sorted itemset elements.
    patterns: Vec<Vec<Vec<ItemId>>>,
    /// Cumulative selection weights (last entry ≈ 1.0).
    cumulative: Vec<f64>,
    /// Per-pattern corruption level in `\[0, 1\]`.
    corruption: Vec<f64>,
}

impl SeqPatternTable {
    /// Build the table: element counts Poisson(|S|), element sizes
    /// Poisson(|I|), a correlated fraction of elements copied (in
    /// temporal order) from the previous pattern, exponential weights,
    /// normal corruption — the basket procedure, one level up.
    pub fn build(params: &SeqParams, rng: &mut StdRng) -> SeqPatternTable {
        assert!(params.num_items >= 1, "need at least one item");
        assert!(params.num_patterns >= 1, "need at least one pattern");
        let n = params.num_items;
        let mut patterns: Vec<Vec<Vec<ItemId>>> = Vec::with_capacity(params.num_patterns);
        let mut weights: Vec<f64> = Vec::with_capacity(params.num_patterns);
        let mut corruption: Vec<f64> = Vec::with_capacity(params.num_patterns);

        for p in 0..params.num_patterns {
            let n_elems = sampler::poisson(rng, params.avg_pattern_elems).max(1) as usize;
            let mut elems: Vec<Vec<ItemId>> = Vec::with_capacity(n_elems);
            if p > 0 {
                // Correlation: an exponentially-distributed fraction of
                // the elements come from the previous pattern, keeping
                // their relative order.
                let frac = sampler::exponential(rng, params.correlation).min(1.0);
                let prev = &patterns[p - 1];
                let from_prev = ((frac * n_elems as f64).round() as usize)
                    .min(prev.len())
                    .min(n_elems);
                let mut picks: Vec<usize> = Vec::with_capacity(from_prev);
                sample_sorted(rng, from_prev, prev.len(), &mut picks);
                elems.extend(picks.into_iter().map(|i| prev[i].clone()));
            }
            // Fill the remainder with fresh random elements.
            while elems.len() < n_elems {
                let len = sampler::poisson(rng, params.avg_pattern_elem_len)
                    .max(1)
                    .min(n as u64) as usize;
                let mut chosen: FxHashSet<ItemId> = FxHashSet::default();
                while chosen.len() < len {
                    chosen.insert(ItemId(rng.random_range(0..n)));
                }
                let mut items: Vec<ItemId> = chosen.into_iter().collect();
                items.sort_unstable();
                elems.push(items);
            }
            patterns.push(elems);

            weights.push(sampler::exponential(rng, 1.0));
            corruption.push(
                sampler::normal(rng, params.corruption_mean, params.corruption_sd).clamp(0.0, 1.0),
            );
        }

        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();

        SeqPatternTable {
            patterns,
            cumulative,
            corruption,
        }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the table is empty (never after [`SeqPatternTable::build`]).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The elements of pattern `idx`, each sorted.
    pub fn pattern(&self, idx: usize) -> &[Vec<ItemId>] {
        &self.patterns[idx]
    }

    /// Corruption level of pattern `idx`.
    pub fn corruption(&self, idx: usize) -> f64 {
        self.corruption[idx]
    }

    /// Draw a pattern index according to the weights.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sampler::weighted_index(rng, &self.cumulative)
    }
}

/// Sample `k` distinct sorted indices from `0..n` (selection sampling:
/// one pass, each index kept with probability `need / remaining`).
fn sample_sorted<R: Rng + ?Sized>(rng: &mut R, k: usize, n: usize, out: &mut Vec<usize>) {
    out.clear();
    let mut need = k.min(n);
    for e in 0..n {
        if need == 0 {
            break;
        }
        if rng.random_range(0..n - e) < need {
            out.push(e);
            need -= 1;
        }
    }
}

/// Streaming sequence generator. Implements `Iterator`, yielding each
/// customer as a time-ordered `Vec<(eid, items)>` event list with eids
/// `1, 2, …` and sorted, duplicate-free events.
pub struct SeqGenerator {
    params: SeqParams,
    table: SeqPatternTable,
    rng: StdRng,
    emitted: usize,
    /// Pattern deferred from the previous customer, already corrupted.
    pending: Option<Vec<Vec<ItemId>>>,
    positions: Vec<usize>,
}

impl SeqGenerator {
    /// Create a generator; builds the pattern table immediately.
    pub fn new(params: SeqParams) -> SeqGenerator {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let table = SeqPatternTable::build(&params, &mut rng);
        SeqGenerator {
            params,
            table,
            rng,
            emitted: 0,
            pending: None,
            positions: Vec::new(),
        }
    }

    /// The generation parameters.
    pub fn params(&self) -> &SeqParams {
        &self.params
    }

    /// The underlying pattern table (exposed for white-box tests).
    pub fn table(&self) -> &SeqPatternTable {
        &self.table
    }

    /// Generate the whole database into memory.
    pub fn generate_all(mut self) -> Vec<Vec<(u32, Vec<ItemId>)>> {
        let mut out = Vec::with_capacity(self.params.num_sequences);
        for seq in &mut self {
            out.push(seq);
        }
        out
    }

    /// Generate the whole database as raw `u32` events — the shape the
    /// seq crate's `SeqDb::from_events` and the binfmt container take.
    pub fn generate_all_raw(self) -> Vec<Vec<(u32, Vec<u32>)>> {
        self.generate_all()
            .into_iter()
            .map(|seq| {
                seq.into_iter()
                    .map(|(eid, items)| (eid, items.into_iter().map(|i| i.0).collect()))
                    .collect()
            })
            .collect()
    }

    /// Corrupt a pattern: in each element, drop a random item while a
    /// uniform draw stays below the corruption level; emptied elements
    /// vanish (but the first surviving element is never dropped, so a
    /// placed pattern always contributes something).
    fn corrupt(&mut self, idx: usize) -> Vec<Vec<ItemId>> {
        let c = self.table.corruption[idx];
        let mut elems: Vec<Vec<ItemId>> = Vec::with_capacity(self.table.patterns[idx].len());
        for src in self.table.patterns[idx].clone() {
            let mut items = src;
            while !items.is_empty() && self.rng.random::<f64>() < c {
                let drop = self.rng.random_range(0..items.len());
                items.swap_remove(drop);
            }
            if !items.is_empty() {
                items.sort_unstable();
                elems.push(items);
            }
        }
        if elems.is_empty() {
            // Fully corrupted away: keep one element of the original so
            // the packing loop always makes progress.
            elems.push(self.table.patterns[idx][0].clone());
        }
        elems
    }

    /// Place a corrupted pattern's elements at distinct, increasing
    /// event positions (extra elements beyond the event count are
    /// dropped — short histories truncate long patterns).
    fn place(&mut self, elems: &[Vec<ItemId>], events: &mut [Vec<ItemId>]) -> usize {
        let k = elems.len().min(events.len());
        let mut positions = std::mem::take(&mut self.positions);
        sample_sorted(&mut self.rng, k, events.len(), &mut positions);
        let mut placed = 0usize;
        for (&pos, elem) in positions.iter().zip(elems) {
            events[pos].extend_from_slice(elem);
            placed += elem.len();
        }
        self.positions = positions;
        placed
    }

    fn next_sequence(&mut self) -> Vec<(u32, Vec<ItemId>)> {
        let n_events =
            sampler::poisson(&mut self.rng, self.params.avg_events_per_seq).max(1) as usize;
        // Item budget for the whole history: one Poisson(|T|) size per
        // event, like the basket generator's per-transaction size.
        let budget: usize = (0..n_events)
            .map(|_| {
                sampler::poisson(&mut self.rng, self.params.avg_items_per_event).max(1) as usize
            })
            .sum();
        let mut events: Vec<Vec<ItemId>> = vec![Vec::new(); n_events];
        let mut placed = 0usize;

        loop {
            let corrupted = match self.pending.take() {
                Some(p) => p,
                None => {
                    let idx = self.table.pick(&mut self.rng);
                    self.corrupt(idx)
                }
            };
            let size: usize = corrupted.iter().map(Vec::len).sum();
            if placed + size <= budget {
                placed += self.place(&corrupted, &mut events);
                if placed >= budget {
                    break;
                }
            } else {
                // Doesn't fit: add anyway half the time, defer otherwise.
                // A sequence must contain at least one pattern, so the
                // first is never deferred.
                if placed == 0 || self.rng.random::<bool>() {
                    self.place(&corrupted, &mut events);
                } else {
                    self.pending = Some(corrupted);
                }
                break;
            }
        }

        events
            .into_iter()
            .enumerate()
            .filter(|(_, items)| !items.is_empty())
            .map(|(i, mut items)| {
                items.sort_unstable();
                items.dedup();
                (i as u32 + 1, items)
            })
            .collect()
    }
}

impl Iterator for SeqGenerator {
    type Item = Vec<(u32, Vec<ItemId>)>;

    fn next(&mut self) -> Option<Vec<(u32, Vec<ItemId>)>> {
        if self.emitted >= self.params.num_sequences {
            return None;
        }
        self.emitted += 1;
        Some(self.next_sequence())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.params.num_sequences - self.emitted;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> SeqParams {
        SeqParams::tiny(500, 11)
    }

    #[test]
    fn names_and_presets() {
        assert_eq!(SeqParams::c10_t4(1000).name(), "C10.T4.S4.I2.D1K");
        assert_eq!(SeqParams::c5_t2(250).name(), "C5.T2.S3.I1.D250");
        assert_eq!(SeqParams::c20_t3(8000).name(), "C20.T3.S6.I2.D8K");
        let p = SeqParams::c10_t4(100);
        let q = p.clone().with_seed(99);
        assert_ne!(p.seed, q.seed);
        assert_eq!(p.num_sequences, q.num_sequences);
        assert!(SeqParams::c10_t4(100_000).approx_size_mb() > 20.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SeqGenerator::new(small_params()).generate_all();
        let b = SeqGenerator::new(small_params()).generate_all();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SeqGenerator::new(small_params()).generate_all();
        let b = SeqGenerator::new(small_params().with_seed(12)).generate_all();
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_normalized_and_in_range() {
        let p = small_params();
        let n = p.num_items;
        let db = SeqGenerator::new(p).generate_all();
        assert_eq!(db.len(), 500);
        for seq in &db {
            assert!(!seq.is_empty(), "every customer buys something");
            assert!(
                seq.windows(2).all(|w| w[0].0 < w[1].0),
                "eids strictly increase: {seq:?}"
            );
            for (_, items) in seq {
                assert!(!items.is_empty());
                assert!(items.windows(2).all(|w| w[0] < w[1]), "sorted+unique");
                assert!(items.iter().all(|i| i.0 < n));
            }
        }
    }

    #[test]
    fn sequence_length_tracks_c() {
        // |C| = 6 in tiny params; packing fills an item budget of about
        // |C|·|T|, but elements cluster on fewer events, so the average
        // non-empty event count sits below |C|. Generous band.
        let db = SeqGenerator::new(small_params()).generate_all();
        let events: usize = db.iter().map(Vec::len).sum();
        let avg = events as f64 / db.len() as f64;
        assert!((2.0..8.0).contains(&avg), "avg events per sequence {avg}");
        let items: usize = db.iter().flat_map(|s| s.iter()).map(|(_, i)| i.len()).sum();
        let avg_event_len = items as f64 / events as f64;
        assert!(
            (1.0..7.0).contains(&avg_event_len),
            "avg items per event {avg_event_len}"
        );
    }

    #[test]
    fn alphabet_coverage() {
        // 40 items in tiny params: most of the alphabet should occur,
        // and no item may dominate (planted patterns spread the mass).
        let db = SeqGenerator::new(small_params()).generate_all();
        let mut counts = vec![0usize; 40];
        let mut total = 0usize;
        for (_, items) in db.iter().flat_map(|s| s.iter()) {
            for i in items {
                counts[i.0 as usize] += 1;
                total += 1;
            }
        }
        let used = counts.iter().filter(|&&c| c > 0).count();
        assert!(used > 25, "items used: {used}");
        let max = *counts.iter().max().unwrap();
        assert!(
            (max as f64) < 0.35 * total as f64,
            "one item holds {max}/{total} occurrences"
        );
    }

    #[test]
    fn planted_sequences_recur() {
        // The point of the generator: planted sequences occur far more
        // often than chance. Take a small pattern with >= 2 elements and
        // count customers containing it as a subsequence.
        let gen = SeqGenerator::new(small_params());
        let pat: Vec<Vec<ItemId>> = (0..gen.table().len())
            .map(|i| gen.table().pattern(i).to_vec())
            .find(|p| p.len() >= 2 && p.iter().map(Vec::len).sum::<usize>() <= 5)
            .expect("some small pattern exists");
        let db = SeqGenerator::new(small_params()).generate_all();
        let contains = |seq: &[(u32, Vec<ItemId>)]| {
            let mut next = 0usize;
            for elem in &pat {
                match seq[next..]
                    .iter()
                    .position(|(_, ev)| elem.iter().all(|i| ev.binary_search(i).is_ok()))
                {
                    Some(off) => next += off + 1,
                    None => return false,
                }
            }
            true
        };
        let hits = db.iter().filter(|s| contains(s)).count();
        assert!(hits >= 2, "pattern {pat:?} occurred {hits} times");
    }

    #[test]
    fn pattern_table_shapes() {
        let p = SeqParams::c10_t4(10).with_seed(5);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let t = SeqPatternTable::build(&p, &mut rng);
        assert_eq!(t.len(), 1000);
        assert!(!t.is_empty());
        let mut total_elems = 0usize;
        for i in 0..t.len() {
            let pat = t.pattern(i);
            assert!(!pat.is_empty());
            for elem in pat {
                assert!(!elem.is_empty());
                assert!(elem.windows(2).all(|w| w[0] < w[1]));
            }
            assert!((0.0..=1.0).contains(&t.corruption(i)));
            total_elems += pat.len();
        }
        let avg = total_elems as f64 / t.len() as f64;
        assert!((avg - 4.0).abs() < 0.5, "avg pattern elems {avg}");
    }

    #[test]
    fn sample_sorted_is_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        for _ in 0..200 {
            sample_sorted(&mut rng, 4, 9, &mut out);
            assert_eq!(out.len(), 4);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "{out:?}");
            assert!(out.iter().all(|&i| i < 9));
        }
        sample_sorted(&mut rng, 7, 3, &mut out);
        assert_eq!(out, vec![0, 1, 2], "k > n clamps to all of 0..n");
        sample_sorted(&mut rng, 0, 5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn size_hint_is_exact_and_empty_works() {
        let mut g = SeqGenerator::new(SeqParams::tiny(5, 1));
        assert_eq!(g.size_hint(), (5, Some(5)));
        g.next();
        assert_eq!(g.size_hint(), (4, Some(4)));
        assert_eq!(g.count(), 4);
        assert!(SeqGenerator::new(SeqParams::tiny(0, 1))
            .generate_all()
            .is_empty());
    }

    #[test]
    fn raw_view_matches_typed_view() {
        let typed = SeqGenerator::new(small_params()).generate_all();
        let raw = SeqGenerator::new(small_params()).generate_all_raw();
        assert_eq!(typed.len(), raw.len());
        for (t, r) in typed.iter().zip(&raw) {
            assert_eq!(t.len(), r.len());
            for ((te, ti), (re, ri)) in t.iter().zip(r) {
                assert_eq!(te, re);
                assert_eq!(ti.iter().map(|i| i.0).collect::<Vec<_>>(), *ri);
            }
        }
    }
}
