//! IBM Quest-style synthetic market-basket data generator.
//!
//! Re-implements the generation procedure of Agrawal & Srikant, *Fast
//! Algorithms for Mining Association Rules* (VLDB 1994) — reference \[4\] of
//! the paper — which produced the `T10.I6.Dx` benchmark families used in
//! the paper's evaluation (Table 1): *"These have been used as benchmark
//! databases for many association rules algorithms … they mimic the
//! transactions in a retailing environment."*
//!
//! The procedure, as published:
//!
//! 1. A table of `|L|` *maximal potentially frequent itemsets* (patterns)
//!    is built over `N` items. Pattern sizes are Poisson with mean `|I|`;
//!    to model common shopping patterns, a fraction of each pattern's
//!    items (exponentially distributed fraction, mean = the correlation
//!    level) is copied from the previous pattern, the rest drawn at
//!    random. Each pattern gets an exponentially distributed weight
//!    (normalized to sum 1) and a *corruption level* drawn from a normal
//!    distribution (mean 0.5, variance 0.1).
//! 2. Each transaction draws a Poisson(`|T|`) size, then packs weighted-
//!    random patterns into itself. Patterns are *corrupted* on insertion —
//!    items are dropped while a uniform draw stays below the corruption
//!    level — so that true patterns appear partially in many baskets.
//!    A pattern that does not fit is added anyway half the time and
//!    deferred to the next transaction otherwise.
//!
//! Everything is seeded and deterministic; the same [`QuestParams`] always
//! produce byte-identical databases, which keeps every experiment in
//! EXPERIMENTS.md reproducible.

pub mod generator;
pub mod params;
pub mod sampler;
pub mod seq;

pub use generator::{DatabaseStats, PatternTable, QuestGenerator};
pub use params::QuestParams;
pub use seq::{SeqGenerator, SeqParams, SeqPatternTable};
