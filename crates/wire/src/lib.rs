//! Shared wire plumbing: length-prefixed framing, strict little-endian
//! payload decoding, and blocking-socket helpers.
//!
//! Both TCP surfaces of the workspace speak the same outer framing —
//! the query server (`assoc-serve`) and the distributed mining runtime
//! (`eclat-net`):
//!
//! ```text
//! frame := len:u32le  payload[len]
//! ```
//!
//! This crate owns that framing once ([`write_frame`] / [`read_frame`] /
//! [`Frame`], byte-for-byte the format `assoc-serve` pinned with its
//! loopback tests), plus the pieces every blocking protocol needs on top:
//!
//! * [`Cursor`] — a strict little-endian reader over a payload slice
//!   (truncation and trailing bytes are errors, never guesses);
//! * [`is_timeout`] — the portable read-timeout check (`WouldBlock` on
//!   Unix, `TimedOut` elsewhere);
//! * [`connect_retry`] / [`set_timeouts`] — connect with exponential
//!   backoff and per-socket read/write deadlines.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Write one frame (header + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum Frame {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer closed the connection cleanly before a header started.
    Eof,
    /// The announced length exceeded `max`; nothing further was read.
    TooLarge(usize),
}

/// Read one frame with the given payload-size limit.
///
/// Returns [`Frame::Eof`] only on a clean close at a frame boundary; a
/// connection dropped mid-frame surfaces as an
/// [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> io::Result<Frame> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(Frame::Eof);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max {
        return Ok(Frame::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Frame::Payload(payload))
}

/// A strict-decoding failure inside a frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Payload ended before the announced structure was complete.
    Truncated,
    /// Bytes remained after a complete message was decoded.
    TrailingBytes(usize),
    /// First byte was not a known opcode.
    BadOpcode(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated payload"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Strict little-endian reader over a payload slice. Every read checks
/// bounds; [`Cursor::finish`] rejects trailing bytes, so a decoder built
/// on it accepts exactly one well-formed encoding.
pub struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    /// Take the next `n` raw bytes.
    ///
    /// # Errors
    /// [`DecodeError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Next `u16` (little-endian).
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Next `u32` (little-endian).
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next `u64` (little-endian).
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next `f64` (little-endian bit pattern).
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next length-prefixed UTF-8 string (`len:u16le utf8[len]`).
    pub fn str16(&mut self) -> Result<String, DecodeError> {
        let n = self.u16()? as usize;
        let s = std::str::from_utf8(self.take(n)?).map_err(|_| DecodeError::BadUtf8)?;
        Ok(s.to_string())
    }

    /// Assert the payload was fully consumed.
    ///
    /// # Errors
    /// [`DecodeError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.at != self.buf.len() {
            return Err(DecodeError::TrailingBytes(self.buf.len() - self.at));
        }
        Ok(())
    }
}

/// Append a `u16` (little-endian).
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` (little-endian).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` (little-endian bit pattern).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a length-prefixed UTF-8 string (`len:u16le utf8[len]`),
/// truncating at `u16::MAX` bytes.
pub fn put_str16(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    put_u16(buf, n as u16);
    buf.extend_from_slice(&bytes[..n]);
}

/// Whether an I/O error is a read/write timeout. Blocking sockets report
/// expired deadlines as `WouldBlock` on Unix and `TimedOut` on Windows;
/// servers treat both as "peer idled too long".
pub fn is_timeout(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
}

/// Apply read/write deadlines to a socket (`None` = block forever).
pub fn set_timeouts(
    stream: &TcpStream,
    read: Option<Duration>,
    write: Option<Duration>,
) -> io::Result<()> {
    stream.set_read_timeout(read)?;
    stream.set_write_timeout(write)?;
    Ok(())
}

/// Connect with retries and exponential backoff: attempt `1 + retries`
/// connects, sleeping `backoff`, `2·backoff`, `4·backoff`, … between
/// failures. Returns the last error if every attempt fails.
pub fn connect_retry<A: ToSocketAddrs + Copy>(
    addr: A,
    retries: u32,
    backoff: Duration,
) -> io::Result<TcpStream> {
    let mut wait = backoff;
    let mut last_err = None;
    for attempt in 0..=retries {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
        if attempt < retries {
            std::thread::sleep(wait);
            wait = wait.saturating_mul(2);
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no connect attempts")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_io_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap();
        assert_eq!(buf, vec![3, 0, 0, 0, 1, 2, 3]);
        let mut r = &buf[..];
        match read_frame(&mut r, 16).unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![1, 2, 3]),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, 16).unwrap() {
            Frame::Eof => {}
            other => panic!("{other:?}"),
        }

        let mut r = &buf[..];
        match read_frame(&mut r, 2).unwrap() {
            Frame::TooLarge(3) => {}
            other => panic!("{other:?}"),
        }

        // Mid-header close is an error, not Eof.
        let mut r = &buf[..2];
        assert_eq!(
            read_frame(&mut r, 16).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Mid-payload close too.
        let mut r = &buf[..5];
        assert_eq!(
            read_frame(&mut r, 16).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn cursor_reads_are_strict() {
        let mut buf = Vec::new();
        buf.push(0xAB);
        put_u16(&mut buf, 1234);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -2.5);
        put_str16(&mut buf, "héllo");

        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 0xAB);
        assert_eq!(c.u16().unwrap(), 1234);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.f64().unwrap(), -2.5);
        assert_eq!(c.str16().unwrap(), "héllo");
        c.finish().unwrap();

        // Truncation and trailing bytes are both rejected.
        let mut c = Cursor::new(&buf[..3]);
        assert_eq!(c.u8().unwrap(), 0xAB);
        assert_eq!(c.u32(), Err(DecodeError::Truncated));
        let mut c = Cursor::new(&buf);
        c.u8().unwrap();
        assert_eq!(c.finish(), Err(DecodeError::TrailingBytes(buf.len() - 1)));

        // Invalid UTF-8 in a string field.
        let mut bad = Vec::new();
        put_u16(&mut bad, 1);
        bad.push(0xFF);
        assert_eq!(Cursor::new(&bad).str16(), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn timeout_classification() {
        assert!(is_timeout(&io::Error::new(io::ErrorKind::WouldBlock, "x")));
        assert!(is_timeout(&io::Error::new(io::ErrorKind::TimedOut, "x")));
        assert!(!is_timeout(&io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "x"
        )));
    }

    #[test]
    fn connect_retry_reports_last_error() {
        // Port 1 on loopback is essentially never listening.
        let err = connect_retry("127.0.0.1:1", 1, Duration::from_millis(1)).unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::Other);
    }

    #[test]
    fn connect_retry_succeeds_against_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_retry(addr, 2, Duration::from_millis(1)).unwrap();
        set_timeouts(&stream, Some(Duration::from_millis(50)), None).unwrap();
    }
}
