//! The coordinator/worker message set and its binary codec.
//!
//! Every message rides one [`wire`] frame (`len:u32le payload`). The
//! payload starts with a one-byte opcode followed by the fields below,
//! all little-endian, decoded strictly (truncation, trailing bytes and
//! unknown opcodes are errors, never guesses). Opcodes start at `0x10`
//! so no `eclat-net` payload is a valid `assoc-serve` query byte-stream.
//!
//! Except for `Hello` (which carries the protocol version precisely so
//! version skew is caught before anything else is interpreted), every
//! message leads with the 64-bit `run_id` minted by the coordinator —
//! the tag that keeps concurrent runs on a shared worker fleet from
//! cross-talking.

use eclat::{EclatConfig, Representation};
use mining_types::stats::{ClassStats, KernelStats, LevelCounts};
use mining_types::OpMeter;
use wire::{Cursor, DecodeError};

/// Version tag carried by `Hello`; bumped on any wire-format change.
/// Version 2 extended [`WorkerStats`] with per-thread timing and spill
/// I/O (multi-core + out-of-core workers).
pub const PROTOCOL_VERSION: u32 = 2;

/// Frame-size ceiling for mining traffic. Tid-list exchanges legitimately
/// carry tens of megabytes; anything past this is a corrupt length.
pub const MAX_NET_FRAME: usize = 256 << 20;

const OP_HELLO: u8 = 0x10;
const OP_HELLO_ACK: u8 = 0x11;
const OP_ASSIGN: u8 = 0x12;
const OP_COUNTS: u8 = 0x13;
const OP_PLAN: u8 = 0x14;
const OP_PARTIALS: u8 = 0x15;
const OP_PARTIALS_ACK: u8 = 0x16;
const OP_EXCHANGE_DONE: u8 = 0x17;
const OP_RESULT: u8 = 0x18;
const OP_ABORT: u8 = 0x19;
const OP_GOODBYE: u8 = 0x1A;

const FLAG_SHORT_CIRCUIT: u8 = 1 << 0;
const FLAG_PRUNE: u8 = 1 << 1;
const FLAG_COUNT_ITEMS: u8 = 1 << 2;
const FLAG_GALLOP: u8 = 1 << 3;

const REPR_TIDLIST: u8 = 0;
const REPR_DIFFSET: u8 = 1;
const REPR_AUTOSWITCH: u8 = 2;
const REPR_BITMAP: u8 = 3;
// The `repr_depth` field carries the density threshold (permille).
const REPR_AUTODENSITY: u8 = 4;

/// Per-worker measured statistics returned with [`Message::Result`] —
/// the real-TCP counterpart of the simulator's per-processor trace. A
/// worker is a *host* in the paper's hybrid sense: the serial phases run
/// on the session thread, the asynchronous phase on `threads` local
/// processors, each reporting its own busy time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Seconds the session thread spent computing in the serial phases
    /// (counting, transform, assembly) — async mining is reported per
    /// thread in `thread_compute_secs`.
    pub compute_secs: f64,
    /// Seconds spent in socket I/O (sends, peer connects, acks).
    pub net_secs: f64,
    /// Seconds blocked waiting (coordinator frames, peer partials).
    pub idle_secs: f64,
    /// Wall seconds from `Hello` to `Result` sent.
    pub finish_secs: f64,
    /// Frame bytes written (headers included).
    pub bytes_sent: u64,
    /// Frame bytes read (headers included).
    pub bytes_received: u64,
    /// Mining threads used in the asynchronous phase (≥ 1).
    pub threads: u32,
    /// Per-thread seconds inside the mining kernel (`threads` entries).
    pub thread_compute_secs: Vec<f64>,
    /// Per-thread seconds of spill I/O: class faults on the owning
    /// thread, eviction writes on thread 0 (`threads` entries).
    pub thread_disk_secs: Vec<f64>,
    /// Bytes of evicted classes written to the spill store.
    pub spill_bytes_written: u64,
    /// Bytes of spilled classes faulted back in.
    pub spill_bytes_read: u64,
    /// Operation counters of the local counting pass.
    pub init_ops: OpMeter,
    /// Operation counters of partial-list construction + assembly.
    pub transform_ops: OpMeter,
    /// Operation counters of the asynchronous mining phase.
    pub async_ops: OpMeter,
    /// Per-class kernel statistics for the classes this worker owned.
    pub classes: Vec<ClassStats>,
}

/// One protocol message. See the module docs for framing.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Coordinator → worker: open a mining session.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// Coordinator-minted run tag.
        run_id: u64,
        /// This worker's rank in `0..num_workers`.
        rank: u32,
        /// Cluster size.
        num_workers: u32,
    },
    /// Worker → coordinator: session accepted.
    HelloAck {
        /// Echoed run tag.
        run_id: u64,
    },
    /// Coordinator → worker: the database block and mining parameters.
    Assign {
        /// Run tag.
        run_id: u64,
        /// Absolute support threshold (already resolved from minsup).
        threshold: u32,
        /// First global tid of this worker's block (§6.3 offset).
        tid_offset: u32,
        /// `FLAG_*` bits of the mining configuration.
        flags: u8,
        /// Tid-list representation tag (`REPR_*`).
        repr_tag: u8,
        /// `AutoSwitch` depth (ignored for other representations).
        repr_depth: u32,
        /// The horizontal block in `dbstore::binfmt` encoding, carrying
        /// the *global* item universe size.
        block: Vec<u8>,
    },
    /// Worker → coordinator: local counts for the sum-reduction.
    Counts {
        /// Run tag.
        run_id: u64,
        /// Item universe size the triangle covers.
        num_items: u32,
        /// Flat local upper-triangular pair counts (`C(n,2)` cells).
        triangle: Vec<u32>,
        /// Local singleton counts (empty unless `FLAG_COUNT_ITEMS`).
        items: Vec<u32>,
    },
    /// Coordinator → worker: global `L2` and the exchange routing plan.
    Plan {
        /// Run tag.
        run_id: u64,
        /// Global frequent pairs, ascending; index = slot.
        l2: Vec<(u32, u32)>,
        /// `slot_owner[s]` = rank owning slot `s`'s class.
        slot_owner: Vec<u32>,
        /// Listen address of every worker, indexed by rank.
        peers: Vec<String>,
    },
    /// Worker → worker: partial tid-lists for slots the receiver owns.
    /// Sent to *every* peer (possibly with no entries) so owners can
    /// detect rank-completeness; tids are already globally offset.
    Partials {
        /// Run tag.
        run_id: u64,
        /// Sender's rank.
        from_rank: u32,
        /// `(slot, global tids)` pairs, slots ascending.
        entries: Vec<(u32, Vec<u32>)>,
    },
    /// Worker → worker: partials deposited.
    PartialsAck {
        /// Run tag.
        run_id: u64,
    },
    /// Worker → coordinator: exchange complete, local mining starting.
    /// Lets the coordinator split transform from async wall time without
    /// inserting a barrier — the worker mines on immediately (§5.3).
    ExchangeDone {
        /// Run tag.
        run_id: u64,
    },
    /// Worker → coordinator: the final reduction payload.
    Result {
        /// Run tag.
        run_id: u64,
        /// Sender's rank.
        rank: u32,
        /// Frequent itemsets mined from the owned classes.
        frequent: Vec<(Vec<u32>, u32)>,
        /// Measured per-worker statistics (boxed: the per-thread
        /// vectors make this by far the largest variant).
        stats: Box<WorkerStats>,
    },
    /// Either direction: the run is dead; `message` says why.
    Abort {
        /// Run tag (0 when the failure precedes run identification).
        run_id: u64,
        /// Rank of the reporting party (`u32::MAX` from the coordinator).
        rank: u32,
        /// Human-readable diagnostic.
        message: String,
    },
    /// Coordinator → worker: clean end of session.
    Goodbye {
        /// Run tag.
        run_id: u64,
    },
}

/// Pack the worker-relevant part of an [`EclatConfig`] for `Assign`.
/// `count_items` asks the worker to also count singletons locally.
pub fn encode_config(cfg: &EclatConfig, count_items: bool) -> (u8, u8, u32) {
    let mut flags = 0u8;
    if cfg.short_circuit {
        flags |= FLAG_SHORT_CIRCUIT;
    }
    if cfg.prune {
        flags |= FLAG_PRUNE;
    }
    if count_items {
        flags |= FLAG_COUNT_ITEMS;
    }
    if cfg.gallop {
        flags |= FLAG_GALLOP;
    }
    let (tag, depth) = match cfg.representation {
        Representation::TidList => (REPR_TIDLIST, 0),
        Representation::Diffset => (REPR_DIFFSET, 0),
        Representation::AutoSwitch { depth } => (REPR_AUTOSWITCH, depth),
        Representation::Bitmap => (REPR_BITMAP, 0),
        Representation::AutoDensity { permille } => (REPR_AUTODENSITY, permille),
    };
    (flags, tag, depth)
}

/// Rebuild the worker-side mining config from `Assign` fields. Returns
/// the config plus the `count_items` request. Singletons are always
/// inserted at the coordinator (it holds the summed global counts), so
/// the reconstructed config never sets `include_singletons`.
pub fn decode_config(
    flags: u8,
    repr_tag: u8,
    repr_depth: u32,
) -> Result<(EclatConfig, bool), DecodeError> {
    let representation = match repr_tag {
        REPR_TIDLIST => Representation::TidList,
        REPR_DIFFSET => Representation::Diffset,
        REPR_AUTOSWITCH => Representation::AutoSwitch { depth: repr_depth },
        REPR_BITMAP => Representation::Bitmap,
        REPR_AUTODENSITY => Representation::AutoDensity {
            permille: repr_depth,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    let cfg = EclatConfig {
        short_circuit: flags & FLAG_SHORT_CIRCUIT != 0,
        prune: flags & FLAG_PRUNE != 0,
        gallop: flags & FLAG_GALLOP != 0,
        representation,
        ..EclatConfig::default()
    };
    Ok((cfg, flags & FLAG_COUNT_ITEMS != 0))
}

fn put_u32_vec(buf: &mut Vec<u8>, v: &[u32]) {
    wire::put_u32(buf, v.len() as u32);
    for &x in v {
        wire::put_u32(buf, x);
    }
}

fn read_u32_vec(c: &mut Cursor<'_>) -> Result<Vec<u32>, DecodeError> {
    let n = c.u32()? as usize;
    let raw = c.take(n.checked_mul(4).ok_or(DecodeError::Truncated)?)?;
    Ok(raw
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        .collect())
}

fn put_f64_vec(buf: &mut Vec<u8>, v: &[f64]) {
    wire::put_u32(buf, v.len() as u32);
    for &x in v {
        wire::put_f64(buf, x);
    }
}

fn read_f64_vec(c: &mut Cursor<'_>) -> Result<Vec<f64>, DecodeError> {
    let n = c.u32()? as usize;
    let mut v = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        v.push(c.f64()?);
    }
    Ok(v)
}

fn put_meter(buf: &mut Vec<u8>, m: &OpMeter) {
    for v in [
        m.tid_cmp,
        m.hash_probe,
        m.pair_incr,
        m.subsets_gen,
        m.cand_gen,
        m.record,
    ] {
        wire::put_u64(buf, v);
    }
}

fn read_meter(c: &mut Cursor<'_>) -> Result<OpMeter, DecodeError> {
    Ok(OpMeter {
        tid_cmp: c.u64()?,
        hash_probe: c.u64()?,
        pair_incr: c.u64()?,
        subsets_gen: c.u64()?,
        cand_gen: c.u64()?,
        record: c.u64()?,
    })
}

fn put_class(buf: &mut Vec<u8>, cs: &ClassStats) {
    wire::put_u16(buf, cs.prefix.len() as u16);
    for &p in &cs.prefix {
        wire::put_u32(buf, p);
    }
    wire::put_u64(buf, cs.members);
    let k = &cs.kernel;
    for v in [
        k.joins,
        k.frequent,
        k.infrequent,
        k.short_circuit_hits,
        k.peak_tid_bytes,
        k.switch_events,
    ] {
        wire::put_u64(buf, v);
    }
    wire::put_u32(buf, k.levels.len() as u32);
    for l in &k.levels {
        wire::put_u64(buf, l.size);
        wire::put_u64(buf, l.candidates);
        wire::put_u64(buf, l.frequent);
    }
}

fn read_class(c: &mut Cursor<'_>) -> Result<ClassStats, DecodeError> {
    let np = c.u16()? as usize;
    let mut prefix = Vec::with_capacity(np);
    for _ in 0..np {
        prefix.push(c.u32()?);
    }
    let members = c.u64()?;
    let mut kernel = KernelStats {
        joins: c.u64()?,
        frequent: c.u64()?,
        infrequent: c.u64()?,
        short_circuit_hits: c.u64()?,
        peak_tid_bytes: c.u64()?,
        switch_events: c.u64()?,
        levels: Vec::new(),
    };
    let nl = c.u32()? as usize;
    for _ in 0..nl {
        kernel.levels.push(LevelCounts {
            size: c.u64()?,
            candidates: c.u64()?,
            frequent: c.u64()?,
        });
    }
    Ok(ClassStats {
        prefix,
        members,
        kernel,
    })
}

fn put_worker_stats(buf: &mut Vec<u8>, s: &WorkerStats) {
    wire::put_f64(buf, s.compute_secs);
    wire::put_f64(buf, s.net_secs);
    wire::put_f64(buf, s.idle_secs);
    wire::put_f64(buf, s.finish_secs);
    wire::put_u64(buf, s.bytes_sent);
    wire::put_u64(buf, s.bytes_received);
    wire::put_u32(buf, s.threads);
    put_f64_vec(buf, &s.thread_compute_secs);
    put_f64_vec(buf, &s.thread_disk_secs);
    wire::put_u64(buf, s.spill_bytes_written);
    wire::put_u64(buf, s.spill_bytes_read);
    put_meter(buf, &s.init_ops);
    put_meter(buf, &s.transform_ops);
    put_meter(buf, &s.async_ops);
    wire::put_u32(buf, s.classes.len() as u32);
    for cs in &s.classes {
        put_class(buf, cs);
    }
}

fn read_worker_stats(c: &mut Cursor<'_>) -> Result<WorkerStats, DecodeError> {
    let mut s = WorkerStats {
        compute_secs: c.f64()?,
        net_secs: c.f64()?,
        idle_secs: c.f64()?,
        finish_secs: c.f64()?,
        bytes_sent: c.u64()?,
        bytes_received: c.u64()?,
        threads: c.u32()?,
        thread_compute_secs: read_f64_vec(c)?,
        thread_disk_secs: read_f64_vec(c)?,
        spill_bytes_written: c.u64()?,
        spill_bytes_read: c.u64()?,
        init_ops: read_meter(c)?,
        transform_ops: read_meter(c)?,
        async_ops: read_meter(c)?,
        classes: Vec::new(),
    };
    let nc = c.u32()? as usize;
    for _ in 0..nc {
        s.classes.push(read_class(c)?);
    }
    Ok(s)
}

impl Message {
    /// The run tag this message carries (`Hello`'s tag included).
    pub fn run_id(&self) -> u64 {
        match self {
            Message::Hello { run_id, .. }
            | Message::HelloAck { run_id }
            | Message::Assign { run_id, .. }
            | Message::Counts { run_id, .. }
            | Message::Plan { run_id, .. }
            | Message::Partials { run_id, .. }
            | Message::PartialsAck { run_id }
            | Message::ExchangeDone { run_id }
            | Message::Result { run_id, .. }
            | Message::Abort { run_id, .. }
            | Message::Goodbye { run_id } => *run_id,
        }
    }

    /// Short human label, for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::HelloAck { .. } => "HelloAck",
            Message::Assign { .. } => "Assign",
            Message::Counts { .. } => "Counts",
            Message::Plan { .. } => "Plan",
            Message::Partials { .. } => "Partials",
            Message::PartialsAck { .. } => "PartialsAck",
            Message::ExchangeDone { .. } => "ExchangeDone",
            Message::Result { .. } => "Result",
            Message::Abort { .. } => "Abort",
            Message::Goodbye { .. } => "Goodbye",
        }
    }

    /// Encode to one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Hello {
                version,
                run_id,
                rank,
                num_workers,
            } => {
                buf.push(OP_HELLO);
                wire::put_u32(&mut buf, *version);
                wire::put_u64(&mut buf, *run_id);
                wire::put_u32(&mut buf, *rank);
                wire::put_u32(&mut buf, *num_workers);
            }
            Message::HelloAck { run_id } => {
                buf.push(OP_HELLO_ACK);
                wire::put_u64(&mut buf, *run_id);
            }
            Message::Assign {
                run_id,
                threshold,
                tid_offset,
                flags,
                repr_tag,
                repr_depth,
                block,
            } => {
                buf.push(OP_ASSIGN);
                wire::put_u64(&mut buf, *run_id);
                wire::put_u32(&mut buf, *threshold);
                wire::put_u32(&mut buf, *tid_offset);
                buf.push(*flags);
                buf.push(*repr_tag);
                wire::put_u32(&mut buf, *repr_depth);
                wire::put_u32(&mut buf, block.len() as u32);
                buf.extend_from_slice(block);
            }
            Message::Counts {
                run_id,
                num_items,
                triangle,
                items,
            } => {
                buf.push(OP_COUNTS);
                wire::put_u64(&mut buf, *run_id);
                wire::put_u32(&mut buf, *num_items);
                put_u32_vec(&mut buf, triangle);
                put_u32_vec(&mut buf, items);
            }
            Message::Plan {
                run_id,
                l2,
                slot_owner,
                peers,
            } => {
                buf.push(OP_PLAN);
                wire::put_u64(&mut buf, *run_id);
                wire::put_u32(&mut buf, l2.len() as u32);
                for &(a, b) in l2 {
                    wire::put_u32(&mut buf, a);
                    wire::put_u32(&mut buf, b);
                }
                put_u32_vec(&mut buf, slot_owner);
                wire::put_u32(&mut buf, peers.len() as u32);
                for p in peers {
                    wire::put_str16(&mut buf, p);
                }
            }
            Message::Partials {
                run_id,
                from_rank,
                entries,
            } => {
                buf.push(OP_PARTIALS);
                wire::put_u64(&mut buf, *run_id);
                wire::put_u32(&mut buf, *from_rank);
                wire::put_u32(&mut buf, entries.len() as u32);
                for (slot, tids) in entries {
                    wire::put_u32(&mut buf, *slot);
                    put_u32_vec(&mut buf, tids);
                }
            }
            Message::PartialsAck { run_id } => {
                buf.push(OP_PARTIALS_ACK);
                wire::put_u64(&mut buf, *run_id);
            }
            Message::ExchangeDone { run_id } => {
                buf.push(OP_EXCHANGE_DONE);
                wire::put_u64(&mut buf, *run_id);
            }
            Message::Result {
                run_id,
                rank,
                frequent,
                stats,
            } => {
                buf.push(OP_RESULT);
                wire::put_u64(&mut buf, *run_id);
                wire::put_u32(&mut buf, *rank);
                wire::put_u32(&mut buf, frequent.len() as u32);
                for (items, support) in frequent {
                    wire::put_u16(&mut buf, items.len() as u16);
                    for &it in items {
                        wire::put_u32(&mut buf, it);
                    }
                    wire::put_u32(&mut buf, *support);
                }
                put_worker_stats(&mut buf, stats);
            }
            Message::Abort {
                run_id,
                rank,
                message,
            } => {
                buf.push(OP_ABORT);
                wire::put_u64(&mut buf, *run_id);
                wire::put_u32(&mut buf, *rank);
                wire::put_str16(&mut buf, message);
            }
            Message::Goodbye { run_id } => {
                buf.push(OP_GOODBYE);
                wire::put_u64(&mut buf, *run_id);
            }
        }
        buf
    }

    /// Decode one frame payload, strictly.
    pub fn decode(payload: &[u8]) -> Result<Message, DecodeError> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let msg = match op {
            OP_HELLO => Message::Hello {
                version: c.u32()?,
                run_id: c.u64()?,
                rank: c.u32()?,
                num_workers: c.u32()?,
            },
            OP_HELLO_ACK => Message::HelloAck { run_id: c.u64()? },
            OP_ASSIGN => {
                let run_id = c.u64()?;
                let threshold = c.u32()?;
                let tid_offset = c.u32()?;
                let flags = c.u8()?;
                let repr_tag = c.u8()?;
                let repr_depth = c.u32()?;
                let blen = c.u32()? as usize;
                let block = c.take(blen)?.to_vec();
                Message::Assign {
                    run_id,
                    threshold,
                    tid_offset,
                    flags,
                    repr_tag,
                    repr_depth,
                    block,
                }
            }
            OP_COUNTS => Message::Counts {
                run_id: c.u64()?,
                num_items: c.u32()?,
                triangle: read_u32_vec(&mut c)?,
                items: read_u32_vec(&mut c)?,
            },
            OP_PLAN => {
                let run_id = c.u64()?;
                let nl = c.u32()? as usize;
                let mut l2 = Vec::with_capacity(nl);
                for _ in 0..nl {
                    l2.push((c.u32()?, c.u32()?));
                }
                let slot_owner = read_u32_vec(&mut c)?;
                let np = c.u32()? as usize;
                let mut peers = Vec::with_capacity(np);
                for _ in 0..np {
                    peers.push(c.str16()?);
                }
                Message::Plan {
                    run_id,
                    l2,
                    slot_owner,
                    peers,
                }
            }
            OP_PARTIALS => {
                let run_id = c.u64()?;
                let from_rank = c.u32()?;
                let ne = c.u32()? as usize;
                let mut entries = Vec::with_capacity(ne.min(1 << 20));
                for _ in 0..ne {
                    let slot = c.u32()?;
                    entries.push((slot, read_u32_vec(&mut c)?));
                }
                Message::Partials {
                    run_id,
                    from_rank,
                    entries,
                }
            }
            OP_PARTIALS_ACK => Message::PartialsAck { run_id: c.u64()? },
            OP_EXCHANGE_DONE => Message::ExchangeDone { run_id: c.u64()? },
            OP_RESULT => {
                let run_id = c.u64()?;
                let rank = c.u32()?;
                let nf = c.u32()? as usize;
                let mut frequent = Vec::with_capacity(nf.min(1 << 20));
                for _ in 0..nf {
                    let ni = c.u16()? as usize;
                    let mut items = Vec::with_capacity(ni);
                    for _ in 0..ni {
                        items.push(c.u32()?);
                    }
                    frequent.push((items, c.u32()?));
                }
                let stats = Box::new(read_worker_stats(&mut c)?);
                Message::Result {
                    run_id,
                    rank,
                    frequent,
                    stats,
                }
            }
            OP_ABORT => Message::Abort {
                run_id: c.u64()?,
                rank: c.u32()?,
                message: c.str16()?,
            },
            OP_GOODBYE => Message::Goodbye { run_id: c.u64()? },
            other => return Err(DecodeError::BadOpcode(other)),
        };
        c.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg, "{}", msg.label());
    }

    #[test]
    fn every_message_round_trips() {
        roundtrip(Message::Hello {
            version: PROTOCOL_VERSION,
            run_id: 0xDEAD_BEEF_0042,
            rank: 3,
            num_workers: 8,
        });
        roundtrip(Message::HelloAck { run_id: 7 });
        roundtrip(Message::Assign {
            run_id: 7,
            threshold: 12,
            tid_offset: 1000,
            flags: FLAG_SHORT_CIRCUIT | FLAG_COUNT_ITEMS,
            repr_tag: REPR_AUTOSWITCH,
            repr_depth: 3,
            block: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Message::Counts {
            run_id: 7,
            num_items: 4,
            triangle: vec![0, 5, 2, 9, 0, 1],
            items: vec![],
        });
        roundtrip(Message::Plan {
            run_id: 7,
            l2: vec![(0, 1), (0, 3), (2, 3)],
            slot_owner: vec![0, 0, 1],
            peers: vec!["127.0.0.1:4000".into(), "127.0.0.1:4001".into()],
        });
        roundtrip(Message::Partials {
            run_id: 7,
            from_rank: 1,
            entries: vec![(0, vec![10, 11, 19]), (2, vec![])],
        });
        roundtrip(Message::PartialsAck { run_id: 7 });
        roundtrip(Message::ExchangeDone { run_id: 7 });
        roundtrip(Message::Result {
            run_id: 7,
            rank: 2,
            frequent: vec![(vec![0, 1], 9), (vec![0, 1, 3], 5)],
            stats: Box::new(WorkerStats {
                compute_secs: 0.25,
                net_secs: 0.5,
                idle_secs: 0.125,
                finish_secs: 1.0,
                bytes_sent: 1234,
                bytes_received: 5678,
                threads: 2,
                thread_compute_secs: vec![0.125, 0.0625],
                thread_disk_secs: vec![0.03125, 0.0],
                spill_bytes_written: 4096,
                spill_bytes_read: 4096,
                init_ops: OpMeter {
                    pair_incr: 42,
                    ..OpMeter::new()
                },
                transform_ops: OpMeter::new(),
                async_ops: OpMeter {
                    tid_cmp: 99,
                    ..OpMeter::new()
                },
                classes: vec![ClassStats {
                    prefix: vec![0],
                    members: 2,
                    kernel: KernelStats {
                        joins: 1,
                        frequent: 1,
                        levels: vec![LevelCounts {
                            size: 3,
                            candidates: 1,
                            frequent: 1,
                        }],
                        ..KernelStats::new()
                    },
                }],
            }),
        });
        roundtrip(Message::Abort {
            run_id: 7,
            rank: u32::MAX,
            message: "worker 3 died mid-exchange".into(),
        });
        roundtrip(Message::Goodbye { run_id: 7 });
    }

    #[test]
    fn strict_decoding_rejects_garbage() {
        assert_eq!(Message::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(Message::decode(&[0x42]), Err(DecodeError::BadOpcode(0x42)));
        let mut ok = Message::Goodbye { run_id: 1 }.encode();
        ok.push(0);
        assert_eq!(Message::decode(&ok), Err(DecodeError::TrailingBytes(1)));
        let short = &Message::HelloAck { run_id: 1 }.encode()[..4];
        assert_eq!(Message::decode(short), Err(DecodeError::Truncated));
    }

    #[test]
    fn config_round_trips_through_flags() {
        for repr in [
            Representation::TidList,
            Representation::Diffset,
            Representation::AutoSwitch { depth: 4 },
            Representation::Bitmap,
            Representation::AutoDensity { permille: 8 },
        ] {
            let cfg = EclatConfig {
                prune: true,
                gallop: true,
                ..EclatConfig::with_representation(repr)
            };
            let (flags, tag, depth) = encode_config(&cfg, true);
            let (back, count_items) = decode_config(flags, tag, depth).unwrap();
            assert!(count_items);
            assert_eq!(back.representation, cfg.representation);
            assert_eq!(back.short_circuit, cfg.short_circuit);
            assert_eq!(back.prune, cfg.prune);
            assert_eq!(back.gallop, cfg.gallop);
            assert!(!back.include_singletons, "singletons stay coordinator-side");
        }
        assert!(decode_config(0, 9, 0).is_err());
    }
}
