//! The coordinator: drives the paper's four phases over real sockets.
//!
//! [`mine_distributed`] is the TCP counterpart of the Memory Channel
//! simulation in `eclat::cluster::mine_cluster` — same phases, same
//! schedule, same §6.3 offset-placement exchange, but every collective
//! is a real message:
//!
//! | Memory Channel primitive | TCP counterpart                          |
//! |--------------------------|------------------------------------------|
//! | sum-reduction of L2      | workers send `Counts`; coordinator merges |
//! | schedule broadcast       | `Plan` to every worker                   |
//! | lock-step exchange       | worker↔worker `Partials` streams         |
//! | final reduction          | workers send `Result`; coordinator merges |
//!
//! Failure policy: any worker that dies, stalls past a deadline, or
//! violates the protocol aborts the whole run — the coordinator sends
//! `Abort` to the survivors (so their sessions unwind instead of
//! hanging) and returns the diagnostic to the caller.

use crate::proto::{encode_config, Message, WorkerStats, MAX_NET_FRAME, PROTOCOL_VERSION};
use crate::NetError;
use dbstore::{binfmt, BlockPartition, HorizontalDb};
use eclat::schedule::schedule_l2;
use eclat::EclatConfig;
use mining_types::stats::{ClusterStats, MiningStats, PhaseStats, ProcStats};
use mining_types::{FrequentSet, ItemId, Itemset, MinSupport, OpMeter, TriangleMatrix};
use std::net::TcpStream;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use wire::{read_frame, write_frame, Frame};

/// Stats-report variant label of real distributed runs.
pub const VARIANT_DIST: &str = "dist";

/// Coordinator knobs.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// The mining configuration every worker runs with.
    pub cfg: EclatConfig,
    /// Connect attempts (beyond the first) per worker.
    pub connect_retries: u32,
    /// Initial backoff between connect attempts (doubles each try).
    pub connect_backoff: Duration,
    /// Per-socket read/write deadline. Bounds how long any single wait
    /// for a worker frame may take before the run is aborted.
    pub io_timeout: Duration,
    /// Override the run tag (tests); `None` mints one from the clock
    /// and pid so concurrent runs on a shared fleet stay distinct.
    pub run_id: Option<u64>,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            cfg: EclatConfig::default(),
            connect_retries: 10,
            connect_backoff: Duration::from_millis(50),
            io_timeout: Duration::from_secs(120),
            run_id: None,
        }
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// The mined frequent itemsets (identical to sequential Eclat's).
    pub frequent: FrequentSet,
    /// Structured stats: measured phases, per-class kernel work, and a
    /// per-worker `cluster` section in the simulator's schema.
    pub stats: MiningStats,
    /// Number of frequent 2-itemsets (the scheduling input size).
    pub num_l2: usize,
    /// Cluster size.
    pub num_workers: usize,
    /// Bytes of evicted classes the workers wrote to their spill stores
    /// (zero unless a worker ran under a memory budget it exceeded).
    pub spill_bytes_written: u64,
    /// Bytes of spilled classes the workers faulted back in.
    pub spill_bytes_read: u64,
}

struct WorkerConn {
    rank: u32,
    addr: String,
    stream: TcpStream,
}

impl WorkerConn {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        write_frame(&mut self.stream, &msg.encode()).map_err(|e| NetError::Worker {
            rank: self.rank,
            message: format!("send to {} failed: {e}", self.addr),
        })
    }

    /// Read the next frame; a worker-side `Abort` becomes an error, and
    /// so do closes, timeouts, and run-id mismatches.
    fn recv(&mut self, expecting: &str) -> Result<Message, NetError> {
        let frame = read_frame(&mut self.stream, MAX_NET_FRAME).map_err(|e| {
            let verb = if wire::is_timeout(&e) {
                "stalled"
            } else {
                "died"
            };
            NetError::Worker {
                rank: self.rank,
                message: format!(
                    "worker {} ({}) {verb} while coordinator expected {expecting}: {e}",
                    self.rank, self.addr
                ),
            }
        })?;
        let payload = match frame {
            Frame::Payload(p) => p,
            Frame::Eof => {
                return Err(NetError::Worker {
                    rank: self.rank,
                    message: format!(
                    "worker {} ({}) closed its connection while coordinator expected {expecting}",
                    self.rank, self.addr
                ),
                })
            }
            Frame::TooLarge(n) => {
                return Err(NetError::Worker {
                    rank: self.rank,
                    message: format!(
                        "worker {} sent a {n}-byte frame (limit {MAX_NET_FRAME})",
                        self.rank
                    ),
                })
            }
        };
        let msg = Message::decode(&payload)?;
        if let Message::Abort { rank, message, .. } = msg {
            return Err(NetError::Worker { rank, message });
        }
        Ok(msg)
    }
}

/// Best-effort `Abort` to every worker so their sessions unwind.
fn abort_all(conns: &mut [WorkerConn], run_id: u64, message: &str) {
    for c in conns.iter_mut() {
        let _ = c.send(&Message::Abort {
            run_id,
            rank: u32::MAX,
            message: message.to_string(),
        });
    }
}

fn mint_run_id() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ ((std::process::id() as u64) << 48)
}

/// Mine `db` across the workers listening at `workers`, coordinating
/// the four phases of the paper over TCP. The frequent set is exactly
/// the sequential miner's for any worker count and partition.
///
/// # Errors
/// Connection failures, protocol violations, and worker deaths abort
/// the run: survivors get an `Abort` and the diagnostic is returned.
///
/// # Panics
/// Panics if `workers` is empty.
pub fn mine_distributed(
    db: &HorizontalDb,
    minsup: MinSupport,
    workers: &[String],
    dist: &DistConfig,
) -> Result<DistReport, NetError> {
    assert!(!workers.is_empty(), "need at least one worker address");
    let num_workers = workers.len();
    let threshold = minsup.count_threshold(db.num_transactions());
    let run_id = dist.run_id.unwrap_or_else(mint_run_id);
    // Tag this process's trace events with the run and the coordinator
    // pseudo-rank so per-process trace files merge into one timeline.
    eclat_obs::trace::set_identity(run_id, eclat_obs::trace::COORDINATOR_RANK);
    eclat_obs::log_info!(
        "eclat-net",
        "run {run_id:#x}: coordinating {num_workers} worker(s)"
    );

    let mut stats = MiningStats::new("eclat", VARIANT_DIST, &dist.cfg.representation.to_string());
    stats.transactions = db.num_transactions() as u64;
    stats.threshold = u64::from(threshold);

    // ---- Handshake: connect and version-check every worker.
    let mut conns: Vec<WorkerConn> = Vec::with_capacity(num_workers);
    for (rank, addr) in workers.iter().enumerate() {
        let stream = wire::connect_retry(addr.as_str(), dist.connect_retries, dist.connect_backoff)
            .map_err(|e| NetError::Worker {
                rank: rank as u32,
                message: format!("cannot connect to worker {rank} at {addr}: {e}"),
            })?;
        wire::set_timeouts(&stream, Some(dist.io_timeout), Some(dist.io_timeout))?;
        eclat_obs::log_debug!(
            "eclat-net",
            "run {run_id:#x}: connected to worker {rank} at {addr}"
        );
        conns.push(WorkerConn {
            rank: rank as u32,
            addr: addr.clone(),
            stream,
        });
    }
    match drive(db, threshold, run_id, dist, &mut conns, &mut stats) {
        Ok((frequent, num_l2, spill_bytes_written, spill_bytes_read)) => {
            for c in conns.iter_mut() {
                let _ = c.send(&Message::Goodbye { run_id });
            }
            Ok(DistReport {
                frequent,
                stats,
                num_l2,
                num_workers,
                spill_bytes_written,
                spill_bytes_read,
            })
        }
        Err(e) => {
            eclat_obs::log_error!("eclat-net", "run {run_id:#x}: aborting all workers: {e}");
            abort_all(&mut conns, run_id, &e.to_string());
            Err(e)
        }
    }
}

/// The phase engine, separated so any error path aborts all workers.
fn drive(
    db: &HorizontalDb,
    threshold: u32,
    run_id: u64,
    dist: &DistConfig,
    conns: &mut [WorkerConn],
    stats: &mut MiningStats,
) -> Result<(FrequentSet, usize, u64, u64), NetError> {
    let num_workers = conns.len();
    for c in conns.iter_mut() {
        c.send(&Message::Hello {
            version: PROTOCOL_VERSION,
            run_id,
            rank: c.rank,
            num_workers: num_workers as u32,
        })?;
    }
    for c in conns.iter_mut() {
        match c.recv("HelloAck")? {
            Message::HelloAck { run_id: r } if r == run_id => {}
            other => {
                return Err(NetError::Protocol(format!(
                    "worker {} answered {} to Hello",
                    c.rank,
                    other.label()
                )))
            }
        }
    }

    // ---- Initialization (§5.1): ship blocks, sum-reduce local counts.
    let span_init = eclat_obs::trace::span(crate::PHASE_INIT);
    let t_init = Instant::now();
    let partition = BlockPartition::equal_blocks(db.num_transactions(), num_workers);
    let (flags, repr_tag, repr_depth) = encode_config(&dist.cfg, dist.cfg.include_singletons);
    for c in conns.iter_mut() {
        let range = partition.block(c.rank as usize);
        let block_db = HorizontalDb::from_transactions(
            db.iter_range(range.clone())
                .map(|(_, items)| items.to_vec())
                .collect(),
        )
        .with_num_items(db.num_items());
        let mut block = Vec::new();
        binfmt::write_horizontal(&block_db, &mut block)?;
        c.send(&Message::Assign {
            run_id,
            threshold,
            tid_offset: range.start as u32,
            flags,
            repr_tag,
            repr_depth,
            block,
        })?;
    }
    let n = db.num_items() as usize;
    let mut tri = TriangleMatrix::new(n);
    let mut item_counts = vec![0u64; if dist.cfg.include_singletons { n } else { 0 }];
    for c in conns.iter_mut() {
        match c.recv("Counts")? {
            Message::Counts {
                num_items,
                triangle,
                items,
                ..
            } => {
                if num_items as usize != n || triangle.len() != tri.cells() {
                    return Err(NetError::Protocol(format!(
                        "worker {} counted {} items / {} cells, expected {} / {}",
                        c.rank,
                        num_items,
                        triangle.len(),
                        n,
                        tri.cells()
                    )));
                }
                tri.merge_from(&TriangleMatrix::from_raw(n, triangle));
                for (acc, &x) in item_counts.iter_mut().zip(&items) {
                    *acc += u64::from(x);
                }
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "worker {} sent {} where Counts was expected",
                    c.rank,
                    other.label()
                )))
            }
        }
    }

    let l2: Vec<(ItemId, ItemId, u32)> = tri.frequent_pairs(threshold).collect();
    let num_l2 = l2.len();
    stats.record_level(2, tri.cells() as u64, num_l2 as u64);
    let mut out = FrequentSet::new();
    if dist.cfg.include_singletons {
        let mut frequent_items = 0u64;
        for (i, &c) in item_counts.iter().enumerate() {
            if c >= u64::from(threshold) {
                out.insert(Itemset::single(ItemId(i as u32)), c as u32);
                frequent_items += 1;
            }
        }
        stats.record_level(1, item_counts.len() as u64, frequent_items);
    }
    stats.phases.push(PhaseStats {
        label: crate::PHASE_INIT.to_string(),
        secs: t_init.elapsed().as_secs_f64(),
        ops: OpMeter::new(), // filled from worker meters below
    });
    drop(span_init);
    eclat_obs::log_info!(
        "eclat-net",
        "run {run_id:#x}: L2 reduced to {num_l2} frequent pairs"
    );

    if l2.is_empty() {
        // Nothing to schedule: the run ends after the sum-reduction.
        for c in conns.iter_mut() {
            c.send(&Message::Goodbye { run_id })?;
        }
        stats.num_frequent = out.len() as u64;
        stats.cluster = Some(ClusterStats {
            total_secs: t_init.elapsed().as_secs_f64(),
            load_imbalance: 1.0,
            procs: (0..num_workers as u64)
                .map(|p| ProcStats {
                    proc: p,
                    ..ProcStats::default()
                })
                .collect(),
        });
        return Ok((out, 0, 0, 0));
    }

    // ---- Transformation (§5.2.1 + §6.3): broadcast the schedule, let
    // the workers run the all-to-all partial tid-list exchange.
    let span_transform = eclat_obs::trace::span(crate::PHASE_TRANSFORM);
    let t_transform = Instant::now();
    let plan = schedule_l2(&l2, num_workers, dist.cfg.heuristic);
    let slot_owner: Vec<u32> = plan.slot_owner.iter().map(|&p| p as u32).collect();
    let l2_pairs: Vec<(u32, u32)> = l2.iter().map(|&(a, b, _)| (a.0, b.0)).collect();
    let peers: Vec<String> = conns.iter().map(|c| c.addr.clone()).collect();
    for c in conns.iter_mut() {
        c.send(&Message::Plan {
            run_id,
            l2: l2_pairs.clone(),
            slot_owner: slot_owner.clone(),
            peers: peers.clone(),
        })?;
    }
    for c in conns.iter_mut() {
        match c.recv("ExchangeDone")? {
            Message::ExchangeDone { .. } => {}
            other => {
                return Err(NetError::Protocol(format!(
                    "worker {} sent {} where ExchangeDone was expected",
                    c.rank,
                    other.label()
                )))
            }
        }
    }
    let transform_secs = t_transform.elapsed().as_secs_f64();
    drop(span_transform);

    // ---- Asynchronous phase (§5.3) + final reduction.
    let span_async = eclat_obs::trace::span(crate::PHASE_ASYNC);
    let t_async = Instant::now();
    let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(num_workers);
    for c in conns.iter_mut() {
        match c.recv("Result")? {
            Message::Result {
                rank,
                frequent,
                stats: ws,
                ..
            } => {
                if rank != c.rank {
                    return Err(NetError::Protocol(format!(
                        "result from rank {rank} arrived on worker {}'s connection",
                        c.rank
                    )));
                }
                for (items, support) in frequent {
                    out.insert(Itemset::of(&items), support);
                }
                worker_stats.push(*ws);
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "worker {} sent {} where Result was expected",
                    c.rank,
                    other.label()
                )))
            }
        }
    }
    let async_secs = t_async.elapsed().as_secs_f64();
    drop(span_async);

    // ---- Stats assembly: measured wall clock per phase, worker meters
    // summed so op counts match the sequential/simulated reports.
    let _span_reduce = eclat_obs::trace::span(crate::PHASE_REDUCE);
    let t_reduce = Instant::now();
    let mut init_ops = OpMeter::new();
    let mut transform_ops = OpMeter::new();
    let mut async_ops = OpMeter::new();
    for ws in &worker_stats {
        init_ops.merge(&ws.init_ops);
        transform_ops.merge(&ws.transform_ops);
        async_ops.merge(&ws.async_ops);
        for cs in &ws.classes {
            stats.add_class(cs.clone());
        }
    }
    stats.sort_classes();
    stats.phases[0].ops = init_ops;
    stats.phases.push(PhaseStats {
        label: crate::PHASE_TRANSFORM.to_string(),
        secs: transform_secs,
        ops: transform_ops,
    });
    stats.phases.push(PhaseStats {
        label: crate::PHASE_ASYNC.to_string(),
        secs: async_secs,
        ops: async_ops,
    });

    // One ProcStats row per worker *thread* — the measured counterpart
    // of the simulator's H×P processor rows. Thread 0 is the session
    // thread: it carries the serial-phase compute, all socket time, and
    // the byte counters; every thread carries its own async-mining and
    // spill-fault time. Idle is *derived* per row as wall minus busy
    // (clamped at zero) — summing P threads' compute into one row made
    // the old measured idle go negative as soon as P > 1.
    let mut procs: Vec<ProcStats> = Vec::new();
    for ws in &worker_stats {
        let p = ws.threads.max(1) as usize;
        for t in 0..p {
            let thread_compute = ws.thread_compute_secs.get(t).copied().unwrap_or(0.0);
            let compute = if t == 0 {
                ws.compute_secs + thread_compute
            } else {
                thread_compute
            };
            let disk = ws.thread_disk_secs.get(t).copied().unwrap_or(0.0);
            let net = if t == 0 { ws.net_secs } else { 0.0 };
            let idle = (ws.finish_secs - compute - disk - net).max(0.0);
            procs.push(ProcStats {
                proc: procs.len() as u64,
                compute_secs: compute,
                disk_secs: disk,
                net_secs: net,
                idle_secs: idle,
                finish_secs: ws.finish_secs,
                bytes_sent: if t == 0 { ws.bytes_sent } else { 0 },
                bytes_received: if t == 0 { ws.bytes_received } else { 0 },
            });
        }
    }
    // Busy = compute + disk + net, the simulator's load-imbalance base.
    let busy: Vec<f64> = procs
        .iter()
        .map(|p| p.compute_secs + p.disk_secs + p.net_secs)
        .collect();
    let mean_busy = busy.iter().sum::<f64>() / busy.len() as f64;
    let max_busy = busy.iter().cloned().fold(0.0, f64::max);
    stats.cluster = Some(ClusterStats {
        total_secs: procs.iter().map(|p| p.finish_secs).fold(0.0, f64::max),
        load_imbalance: if mean_busy > 0.0 {
            max_busy / mean_busy
        } else {
            1.0
        },
        procs,
    });

    stats.num_frequent = out.len() as u64;
    let mut total = OpMeter::new();
    total.merge(&init_ops);
    total.merge(&transform_ops);
    total.merge(&async_ops);
    stats.total_ops = total;
    stats.phases.push(PhaseStats {
        label: crate::PHASE_REDUCE.to_string(),
        secs: t_reduce.elapsed().as_secs_f64(),
        ops: OpMeter::new(),
    });
    let spill_written = worker_stats.iter().map(|w| w.spill_bytes_written).sum();
    let spill_read = worker_stats.iter().map(|w| w.spill_bytes_read).sum();
    Ok((out, num_l2, spill_written, spill_read))
}
