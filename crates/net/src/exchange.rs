//! Pure pieces of the all-to-all partial tid-list exchange (§6.3).
//!
//! The database is block-partitioned with disjoint, monotonically
//! increasing tid ranges, so the global tid-list of any 2-itemset is the
//! concatenation of the per-worker partial lists *in rank order* — no
//! sorting, exactly the paper's offset-placement trick. These helpers
//! are the testable core of that invariant; the socket plumbing around
//! them lives in [`crate::worker`].

use mining_types::Tid;
use std::collections::BTreeMap;
use tidlist::TidList;

/// Partial tid-lists routed to one destination rank: `(slot, tids)`
/// with tids already shifted to the global tid space.
pub type Entries = Vec<(u32, Vec<u32>)>;

/// Shift a block-local tid-list into the global tid space by the block's
/// starting tid (§6.3: each worker knows its offset, so lists land at
/// their final position without coordination).
pub fn shift_tids(list: &TidList, offset: u32) -> Vec<u32> {
    list.tids().iter().map(|t| t.0 + offset).collect()
}

/// Split this worker's local partial lists by destination: for each rank
/// `q`, the `(slot, global tids)` entries of every slot owned by `q`.
/// Every rank gets an entry vector (possibly empty) — receivers count
/// depositors, not bytes, to detect completeness.
pub fn route_partials(
    lists: &[TidList],
    slot_owner: &[u32],
    num_workers: u32,
    tid_offset: u32,
) -> Vec<Entries> {
    assert_eq!(lists.len(), slot_owner.len(), "one owner per slot");
    let mut out: Vec<Entries> = (0..num_workers).map(|_| Vec::new()).collect();
    for (slot, (list, &owner)) in lists.iter().zip(slot_owner).enumerate() {
        out[owner as usize].push((slot as u32, shift_tids(list, tid_offset)));
    }
    out
}

/// Concatenate deposited partials into global tid-lists, one per slot.
///
/// `deposits` maps rank → entries; the `BTreeMap` iterates ranks in
/// ascending order, which *is* the §6.3 merge: partial lists append in
/// rank order and arrive globally sorted for free ([`TidList`] asserts
/// the ascending-range invariant).
///
/// # Errors
/// A slot index at or past `num_slots` is a protocol violation and is
/// reported with the offending rank.
pub fn assemble(
    deposits: &BTreeMap<u32, Entries>,
    num_slots: usize,
) -> Result<Vec<TidList>, String> {
    let mut lists = vec![TidList::new(); num_slots];
    for (&rank, entries) in deposits {
        for (slot, tids) in entries {
            let slot = *slot as usize;
            if slot >= num_slots {
                return Err(format!(
                    "rank {rank} deposited slot {slot}, but the plan has {num_slots} slots"
                ));
            }
            let partial = TidList::from_sorted(tids.iter().map(|&t| Tid(t)).collect());
            lists[slot].append_partial(&partial);
        }
    }
    Ok(lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_moves_into_global_space() {
        let l = TidList::of(&[0, 2, 5]);
        assert_eq!(shift_tids(&l, 100), vec![100, 102, 105]);
        assert!(shift_tids(&TidList::new(), 9).is_empty());
    }

    #[test]
    fn route_covers_every_rank_and_slot() {
        let lists = vec![TidList::of(&[0]), TidList::of(&[1]), TidList::new()];
        let routed = route_partials(&lists, &[1, 0, 1], 3, 10);
        assert_eq!(routed.len(), 3);
        assert_eq!(routed[0], vec![(1, vec![11])]);
        assert_eq!(routed[1], vec![(0, vec![10]), (2, vec![])]);
        assert!(routed[2].is_empty(), "rank 2 owns nothing");
    }

    #[test]
    fn assemble_concatenates_in_rank_order() {
        let mut deposits = BTreeMap::new();
        // Insert out of rank order on purpose: the map sorts.
        deposits.insert(1u32, vec![(0u32, vec![5, 6]), (1, vec![7])]);
        deposits.insert(0u32, vec![(0u32, vec![1, 2]), (1, vec![])]);
        let lists = assemble(&deposits, 2).unwrap();
        assert_eq!(lists[0].tids(), &[Tid(1), Tid(2), Tid(5), Tid(6)]);
        assert_eq!(lists[1].tids(), &[Tid(7)]);
    }

    #[test]
    fn assemble_rejects_out_of_plan_slots() {
        let mut deposits = BTreeMap::new();
        deposits.insert(2u32, vec![(9u32, vec![1])]);
        let err = assemble(&deposits, 2).unwrap_err();
        assert!(err.contains("rank 2"), "{err}");
        assert!(err.contains("slot 9"), "{err}");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn assemble_panics_on_overlapping_ranges() {
        // Misrouted tid ranges (rank 1's tids below rank 0's) violate the
        // block invariant the whole §6.3 scheme rests on.
        let mut deposits = BTreeMap::new();
        deposits.insert(0u32, vec![(0u32, vec![10, 11])]);
        deposits.insert(1u32, vec![(0u32, vec![3])]);
        let _ = assemble(&deposits, 1);
    }
}
