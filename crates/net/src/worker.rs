//! The worker process: one TCP listener serving mining sessions.
//!
//! A worker is passive — it binds, accepts, and lets coordinators drive.
//! Each accepted connection is classified by its first frame:
//!
//! * [`Message::Hello`] opens a *session*: the connection thread runs the
//!   paper's worker-side phases end to end (counting → exchange →
//!   asynchronous mining → result) against that coordinator;
//! * [`Message::Partials`] is a peer deposit for an in-flight run: the
//!   payload is dropped into the run's `Inbox` and acknowledged;
//! * anything else gets a best-effort [`Message::Abort`], then close.
//!
//! Sessions and deposits meet at the `Registry`: a map from `run_id`
//! to the run's inbox, created at `Hello` and removed when the session
//! ends. Unknown-run deposits are rejected (the cross-talk guard for
//! concurrent runs sharing a fleet), duplicate `run_id`s refused, and
//! the exchange wait is deadline-bounded so a dead peer aborts the run
//! instead of hanging it.

use crate::exchange::{assemble, route_partials, Entries};
use crate::proto::{Message, WorkerStats, MAX_NET_FRAME, PROTOCOL_VERSION};
use crate::NetError;
use dbstore::{binfmt, SpillMetrics, SpillStore};
use eclat::equivalence::{classes_of_l2, ClassMember, EquivalenceClass};
use eclat::pipeline;
use eclat::schedule::shard_classes;
use eclat::transform::{count_items, index_pairs};
use mining_types::{FrequentSet, ItemId, Itemset, OpMeter};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tidlist::TidList;
use wire::{read_frame, write_frame, Frame};

/// Worker construction knobs.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub listen: String,
    /// Per-socket read/write deadline for session traffic. Also bounds
    /// how long a worker waits for the coordinator's next instruction.
    pub io_timeout: Duration,
    /// How long the exchange waits for every peer's partials before the
    /// run is aborted.
    pub exchange_timeout: Duration,
    /// Connect attempts (beyond the first) when dialing a peer.
    pub connect_retries: u32,
    /// Initial backoff between peer connect attempts (doubles each try).
    pub connect_backoff: Duration,
    /// Mining threads per session — the `P` of the paper's H×P hybrid
    /// model, applied to a real host. `0` means one thread per available
    /// core; `1` (the default) reproduces the old single-threaded worker.
    pub threads: usize,
    /// Resident-byte budget for the post-exchange tid-lists. `None`
    /// keeps everything in memory; `Some(b)` routes the owned classes
    /// through a [`SpillStore`], so classes beyond `b` bytes live on
    /// disk until their turn in the class loop (three-scan style).
    pub mem_budget: Option<u64>,
    /// Directory for spill files (a unique per-run subdirectory is
    /// created inside it). Defaults to the system temp directory.
    pub spill_dir: Option<PathBuf>,
    /// Record an execution trace (`eclat_obs::trace` JSONL) and append
    /// it to this path when each session ends. Enables the process-wide
    /// tracer and tags events with the session's run id and rank, so
    /// per-worker files merge into one cluster timeline. Intended for
    /// one traced session at a time (e.g. `--spawn-local` fleets).
    pub trace: Option<PathBuf>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            listen: "127.0.0.1:0".to_string(),
            io_timeout: Duration::from_secs(120),
            exchange_timeout: Duration::from_secs(30),
            connect_retries: 5,
            connect_backoff: Duration::from_millis(20),
            threads: 1,
            mem_budget: None,
            spill_dir: None,
            trace: None,
        }
    }
}

/// A class stripped of its tid-lists: prefix + member itemsets, the
/// small resident part of a spilled class.
type ClassSkeleton = (Itemset, Vec<Itemset>);

/// Where the asynchronous phase gets its classes: straight from memory,
/// or faulted back from a [`SpillStore`] (out-of-core mode). Either way
/// each class is fetched exactly once, by the thread that mines it.
enum ClassSource {
    Resident(Vec<Mutex<Option<EquivalenceClass>>>),
    Spilled {
        /// The budgeted store holding every class's tid-lists.
        vault: Mutex<SpillStore>,
        /// Resident per-class metadata — the part that never spills.
        skeletons: Vec<Mutex<Option<ClassSkeleton>>>,
    },
}

impl ClassSource {
    fn fetch(&self, i: usize) -> Result<EquivalenceClass, String> {
        match self {
            ClassSource::Resident(slots) => Ok(slots[i]
                .lock()
                .expect("class slot poisoned")
                .take()
                .expect("each class is fetched exactly once")),
            ClassSource::Spilled { vault, skeletons } => {
                let lists = vault
                    .lock()
                    .expect("spill store poisoned")
                    .take(i)
                    .map_err(|e| format!("spill fault for class {i}: {e}"))?;
                let (prefix, itemsets) = skeletons[i]
                    .lock()
                    .expect("skeleton slot poisoned")
                    .take()
                    .expect("each class is fetched exactly once");
                Ok(EquivalenceClass {
                    prefix,
                    members: itemsets
                        .into_iter()
                        .zip(lists)
                        .map(|(itemset, tids)| ClassMember { itemset, tids })
                        .collect(),
                })
            }
        }
    }

    /// Final I/O counters (zero for the resident source).
    fn metrics(&self) -> SpillMetrics {
        match self {
            ClassSource::Resident(_) => SpillMetrics::default(),
            ClassSource::Spilled { vault, .. } => {
                vault.lock().expect("spill store poisoned").metrics()
            }
        }
    }
}

/// Deposited partials for one run, waiting for the owning session.
struct Inbox {
    state: Mutex<InboxState>,
    arrived: Condvar,
    /// Frame bytes deposited by peers (accounted to the session's
    /// receive counter — deposits land on accept threads, not on the
    /// session thread).
    bytes_received: AtomicU64,
}

#[derive(Default)]
struct InboxState {
    deposits: BTreeMap<u32, Entries>,
}

impl Inbox {
    fn new() -> Inbox {
        Inbox {
            state: Mutex::new(InboxState::default()),
            arrived: Condvar::new(),
            bytes_received: AtomicU64::new(0),
        }
    }

    fn deposit(&self, rank: u32, entries: Entries, frame_bytes: u64) {
        self.bytes_received
            .fetch_add(frame_bytes, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        st.deposits.insert(rank, entries);
        self.arrived.notify_all();
    }

    /// Block until all `num_workers` ranks have deposited, or `deadline`
    /// passes. Returns the deposits, or the missing ranks on timeout.
    fn wait_all(
        &self,
        num_workers: u32,
        deadline: Instant,
    ) -> Result<BTreeMap<u32, Entries>, Vec<u32>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.deposits.len() as u32 == num_workers {
                return Ok(std::mem::take(&mut st.deposits));
            }
            let now = Instant::now();
            if now >= deadline {
                let missing = (0..num_workers)
                    .filter(|r| !st.deposits.contains_key(r))
                    .collect();
                return Err(missing);
            }
            let (guard, _) = self.arrived.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }
}

/// Live runs on this worker, keyed by `run_id`.
#[derive(Default)]
struct Registry {
    inboxes: Mutex<HashMap<u64, Arc<Inbox>>>,
}

impl Registry {
    /// Create the inbox for a new run. `None` if the run id is taken.
    fn register(&self, run_id: u64) -> Option<Arc<Inbox>> {
        let mut map = self.inboxes.lock().unwrap();
        if map.contains_key(&run_id) {
            return None;
        }
        let inbox = Arc::new(Inbox::new());
        map.insert(run_id, Arc::clone(&inbox));
        Some(inbox)
    }

    fn lookup(&self, run_id: u64) -> Option<Arc<Inbox>> {
        self.inboxes.lock().unwrap().get(&run_id).cloned()
    }

    fn unregister(&self, run_id: u64) {
        self.inboxes.lock().unwrap().remove(&run_id);
    }
}

/// Removes the run's inbox when the session ends, however it ends.
struct InboxGuard<'a> {
    registry: &'a Registry,
    run_id: u64,
}

impl Drop for InboxGuard<'_> {
    fn drop(&mut self) {
        self.registry.unregister(self.run_id);
    }
}

/// A running worker; [`WorkerHandle::shutdown`] (or drop) stops the
/// accept loop. Session threads finish their current run independently.
pub struct WorkerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // nudge out of accept()
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `cfg.listen` and serve mining sessions until shutdown.
///
/// # Errors
/// Fails only on bind; everything after runs on spawned threads.
pub fn start_worker(cfg: &WorkerConfig) -> io::Result<WorkerHandle> {
    let listener = TcpListener::bind(cfg.listen.as_str())?;
    let addr = listener.local_addr()?;
    if cfg.trace.is_some() {
        eclat_obs::trace::set_enabled(true);
    }
    eclat_obs::log_info!("eclat-net", "worker listening on {addr}");
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(Registry::default());

    let accept_stop = Arc::clone(&stop);
    let cfg = cfg.clone();
    let accept_thread = std::thread::Builder::new()
        .name("eclat-net-accept".to_string())
        .spawn(move || {
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                let registry = Arc::clone(&registry);
                let cfg = cfg.clone();
                let _ = std::thread::Builder::new()
                    .name("eclat-net-conn".to_string())
                    .spawn(move || handle_connection(stream, &registry, &cfg));
            }
        })?;

    Ok(WorkerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Send one message and return the frame bytes written.
fn send(stream: &mut TcpStream, msg: &Message) -> io::Result<u64> {
    let payload = msg.encode();
    write_frame(stream, &payload)?;
    Ok(payload.len() as u64 + 4)
}

/// Read one message and return it with the frame bytes read.
fn recv(stream: &mut TcpStream) -> Result<(Message, u64), NetError> {
    match read_frame(stream, MAX_NET_FRAME)? {
        Frame::Payload(p) => {
            let n = p.len() as u64 + 4;
            Ok((Message::decode(&p)?, n))
        }
        Frame::Eof => Err(NetError::Protocol("peer closed the connection".into())),
        Frame::TooLarge(n) => Err(NetError::Protocol(format!(
            "frame of {n} bytes exceeds the {MAX_NET_FRAME}-byte limit"
        ))),
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Registry, cfg: &WorkerConfig) {
    if wire::set_timeouts(&stream, Some(cfg.io_timeout), Some(cfg.io_timeout)).is_err() {
        return;
    }
    match recv(&mut stream) {
        Ok((
            Message::Hello {
                version,
                run_id,
                rank,
                num_workers,
            },
            first_bytes,
        )) => {
            if version != PROTOCOL_VERSION {
                let _ = send(&mut stream, &Message::Abort {
                    run_id,
                    rank,
                    message: format!(
                        "protocol version mismatch: worker speaks {PROTOCOL_VERSION}, coordinator sent {version}"
                    ),
                });
                return;
            }
            if num_workers == 0 || rank >= num_workers {
                let _ = send(
                    &mut stream,
                    &Message::Abort {
                        run_id,
                        rank,
                        message: format!("bad handshake: rank {rank} of {num_workers} workers"),
                    },
                );
                return;
            }
            let Some(inbox) = registry.register(run_id) else {
                let _ = send(
                    &mut stream,
                    &Message::Abort {
                        run_id,
                        rank,
                        message: format!("run id {run_id:#x} is already active on this worker"),
                    },
                );
                return;
            };
            let _guard = InboxGuard { registry, run_id };
            if cfg.trace.is_some() {
                // Tag this process's events with the session identity so
                // the merged cluster timeline attributes them to rank.
                eclat_obs::trace::set_identity(run_id, rank);
            }
            eclat_obs::log_info!(
                "eclat-net",
                "run {run_id:#x}: session open as rank {rank}/{num_workers}"
            );
            let mut session = Session {
                stream,
                run_id,
                rank,
                num_workers,
                inbox,
                cfg,
                stats: WorkerStats::default(),
                started: Instant::now(),
            };
            session.stats.bytes_received += first_bytes;
            let outcome = session.run();
            if let Some(path) = &cfg.trace {
                if let Err(e) = eclat_obs::trace::append_file(path) {
                    eclat_obs::log_warn!(
                        "eclat-net",
                        "run {run_id:#x}: cannot write trace {}: {e}",
                        path.display()
                    );
                }
            }
            match outcome {
                Ok(()) => {
                    eclat_obs::log_info!(
                        "eclat-net",
                        "run {run_id:#x}: rank {rank} session complete"
                    );
                }
                Err(e) => {
                    eclat_obs::log_error!(
                        "eclat-net",
                        "run {run_id:#x}: rank {rank} session failed: {e}"
                    );
                    // Tell the coordinator why before hanging up; if the
                    // failure *was* the coordinator, the write just fails.
                    let _ = send(
                        &mut session.stream,
                        &Message::Abort {
                            run_id,
                            rank,
                            message: e.to_string(),
                        },
                    );
                }
            }
        }
        Ok((
            Message::Partials {
                run_id,
                from_rank,
                entries,
            },
            frame_bytes,
        )) => match registry.lookup(run_id) {
            Some(inbox) => {
                eclat_obs::log_debug!(
                    "eclat-net",
                    "run {run_id:#x}: partials deposit from rank {from_rank} ({frame_bytes} B)"
                );
                inbox.deposit(from_rank, entries, frame_bytes);
                let _ = send(&mut stream, &Message::PartialsAck { run_id });
            }
            None => {
                eclat_obs::log_warn!(
                    "eclat-net",
                    "run {run_id:#x}: rejecting partials from rank {from_rank}: unknown run"
                );
                // Cross-talk guard: a deposit for a run this worker never
                // started (stale sender, or a different cluster's run id).
                let _ = send(
                    &mut stream,
                    &Message::Abort {
                        run_id,
                        rank: from_rank,
                        message: format!("no active run {run_id:#x} on this worker"),
                    },
                );
            }
        },
        Ok((other, _)) => {
            let _ = send(
                &mut stream,
                &Message::Abort {
                    run_id: other.run_id(),
                    rank: u32::MAX,
                    message: format!("unexpected {} as first message", other.label()),
                },
            );
        }
        Err(e) => {
            // Truncated/oversized/undecodable first frame: answer with a
            // diagnostic if the socket still works, then close.
            let _ = send(
                &mut stream,
                &Message::Abort {
                    run_id: 0,
                    rank: u32::MAX,
                    message: format!("bad first frame: {e}"),
                },
            );
        }
    }
}

/// One coordinator-driven mining session.
struct Session<'a> {
    stream: TcpStream,
    run_id: u64,
    rank: u32,
    num_workers: u32,
    inbox: Arc<Inbox>,
    cfg: &'a WorkerConfig,
    stats: WorkerStats,
    started: Instant,
}

impl Session<'_> {
    /// Resolve the configured thread count (`0` = one per core).
    fn mining_threads(&self) -> usize {
        match self.cfg.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Move `classes` into a budgeted [`SpillStore`] under a unique
    /// per-run directory; tid-lists beyond the budget go to disk, the
    /// per-class metadata stays resident.
    fn spill_classes(
        &self,
        classes: Vec<EquivalenceClass>,
        budget: u64,
    ) -> Result<ClassSource, NetError> {
        let base = self
            .cfg
            .spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "eclat-spill-{}-{:016x}-r{}",
            std::process::id(),
            self.run_id,
            self.rank
        ));
        let spill_err = |e: io::Error| NetError::Worker {
            rank: self.rank,
            message: format!("spill store failed: {e}"),
        };
        let mut store = SpillStore::create(&dir, budget, classes.len()).map_err(spill_err)?;
        let mut skeletons = Vec::with_capacity(classes.len());
        for (i, class) in classes.into_iter().enumerate() {
            let mut itemsets = Vec::with_capacity(class.members.len());
            let mut lists: Vec<TidList> = Vec::with_capacity(class.members.len());
            for m in class.members {
                itemsets.push(m.itemset);
                lists.push(m.tids);
            }
            skeletons.push(Mutex::new(Some((class.prefix, itemsets))));
            store.insert(i, lists).map_err(spill_err)?;
        }
        Ok(ClassSource::Spilled {
            vault: Mutex::new(store),
            skeletons,
        })
    }

    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let t = Instant::now();
        let n = send(&mut self.stream, msg)?;
        self.stats.net_secs += t.elapsed().as_secs_f64();
        self.stats.bytes_sent += n;
        Ok(())
    }

    /// Receive the coordinator's next instruction (idle time).
    fn recv(&mut self) -> Result<Message, NetError> {
        let t = Instant::now();
        let (msg, n) = recv(&mut self.stream)?;
        self.stats.idle_secs += t.elapsed().as_secs_f64();
        self.stats.bytes_received += n;
        if msg.run_id() != self.run_id {
            return Err(NetError::Protocol(format!(
                "run id mismatch: session {:#x}, frame {:#x}",
                self.run_id,
                msg.run_id()
            )));
        }
        if let Message::Abort { message, .. } = msg {
            return Err(NetError::Worker {
                rank: u32::MAX,
                message: format!("coordinator aborted: {message}"),
            });
        }
        Ok(msg)
    }

    fn run(&mut self) -> Result<(), NetError> {
        self.send(&Message::HelloAck {
            run_id: self.run_id,
        })?;

        // ---- Assign: the local database block.
        let (threshold, tid_offset, mine_cfg, want_items, db) = match self.recv()? {
            Message::Assign {
                threshold,
                tid_offset,
                flags,
                repr_tag,
                repr_depth,
                block,
                ..
            } => {
                let (cfg, want_items) = crate::proto::decode_config(flags, repr_tag, repr_depth)?;
                let (db, _) = binfmt::read_horizontal(&mut &block[..])
                    .map_err(|e| NetError::Protocol(format!("bad database block: {e}")))?;
                (threshold, tid_offset, cfg, want_items, db)
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Assign, got {}",
                    other.label()
                )))
            }
        };

        // ---- Initialization (§5.1): local triangular counting, blocked
        // over this host's P threads (partial triangles sum-merge, the
        // intra-host version of the coordinator's reduction).
        let span_init = eclat_obs::trace::span(crate::PHASE_INIT);
        let threads = self.mining_threads();
        let t = Instant::now();
        let mut init_ops = OpMeter::new();
        let tri = pipeline::count_pairs_blocked(&db, threads, &mut init_ops);
        let items = if want_items {
            count_items(&db, 0..db.num_transactions(), &mut init_ops)
        } else {
            Vec::new()
        };
        self.stats.compute_secs += t.elapsed().as_secs_f64();
        self.stats.init_ops = init_ops;
        self.send(&Message::Counts {
            run_id: self.run_id,
            num_items: db.num_items(),
            triangle: tri.raw().to_vec(),
            items,
        })?;
        drop(span_init);

        // ---- Plan (or Goodbye when the global L2 came out empty).
        let (l2, slot_owner, peers) = match self.recv()? {
            Message::Plan {
                l2,
                slot_owner,
                peers,
                ..
            } => (l2, slot_owner, peers),
            Message::Goodbye { .. } => return Ok(()),
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Plan, got {}",
                    other.label()
                )))
            }
        };
        if slot_owner.len() != l2.len() || peers.len() != self.num_workers as usize {
            return Err(NetError::Protocol(format!(
                "inconsistent plan: {} pairs, {} owners, {} peers for {} workers",
                l2.len(),
                slot_owner.len(),
                peers.len(),
                self.num_workers
            )));
        }

        // ---- Transformation (§5.2.2 + §6.3): local partials, exchange.
        let span_transform = eclat_obs::trace::span(crate::PHASE_TRANSFORM);
        let t = Instant::now();
        let mut transform_ops = OpMeter::new();
        let pairs: Vec<(ItemId, ItemId)> =
            l2.iter().map(|&(a, b)| (ItemId(a), ItemId(b))).collect();
        let idx = index_pairs(&pairs);
        let lists = pipeline::build_pair_tidlists_blocked(
            &db,
            0..db.num_transactions(),
            &idx,
            threads,
            &mut transform_ops,
        );
        let routed = route_partials(&lists, &slot_owner, self.num_workers, tid_offset);
        drop(lists);
        self.stats.compute_secs += t.elapsed().as_secs_f64();

        let deadline = Instant::now() + self.cfg.exchange_timeout;
        self.exchange(routed, &peers)?;
        let t = Instant::now();
        let deposits = self
            .inbox
            .wait_all(self.num_workers, deadline)
            .map_err(|missing| NetError::Worker {
                rank: self.rank,
                message: format!(
                    "exchange timed out after {:?} waiting for partials from ranks {missing:?}",
                    self.cfg.exchange_timeout
                ),
            })?;
        self.stats.idle_secs += t.elapsed().as_secs_f64();
        self.stats.bytes_received += self.inbox.bytes_received.swap(0, Ordering::Relaxed);

        // Owner-side concatenation in rank order (§6.3): lists arrive
        // globally sorted because the blocks' tid ranges ascend.
        let t = Instant::now();
        let assembled = assemble(&deposits, l2.len()).map_err(NetError::Protocol)?;
        transform_ops.record += assembled.iter().map(|l| l.len() as u64).sum::<u64>();
        let owned: Vec<(ItemId, ItemId, tidlist::TidList)> = assembled
            .into_iter()
            .enumerate()
            .filter(|&(s, _)| slot_owner[s] == self.rank)
            .map(|(s, list)| (ItemId(l2[s].0), ItemId(l2[s].1), list))
            .collect();
        let classes = classes_of_l2(owned);
        self.stats.compute_secs += t.elapsed().as_secs_f64();
        self.stats.transform_ops = transform_ops;

        // LPT-shard the owned classes over this host's threads — the
        // same C(s,2) cost model the coordinator used across workers,
        // reapplied at thread granularity (the hybrid model's intra-host
        // re-balance, on a real host).
        let shards = shard_classes(&classes, threads, mine_cfg.heuristic);

        // Under a memory budget, route every owned class through the
        // spill store now (the paper's transformation-phase disk write:
        // "The tid-lists of itemsets in G are then written out to
        // disk"); the class loop faults them back one class at a time.
        let source = match self.cfg.mem_budget {
            None => {
                ClassSource::Resident(classes.into_iter().map(|c| Mutex::new(Some(c))).collect())
            }
            Some(budget) => self.spill_classes(classes, budget)?,
        };

        // Non-blocking phase marker: the coordinator splits transform
        // from async wall time on this; the worker mines on immediately.
        self.send(&Message::ExchangeDone {
            run_id: self.run_id,
        })?;
        drop(span_transform);

        // ---- Asynchronous phase (§5.3): mine owned classes on P
        // threads through the shared pipeline kernel, no comms.
        let span_async = eclat_obs::trace::span(crate::PHASE_ASYNC);
        let mut frequent = FrequentSet::new();
        let mut class_stats = Vec::new();
        let fetch = |i: usize| source.fetch(i);
        let reports = pipeline::mine_shards(
            &shards,
            &fetch,
            threshold,
            &mine_cfg,
            &mut frequent,
            &mut class_stats,
        )
        .map_err(|message| NetError::Worker {
            rank: self.rank,
            message,
        })?;
        let spill = source.metrics();
        let mut async_ops = OpMeter::new();
        for r in &reports {
            async_ops.merge(&r.ops);
        }
        self.stats.threads = threads as u32;
        self.stats.thread_compute_secs = reports.iter().map(|r| r.compute_secs).collect();
        // Per-thread spill I/O: faults land on the faulting thread,
        // eviction writes (session-thread work during insert) on thread 0.
        self.stats.thread_disk_secs = reports.iter().map(|r| r.fetch_secs).collect();
        self.stats.thread_disk_secs[0] += spill.write_secs;
        self.stats.spill_bytes_written = spill.bytes_written;
        self.stats.spill_bytes_read = spill.bytes_read;
        self.stats.async_ops = async_ops;
        self.stats.classes = class_stats;
        drop(span_async);

        // ---- Final reduction: ship the local result set.
        let span_reduce = eclat_obs::trace::span(crate::PHASE_REDUCE);
        let frequent: Vec<(Vec<u32>, u32)> = frequent
            .iter()
            .map(|(is, sup)| (is.items().iter().map(|i| i.0).collect(), sup))
            .collect();
        self.stats.finish_secs = self.started.elapsed().as_secs_f64();
        let result = Message::Result {
            run_id: self.run_id,
            rank: self.rank,
            frequent,
            stats: Box::new(std::mem::take(&mut self.stats)),
        };
        self.send(&result)?;
        drop(span_reduce);

        // ---- Goodbye (or a clean close) ends the session.
        match self.recv() {
            Ok(Message::Goodbye { .. }) => Ok(()),
            Ok(other) => Err(NetError::Protocol(format!(
                "expected Goodbye, got {}",
                other.label()
            ))),
            // A coordinator that hangs up after Result is fine.
            Err(NetError::Protocol(_)) | Err(NetError::Io(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Push this worker's partials to every peer (self-deposit locally).
    /// Every rank receives an entry — empty vectors included — so owners
    /// can count depositors for completeness.
    fn exchange(&mut self, routed: Vec<Entries>, peers: &[String]) -> Result<(), NetError> {
        let t = Instant::now();
        for (q, entries) in routed.into_iter().enumerate() {
            if q as u32 == self.rank {
                self.inbox.deposit(self.rank, entries, 0);
                continue;
            }
            let msg = Message::Partials {
                run_id: self.run_id,
                from_rank: self.rank,
                entries,
            };
            let mut peer = wire::connect_retry(
                peers[q].as_str(),
                self.cfg.connect_retries,
                self.cfg.connect_backoff,
            )
            .map_err(|e| NetError::Worker {
                rank: self.rank,
                message: format!("cannot reach peer {q} at {}: {e}", peers[q]),
            })?;
            wire::set_timeouts(&peer, Some(self.cfg.io_timeout), Some(self.cfg.io_timeout))?;
            self.stats.bytes_sent += send(&mut peer, &msg)?;
            let (reply, n) = recv(&mut peer)?;
            self.stats.bytes_received += n;
            match reply {
                Message::PartialsAck { run_id } if run_id == self.run_id => {}
                Message::Abort { message, .. } => {
                    return Err(NetError::Worker {
                        rank: self.rank,
                        message: format!("peer {q} rejected partials: {message}"),
                    })
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "peer {q} answered {} to partials",
                        other.label()
                    )))
                }
            }
        }
        self.stats.net_secs += t.elapsed().as_secs_f64();
        Ok(())
    }
}
