//! Real distributed Eclat: a multi-process TCP cluster runtime.
//!
//! Where `eclat::cluster` *simulates* the paper's Memory Channel cluster
//! against a cost model, this crate runs the same algorithm across real
//! processes connected by TCP: one coordinator ([`mine_distributed`])
//! and `W` workers ([`start_worker`]), each holding one horizontal block
//! of the database.
//!
//! The run follows Figure 2 of the paper phase for phase:
//!
//! 1. **Initialization** — each worker counts all 2-itemsets of its
//!    block into a local triangular array; the coordinator sum-reduces
//!    the arrays into global `L2` (§5.1, §6.2).
//! 2. **Transformation** — the coordinator schedules the equivalence
//!    classes greedily (§5.2.1, shared with the simulator through
//!    `eclat::schedule::schedule_l2`) and broadcasts the plan; workers
//!    build partial tid-lists and stream them *directly to each class
//!    owner* in an all-to-all exchange. Owners concatenate partials in
//!    worker-rank order, so lists arrive globally sorted exactly as in
//!    §6.3's offset placement.
//! 3. **Asynchronous phase** — each worker mines its owned classes with
//!    the shared `eclat::pipeline` kernel; no communication (§5.3).
//! 4. **Final reduction** — local frequent sets stream back to the
//!    coordinator and merge.
//!
//! The result is bit-identical to sequential Eclat for any worker count
//! and any partition (a property test pins this). Robustness: connect
//! retries with backoff, per-socket deadlines, a version-checked
//! handshake, run-id tagging against cross-talk between concurrent
//! runs, and fail-fast abort propagation — a worker dying mid-phase
//! surfaces as a diagnostic error at the coordinator, never a hang.

pub mod coordinator;
pub mod exchange;
pub mod proto;
pub mod worker;

pub use coordinator::{mine_distributed, DistConfig, DistReport, VARIANT_DIST};
pub use eclat::pipeline::{PHASE_ASYNC, PHASE_INIT, PHASE_REDUCE, PHASE_TRANSFORM};
pub use proto::{Message, WorkerStats, MAX_NET_FRAME, PROTOCOL_VERSION};
pub use worker::{start_worker, WorkerConfig, WorkerHandle};

use std::fmt;
use std::io;

/// Why a distributed run failed.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// A peer sent something the protocol does not allow here.
    Protocol(String),
    /// A specific worker aborted or died; `rank` is `u32::MAX` when the
    /// abort originated at the coordinator.
    Worker {
        /// Rank of the failed/reporting worker.
        rank: u32,
        /// Diagnostic message.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Worker { rank, message } if *rank == u32::MAX => {
                write!(f, "run aborted: {message}")
            }
            NetError::Worker { rank, message } => {
                write!(f, "worker {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<wire::DecodeError> for NetError {
    fn from(e: wire::DecodeError) -> Self {
        NetError::Protocol(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_culprit() {
        let w = NetError::Worker {
            rank: 3,
            message: "exchange timed out".into(),
        };
        assert_eq!(w.to_string(), "worker 3 failed: exchange timed out");
        let c = NetError::Worker {
            rank: u32::MAX,
            message: "coordinator gone".into(),
        };
        assert!(c.to_string().starts_with("run aborted"));
        let p = NetError::Protocol("bad frame".into());
        assert!(p.to_string().contains("bad frame"));
    }
}
