//! Oracle properties of the distributed runtime.
//!
//! Two layers, mirroring `crates/core/tests/variant_equivalence.rs`:
//!
//! * the *pure* exchange — for random databases and any worker count,
//!   routing per-block partial tid-lists to their owners and
//!   concatenating in rank order reproduces the tid-lists a single
//!   sequential transform builds (the §6.3 offset-placement invariant);
//! * the *real* runtime — a live loopback cluster mines exactly the
//!   frequent set of the sequential miner.

use apriori::reference::random_db;
use dbstore::{BlockPartition, HorizontalDb};
use eclat::pipeline::frequent_l2;
use eclat::transform::{build_pair_tidlists, count_pairs, index_pairs};
use eclat_net::exchange::{assemble, route_partials};
use eclat_net::{mine_distributed, start_worker, DistConfig, WorkerConfig};
use mining_types::{MinSupport, OpMeter};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Run the pure exchange for `num_workers` blocks and return the
/// assembled global tid-lists of every frequent pair.
fn exchanged_lists(
    db: &HorizontalDb,
    threshold: u32,
    num_workers: u32,
) -> (Vec<(u32, u32)>, Vec<tidlist::TidList>) {
    let tri = count_pairs(db, 0..db.num_transactions(), &mut OpMeter::new());
    let l2 = frequent_l2(&tri, threshold);
    let idx = index_pairs(&l2);
    let partition = BlockPartition::equal_blocks(db.num_transactions(), num_workers as usize);

    // Every slot owned by worker 0 — ownership does not affect the
    // concatenation invariant, and this keeps all slots observable.
    let slot_owner = vec![0u32; l2.len()];
    let mut deposits: BTreeMap<u32, _> = BTreeMap::new();
    for rank in 0..num_workers {
        let range = partition.block(rank as usize);
        let tid_offset = range.start as u32;
        // Rebuild the block as its own zero-based database, exactly as a
        // worker sees it after `Assign`.
        let block_db = HorizontalDb::from_transactions(
            db.iter_range(range)
                .map(|(_, items)| items.to_vec())
                .collect(),
        )
        .with_num_items(db.num_items());
        let lists = build_pair_tidlists(
            &block_db,
            0..block_db.num_transactions(),
            &idx,
            &mut OpMeter::new(),
        );
        let routed = route_partials(&lists, &slot_owner, 1, tid_offset);
        deposits.insert(rank, routed.into_iter().next().unwrap());
    }
    let lists = assemble(&deposits, l2.len()).unwrap();
    (l2.iter().map(|&(a, b)| (a.0, b.0)).collect(), lists)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exchange_reassembles_the_sequential_tidlists(
        seed in 0u64..1_000_000,
        num_txns in 1usize..160,
        num_items in 4u32..24,
        avg_len in 2usize..8,
        num_workers in 1u32..9,
        threshold in 1u32..12,
    ) {
        let db = random_db(seed, num_txns, num_items, avg_len);
        // Oracle: one transform over the whole database.
        let tri = count_pairs(&db, 0..db.num_transactions(), &mut OpMeter::new());
        let l2 = frequent_l2(&tri, threshold);
        let idx = index_pairs(&l2);
        let global = build_pair_tidlists(&db, 0..db.num_transactions(), &idx, &mut OpMeter::new());

        let (pairs, lists) = exchanged_lists(&db, threshold, num_workers);
        prop_assert_eq!(pairs.len(), l2.len());
        for (slot, (oracle, assembled)) in global.iter().zip(&lists).enumerate() {
            prop_assert_eq!(
                oracle.tids(), assembled.tids(),
                "slot {} (pair {:?}) diverged with {} workers",
                slot, pairs[slot], num_workers
            );
        }
    }
}

proptest! {
    // Each case boots a real loopback cluster; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn live_cluster_equals_sequential_miner(
        seed in 0u64..100_000,
        num_workers in 1usize..5,
        pct in 2u32..12,
    ) {
        let db = random_db(seed, 120, 16, 6);
        let minsup = MinSupport::from_percent(f64::from(pct));
        let oracle = eclat::sequential::mine(&db, minsup);

        let workers: Vec<_> = (0..num_workers)
            .map(|_| start_worker(&WorkerConfig::default()).unwrap())
            .collect();
        let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
        let report = mine_distributed(&db, minsup, &addrs, &DistConfig::default()).unwrap();

        prop_assert_eq!(&report.frequent, &oracle, "W={}", num_workers);
        prop_assert_eq!(report.num_workers, num_workers);
        let stats = &report.stats;
        prop_assert_eq!(stats.num_frequent, oracle.len() as u64);
        let cluster = stats.cluster.as_ref().expect("dist runs carry a cluster section");
        prop_assert_eq!(cluster.procs.len(), num_workers);
    }
}
