//! Hybrid (W x P) and out-of-core workers: golden equivalence + the
//! per-thread accounting invariant.
//!
//! The tentpole claims for the worker-as-host runtime, pinned:
//!
//! * `dmine(W x P)` returns exactly the sequential miner's frequent
//!   set — for every tid-list representation, with spill off (generous
//!   budget) and with spill forced on every class (budget 0);
//! * a budget-0 run actually moves bytes through the out-of-core store
//!   and faults every one of them back (`read == written > 0`);
//! * the measured `cluster` section carries one processor row per
//!   worker *thread*, and every row satisfies
//!   `compute + disk + net + idle <= wall` with all terms
//!   non-negative — the idle-accounting regression the simulator's
//!   schema promises.

use apriori::reference::random_db;
use eclat::{EclatConfig, Representation};
use eclat_net::{mine_distributed, start_worker, DistConfig, WorkerConfig};
use mining_types::MinSupport;

fn hybrid_workers(w: usize, p: usize, mem_budget: Option<u64>) -> Vec<eclat_net::WorkerHandle> {
    (0..w)
        .map(|_| {
            start_worker(&WorkerConfig {
                threads: p,
                mem_budget,
                ..WorkerConfig::default()
            })
            .expect("start worker")
        })
        .collect()
}

fn addrs_of(workers: &[eclat_net::WorkerHandle]) -> Vec<String> {
    workers.iter().map(|w| w.addr().to_string()).collect()
}

#[test]
fn hybrid_and_spilled_runs_match_sequential_across_representations() {
    let db = random_db(11, 300, 16, 7);
    let minsup = MinSupport::from_percent(2.0);
    let representations = [
        Representation::TidList,
        Representation::Diffset,
        Representation::AutoSwitch { depth: 2 },
        Representation::Bitmap,
        Representation::AutoDensity { permille: 8 },
    ];
    for repr in representations {
        let cfg = EclatConfig::with_representation(repr);
        let oracle =
            eclat::sequential::mine_with(&db, minsup, &cfg, &mut mining_types::OpMeter::new());
        for budget in [None, Some(0)] {
            let workers = hybrid_workers(2, 2, budget);
            let dist_cfg = DistConfig {
                cfg: cfg.clone(),
                ..DistConfig::default()
            };
            let report = mine_distributed(&db, minsup, &addrs_of(&workers), &dist_cfg)
                .unwrap_or_else(|e| panic!("{repr:?} budget {budget:?}: {e}"));
            assert_eq!(
                report.frequent, oracle,
                "{repr:?} budget {budget:?} diverged from sequential"
            );
            match budget {
                // Budget 0: every class spills and every class faults
                // back, so the two byte counters agree and are nonzero.
                Some(0) => {
                    assert!(
                        report.spill_bytes_written > 0,
                        "{repr:?}: zero budget must spill"
                    );
                    assert_eq!(
                        report.spill_bytes_read, report.spill_bytes_written,
                        "{repr:?}: every spilled byte is read back exactly once"
                    );
                }
                _ => {
                    assert_eq!(report.spill_bytes_written, 0, "{repr:?}: no spill expected");
                    assert_eq!(report.spill_bytes_read, 0);
                }
            }
        }
    }
}

#[test]
fn cluster_reports_one_row_per_thread_with_consistent_idle() {
    let db = random_db(23, 400, 14, 6);
    let minsup = MinSupport::from_percent(2.0);
    let (w, p) = (2usize, 3usize);
    // A tiny (but nonzero) budget exercises the spill path so disk time
    // can show up in the rows it is attributed to.
    let workers = hybrid_workers(w, p, Some(1024));
    let report = mine_distributed(&db, minsup, &addrs_of(&workers), &DistConfig::default())
        .expect("hybrid run");
    let cluster = report.stats.cluster.expect("dist cluster section");

    assert_eq!(
        cluster.procs.len(),
        w * p,
        "one processor row per worker thread"
    );
    let eps = 1e-9;
    for row in &cluster.procs {
        assert!(row.compute_secs >= 0.0, "proc {}", row.proc);
        assert!(row.disk_secs >= 0.0, "proc {}", row.proc);
        assert!(row.net_secs >= 0.0, "proc {}", row.proc);
        assert!(row.idle_secs >= 0.0, "derived idle is clamped");
        assert!(row.finish_secs > 0.0, "proc {}", row.proc);
        // The invariant the idle fix restores: accounted time never
        // exceeds the worker's wall clock.
        assert!(
            row.compute_secs + row.disk_secs + row.net_secs + row.idle_secs
                <= row.finish_secs + eps,
            "proc {}: {} + {} + {} + {} > {}",
            row.proc,
            row.compute_secs,
            row.disk_secs,
            row.net_secs,
            row.idle_secs,
            row.finish_secs
        );
    }
    // Row ids are sequential across the whole fleet.
    let ids: Vec<u64> = cluster.procs.iter().map(|r| r.proc).collect();
    assert_eq!(ids, (0..(w * p) as u64).collect::<Vec<_>>());
    // Session-thread serial work and the network live on each worker's
    // first row; the fleet as a whole moved real bytes.
    let total_sent: u64 = cluster.procs.iter().map(|r| r.bytes_sent).sum();
    assert!(total_sent > 0, "exchange moved bytes");
}
