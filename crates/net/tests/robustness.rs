//! Loopback robustness: the failure modes ISSUE'd for the runtime.
//!
//! * handshake version mismatch is rejected with a diagnostic;
//! * a worker that dies (or goes silent) mid-exchange aborts the run
//!   at the coordinator — with a useful message and *without hanging*;
//! * truncated and oversized frames are answered and never wedge the
//!   worker;
//! * deposits for unknown run ids are rejected (cross-talk guard) and
//!   two concurrent runs with distinct run ids share a fleet cleanly.

use apriori::reference::random_db;
use dbstore::binfmt;
use eclat_net::proto::{Message, MAX_NET_FRAME, PROTOCOL_VERSION};
use eclat_net::{mine_distributed, start_worker, DistConfig, NetError, WorkerConfig};
use mining_types::MinSupport;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;
use wire::{read_frame, write_frame, Frame};

fn send_msg(stream: &mut TcpStream, msg: &Message) {
    write_frame(stream, &msg.encode()).unwrap();
}

fn recv_msg(stream: &mut TcpStream) -> Message {
    match read_frame(stream, MAX_NET_FRAME).unwrap() {
        Frame::Payload(p) => Message::decode(&p).unwrap(),
        other => panic!("expected a payload frame, got {other:?}"),
    }
}

fn fast_worker_config() -> WorkerConfig {
    WorkerConfig {
        io_timeout: Duration::from_secs(5),
        exchange_timeout: Duration::from_secs(2),
        ..WorkerConfig::default()
    }
}

fn fast_dist_config() -> DistConfig {
    DistConfig {
        io_timeout: Duration::from_secs(30),
        ..DistConfig::default()
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let worker = start_worker(&WorkerConfig::default()).unwrap();
    let mut s = TcpStream::connect(worker.addr()).unwrap();
    send_msg(
        &mut s,
        &Message::Hello {
            version: PROTOCOL_VERSION + 7,
            run_id: 42,
            rank: 0,
            num_workers: 1,
        },
    );
    match recv_msg(&mut s) {
        Message::Abort {
            run_id, message, ..
        } => {
            assert_eq!(run_id, 42);
            assert!(message.contains("version mismatch"), "{message}");
        }
        other => panic!("expected Abort, got {other:?}"),
    }
}

#[test]
fn duplicate_run_id_is_refused() {
    let worker = start_worker(&WorkerConfig::default()).unwrap();
    let hello = Message::Hello {
        version: PROTOCOL_VERSION,
        run_id: 77,
        rank: 0,
        num_workers: 1,
    };
    let mut first = TcpStream::connect(worker.addr()).unwrap();
    send_msg(&mut first, &hello);
    assert!(matches!(
        recv_msg(&mut first),
        Message::HelloAck { run_id: 77 }
    ));

    let mut second = TcpStream::connect(worker.addr()).unwrap();
    send_msg(&mut second, &hello);
    match recv_msg(&mut second) {
        Message::Abort { message, .. } => assert!(message.contains("already active"), "{message}"),
        other => panic!("expected Abort, got {other:?}"),
    }
}

#[test]
fn partials_for_unknown_run_are_rejected() {
    let worker = start_worker(&WorkerConfig::default()).unwrap();
    let mut s = TcpStream::connect(worker.addr()).unwrap();
    send_msg(
        &mut s,
        &Message::Partials {
            run_id: 0xDEAD,
            from_rank: 3,
            entries: vec![(0, vec![1, 2, 3])],
        },
    );
    match recv_msg(&mut s) {
        Message::Abort { message, .. } => assert!(message.contains("no active run"), "{message}"),
        other => panic!("expected Abort, got {other:?}"),
    }
}

#[test]
fn malformed_frames_get_a_diagnostic_and_the_worker_survives() {
    let worker = start_worker(&fast_worker_config()).unwrap();

    // Oversized: announced length beyond the limit.
    let mut s = TcpStream::connect(worker.addr()).unwrap();
    s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
    match recv_msg(&mut s) {
        Message::Abort { message, .. } => assert!(message.contains("bad first frame"), "{message}"),
        other => panic!("expected Abort, got {other:?}"),
    }
    drop(s);

    // Truncated: header promises 100 bytes, peer hangs up after 3.
    let mut s = TcpStream::connect(worker.addr()).unwrap();
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[1, 2, 3]).unwrap();
    drop(s);

    // Undecodable payload (unknown opcode).
    let mut s = TcpStream::connect(worker.addr()).unwrap();
    write_frame(&mut s, &[0xEE, 1, 2]).unwrap();
    match recv_msg(&mut s) {
        Message::Abort { message, .. } => assert!(message.contains("opcode"), "{message}"),
        other => panic!("expected Abort, got {other:?}"),
    }
    drop(s);

    // After all that abuse the worker still mines correctly.
    let db = random_db(5, 80, 12, 5);
    let minsup = MinSupport::from_percent(5.0);
    let report = mine_distributed(
        &db,
        minsup,
        &[worker.addr().to_string()],
        &fast_dist_config(),
    )
    .unwrap();
    assert_eq!(report.frequent, eclat::sequential::mine(&db, minsup));
}

/// A scripted fake worker: handshakes, answers `Counts`, acknowledges
/// incoming `Partials` — but never sends its own partials and never
/// finishes. Drives the real workers into their exchange deadline.
fn spawn_zombie() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        // First connection: the coordinator session.
        let (mut coord, _) = listener.accept().unwrap();
        coord
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let run_id = match recv_msg(&mut coord) {
            Message::Hello { run_id, .. } => run_id,
            other => panic!("zombie expected Hello, got {other:?}"),
        };
        send_msg(&mut coord, &Message::HelloAck { run_id });
        let num_items = match recv_msg(&mut coord) {
            Message::Assign { block, .. } => {
                let (db, _) = binfmt::read_horizontal(&mut &block[..]).unwrap();
                db.num_items() as usize
            }
            other => panic!("zombie expected Assign, got {other:?}"),
        };
        send_msg(
            &mut coord,
            &Message::Counts {
                run_id,
                num_items: num_items as u32,
                triangle: vec![0; num_items * (num_items - 1) / 2],
                items: vec![],
            },
        );
        let _plan = recv_msg(&mut coord); // Plan arrives...
                                          // ...and the zombie goes silent toward the run, except for
                                          // acking peer partials so the real workers genuinely reach
                                          // their inbox wait (and time out there, not on the ack).
        loop {
            let Ok((mut peer, _)) = listener.accept() else {
                break;
            };
            peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            if let Ok(Frame::Payload(p)) = read_frame(&mut peer, MAX_NET_FRAME) {
                if let Ok(Message::Partials { run_id, .. }) = Message::decode(&p) {
                    send_msg(&mut peer, &Message::PartialsAck { run_id });
                }
            }
        }
    });
    (addr, handle)
}

#[test]
fn worker_silent_in_exchange_aborts_the_run_without_hanging() {
    let w0 = start_worker(&fast_worker_config()).unwrap();
    let w1 = start_worker(&fast_worker_config()).unwrap();
    let (zombie_addr, _zombie) = spawn_zombie();

    let db = random_db(11, 90, 14, 6);
    let addrs = vec![
        w0.addr().to_string(),
        w1.addr().to_string(),
        zombie_addr.to_string(),
    ];
    let err = mine_distributed(
        &db,
        MinSupport::from_percent(4.0),
        &addrs,
        &fast_dist_config(),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("exchange timed out") || msg.contains("stalled"),
        "unexpected diagnostic: {msg}"
    );

    // The surviving workers are reusable for a fresh run immediately.
    let minsup = MinSupport::from_percent(5.0);
    let report = mine_distributed(&db, minsup, &addrs[..2], &fast_dist_config()).unwrap();
    assert_eq!(report.frequent, eclat::sequential::mine(&db, minsup));
}

#[test]
fn worker_death_after_handshake_aborts_with_a_diagnostic() {
    let w0 = start_worker(&fast_worker_config()).unwrap();
    // A "worker" that accepts the session and immediately dies.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        if let Message::Hello { run_id, .. } = recv_msg(&mut s) {
            send_msg(&mut s, &Message::HelloAck { run_id });
        }
        // Drop everything: connection closes mid-run.
    });

    let db = random_db(3, 60, 10, 5);
    let err = mine_distributed(
        &db,
        MinSupport::from_percent(5.0),
        &[w0.addr().to_string(), dead_addr.to_string()],
        &fast_dist_config(),
    )
    .unwrap_err();
    match &err {
        NetError::Worker { rank, message } => {
            assert_eq!(*rank, 1, "{message}");
            assert!(
                message.contains("closed")
                    || message.contains("died")
                    || message.contains("failed"),
                "{message}"
            );
        }
        other => panic!("expected a Worker error, got {other:?}"),
    }
    t.join().unwrap();
}

#[test]
fn concurrent_runs_with_distinct_ids_share_a_fleet() {
    let w0 = start_worker(&WorkerConfig::default()).unwrap();
    let w1 = start_worker(&WorkerConfig::default()).unwrap();
    let addrs = vec![w0.addr().to_string(), w1.addr().to_string()];

    let db_a = random_db(21, 100, 14, 6);
    let db_b = random_db(99, 130, 12, 5);
    let minsup = MinSupport::from_percent(5.0);

    let (addrs_a, addrs_b) = (addrs.clone(), addrs.clone());
    let ta = std::thread::spawn(move || {
        let dist = DistConfig {
            run_id: Some(0xAAAA),
            ..DistConfig::default()
        };
        mine_distributed(&db_a, minsup, &addrs_a, &dist).map(|r| r.frequent)
    });
    let tb = std::thread::spawn(move || {
        let dist = DistConfig {
            run_id: Some(0xBBBB),
            ..DistConfig::default()
        };
        mine_distributed(&db_b, minsup, &addrs_b, &dist).map(|r| r.frequent)
    });
    let fa = ta.join().unwrap().unwrap();
    let fb = tb.join().unwrap().unwrap();

    let db_a = random_db(21, 100, 14, 6);
    let db_b = random_db(99, 130, 12, 5);
    assert_eq!(fa, eclat::sequential::mine(&db_a, minsup));
    assert_eq!(fb, eclat::sequential::mine(&db_b, minsup));
    assert_ne!(fa, fb, "the two runs mined different databases");
}

#[test]
fn worker_stats_measure_the_run() {
    let worker_cfgs: Vec<_> = (0..2)
        .map(|_| start_worker(&WorkerConfig::default()).unwrap())
        .collect();
    let addrs: Vec<String> = worker_cfgs.iter().map(|w| w.addr().to_string()).collect();
    let db = random_db(7, 200, 14, 6);
    let minsup = MinSupport::from_percent(3.0);
    let report = mine_distributed(&db, minsup, &addrs, &DistConfig::default()).unwrap();
    let stats = report.stats;

    // Measured phases in paper order.
    let labels: Vec<&str> = stats.phases.iter().map(|p| p.label.as_str()).collect();
    assert_eq!(labels, vec!["init", "transform", "async", "reduce"]);
    assert!(stats.phases[0].ops.pair_incr > 0, "init counted pairs");
    assert!(stats.phases[2].ops.tid_cmp > 0, "async ran joins");

    // The cluster section carries real per-worker measurements.
    let cluster = stats.cluster.as_ref().expect("dist cluster section");
    assert_eq!(cluster.procs.len(), 2);
    for p in &cluster.procs {
        assert!(p.bytes_sent > 0, "worker {} sent frames", p.proc);
        assert!(p.bytes_received > 0, "worker {} received frames", p.proc);
        assert!(p.finish_secs > 0.0);
        assert!(p.compute_secs >= 0.0 && p.idle_secs >= 0.0 && p.net_secs >= 0.0);
    }
    assert!(cluster.load_imbalance >= 1.0);
    assert!(cluster.total_secs > 0.0);

    // Op totals match a sequential run of the same mining work.
    let mut meter = mining_types::OpMeter::new();
    let (oracle, seq_stats) = eclat::pipeline::run_stats(
        &db,
        minsup,
        &eclat::EclatConfig::default(),
        &mut meter,
        &eclat::pipeline::Serial,
        "sequential",
    );
    assert_eq!(report.frequent, oracle);
    assert_eq!(stats.num_frequent, seq_stats.num_frequent);
    assert_eq!(stats.levels, seq_stats.levels);
    assert_eq!(stats.classes, seq_stats.classes);
    assert_eq!(stats.kernel_totals(), seq_stats.kernel_totals());
    // Pair counting splits across blocks but sums to the same work.
    assert_eq!(
        stats.phases[0].ops.pair_incr,
        seq_stats.phases[0].ops.pair_incr
    );
}
