//! Property-based tests of the discrete-event replay engine: for any
//! well-formed set of traces, the replay must be deterministic, causally
//! consistent, and conservative (no processor finishes before its own
//! work could possibly complete).

use memchannel::collective::{lockstep_exchange, sum_reduce, BarrierSeq};
use memchannel::{ClusterConfig, CostModel, Trace, TraceRecorder};
use proptest::prelude::*;

/// A random but *well-formed* communication program: a sequence of
/// rounds; each round every processor does some compute and disk work,
/// then either (a) a barrier, or (b) a ring send/recv (proc p sends to
/// p+1 mod T) — always matched, so no deadlock by construction.
#[derive(Clone, Debug)]
enum Round {
    Work(Vec<(f64, u64)>), // per-proc (compute ns, disk bytes)
    Barrier,
    Ring(Vec<u64>), // per-proc payload bytes
}

fn build_traces(cfg: &ClusterConfig, rounds: &[Round]) -> Vec<Trace> {
    let t = cfg.total();
    let cost = CostModel::dec_alpha_1997();
    let mut recs: Vec<TraceRecorder> = (0..t)
        .map(|p| TraceRecorder::new(p, cost.clone()))
        .collect();
    let mut barrier = 0u64;
    let mut tag = 0u64;
    for round in rounds {
        match round {
            Round::Work(work) => {
                for (p, &(ns, bytes)) in work.iter().enumerate() {
                    recs[p].compute_ns(ns);
                    if bytes > 0 {
                        recs[p].disk_read(bytes);
                    }
                }
            }
            Round::Barrier => {
                for r in recs.iter_mut() {
                    r.barrier(barrier);
                }
                barrier += 1;
            }
            Round::Ring(bytes) => {
                if t == 1 {
                    continue;
                }
                for (p, &b) in bytes.iter().enumerate() {
                    let to = (p + 1) % t;
                    recs[p].send_tagged(to, b, tag);
                }
                for (p, _) in bytes.iter().enumerate() {
                    let from = (p + t - 1) % t;
                    recs[p].recv(from, tag);
                }
                tag += 1;
            }
        }
    }
    recs.into_iter().map(|r| r.finish()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_is_deterministic_and_conservative(
        hosts in 1usize..4,
        ppn in 1usize..4,
        rounds_seed in any::<u64>(),
    ) {
        let cfg = ClusterConfig::new(hosts, ppn);
        let t = cfg.total();
        // derive rounds from the seed via the strategy's value tree —
        // simpler: regenerate with a fixed small program shaped by seed
        let mut s = rounds_seed | 1;
        let mut next = move || { s ^= s >> 12; s ^= s << 25; s ^= s >> 27; s.wrapping_mul(0x2545F4914F6CDD1D) };
        let mut rounds = Vec::new();
        for _ in 0..(1 + next() % 6) {
            match next() % 3 {
                0 => rounds.push(Round::Work(
                    (0..t).map(|_| ((next() % 10_000_000) as f64, next() % 500_000)).collect())),
                1 => rounds.push(Round::Barrier),
                _ => rounds.push(Round::Ring((0..t).map(|_| 1 + next() % 200_000).collect())),
            }
        }
        let cost = CostModel::dec_alpha_1997();
        let t1 = memchannel::des::replay(&cfg, &cost, &build_traces(&cfg, &rounds));
        let t2 = memchannel::des::replay(&cfg, &cost, &build_traces(&cfg, &rounds));
        prop_assert_eq!(&t1, &t2, "determinism");

        for p in &t1.per_proc {
            // conservation: elapsed >= own busy time; busy components
            // are non-negative; finish bounded by makespan
            prop_assert!(p.compute_ns >= 0.0 && p.disk_ns >= 0.0 && p.net_ns >= 0.0);
            let busy = p.compute_ns + p.disk_ns + p.net_ns;
            prop_assert!(
                p.finish_ns + 1e-6 >= busy,
                "finish {} < busy {busy}", p.finish_ns
            );
            prop_assert!(p.finish_ns <= t1.total_ns() + 1e-6);
            // phase attribution covers the whole elapsed time
            let attributed: f64 = p.phases.iter().map(|(_, ns)| ns).sum();
            prop_assert!(
                (attributed - p.finish_ns).abs() < 1.0,
                "attributed {attributed} vs finish {}", p.finish_ns
            );
        }
    }

    #[test]
    fn collectives_never_deadlock(
        hosts in 1usize..4,
        ppn in 1usize..3,
        tri_kb in 1u64..256,
        out_kb in proptest::collection::vec(0u64..512, 1..10),
    ) {
        let cfg = ClusterConfig::new(hosts, ppn);
        let t = cfg.total();
        let cost = CostModel::dec_alpha_1997();
        let mut recs: Vec<TraceRecorder> = (0..t)
            .map(|p| TraceRecorder::new(p, cost.clone()))
            .collect();
        let mut b = BarrierSeq::new();
        sum_reduce(&mut recs, &vec![tri_kb * 1024; t], tri_kb * 1024, &mut b);
        // random outgoing matrix from the out_kb pool
        let outgoing: Vec<Vec<u64>> = (0..t)
            .map(|p| (0..t).map(|q| {
                if p == q { 0 } else { out_kb[(p * t + q) % out_kb.len()] * 1024 }
            }).collect())
            .collect();
        let rounds = lockstep_exchange(&mut recs, &outgoing, 64 * 1024, &mut b);
        sum_reduce(&mut recs, &vec![1024; t], 1024, &mut b);
        let traces: Vec<Trace> = recs.into_iter().map(|r| r.finish()).collect();
        let tl = memchannel::des::replay(&cfg, &cost, &traces);
        prop_assert!(tl.total_ns() >= 0.0);
        let max_out: u64 = outgoing.iter().map(|row| row.iter().sum::<u64>()).max().unwrap();
        prop_assert_eq!(rounds as u64, max_out.div_ceil(64 * 1024), "round count");
    }

    #[test]
    fn barrier_time_is_at_least_slowest_processor(
        work in proptest::collection::vec(0.0f64..1e8, 2..6),
    ) {
        let cfg = ClusterConfig::new(work.len(), 1);
        let cost = CostModel::dec_alpha_1997();
        let mut recs: Vec<TraceRecorder> = (0..work.len())
            .map(|p| TraceRecorder::new(p, cost.clone()))
            .collect();
        for (r, &w) in recs.iter_mut().zip(&work) {
            r.compute_ns(w);
            r.barrier(0);
        }
        let traces: Vec<Trace> = recs.into_iter().map(|r| r.finish()).collect();
        let tl = memchannel::des::replay(&cfg, &cost, &traces);
        let slowest = work.iter().copied().fold(0.0, f64::max);
        let expect = slowest + cost.barrier_ns;
        for p in &tl.per_proc {
            prop_assert!((p.finish_ns - expect).abs() < 1.0);
        }
    }
}
