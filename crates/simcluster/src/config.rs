//! Cluster topology and the calibrated cost model.

use mining_types::OpMeter;

/// Topology of the simulated cluster: `hosts × procs_per_host` processors.
///
/// Matches the paper's notation: `H` hosts, `P` processors per host,
/// `T = H·P` total (§8.1). Processor ids are dense `0..T`, host-major:
/// processor `p` lives on host `p / procs_per_host`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// `H` — number of hosts (nodes).
    pub hosts: usize,
    /// `P` — processors per host.
    pub procs_per_host: usize,
}

impl ClusterConfig {
    /// A new topology.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(hosts: usize, procs_per_host: usize) -> ClusterConfig {
        assert!(hosts > 0 && procs_per_host > 0, "empty cluster");
        ClusterConfig {
            hosts,
            procs_per_host,
        }
    }

    /// A single sequential processor.
    pub fn sequential() -> ClusterConfig {
        ClusterConfig::new(1, 1)
    }

    /// The paper's full testbed: 8 hosts × 4 processors.
    pub fn dec_testbed() -> ClusterConfig {
        ClusterConfig::new(8, 4)
    }

    /// `T = H·P` — total processors.
    #[inline]
    pub fn total(&self) -> usize {
        self.hosts * self.procs_per_host
    }

    /// Host of processor `p`.
    #[inline]
    pub fn host_of(&self, p: usize) -> usize {
        debug_assert!(p < self.total());
        p / self.procs_per_host
    }

    /// Processor ids on host `h`.
    pub fn procs_on_host(&self, h: usize) -> std::ops::Range<usize> {
        debug_assert!(h < self.hosts);
        h * self.procs_per_host..(h + 1) * self.procs_per_host
    }

    /// Do two processors share a host (and hence a local disk)?
    #[inline]
    pub fn same_host(&self, p: usize, q: usize) -> bool {
        self.host_of(p) == self.host_of(q)
    }

    /// The paper's configuration label, e.g. `P=4,H=2,T=8`.
    pub fn label(&self) -> String {
        format!(
            "P={},H={},T={}",
            self.procs_per_host,
            self.hosts,
            self.total()
        )
    }
}

/// Cost constants converting abstract trace steps into virtual
/// nanoseconds. `dec_alpha_1997` is calibrated from the figures the
/// paper publishes (§6.1: 5.2 µs MC latency, 30 MB/s per-link, ~32 MB/s
/// aggregate; 233 MHz Alphas; 1997-era 2 GB local SCSI disks) plus the
/// locality arguments of §7 — hash-tree probes are priced several times a
/// sequential tid comparison because *"complicated hash structures also
/// suffer from poor cache locality \[13\]"* while tid-lists are scanned
/// sequentially.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// ns per tid-list element comparison (sequential access).
    pub tid_cmp_ns: f64,
    /// ns per hash-tree node/entry probe (pointer-chasing, cache-hostile).
    pub hash_probe_ns: f64,
    /// ns per triangular-array pair increment (random access into a large
    /// array).
    pub pair_incr_ns: f64,
    /// ns per k-subset generated from a transaction.
    pub subset_gen_ns: f64,
    /// ns per candidate generated in the join step.
    pub cand_gen_ns: f64,
    /// ns per record touched (transaction parse, tid append, …).
    pub record_ns: f64,
    /// Local-disk sequential bandwidth, bytes/s.
    pub disk_bw: f64,
    /// Fixed per-request disk overhead (seek + settle), ns.
    pub disk_seek_ns: f64,
    /// Memory Channel one-sided write latency, ns (paper: 5.2 µs).
    pub mc_latency_ns: f64,
    /// Per-link MC transfer bandwidth, bytes/s (paper: 30 MB/s).
    pub mc_link_bw: f64,
    /// MC hub aggregate bandwidth, bytes/s (paper: ~32 MB/s).
    pub mc_hub_bw: f64,
    /// Intra-host copy bandwidth (write-doubling path), bytes/s.
    pub local_copy_bw: f64,
    /// Flat cost of a barrier once the last processor arrives, ns.
    pub barrier_ns: f64,
}

impl CostModel {
    /// The 1997 DEC Alpha / Memory Channel calibration (see type docs).
    pub fn dec_alpha_1997() -> CostModel {
        const MB: f64 = 1024.0 * 1024.0;
        CostModel {
            tid_cmp_ns: 40.0,
            hash_probe_ns: 900.0,
            pair_incr_ns: 400.0,
            subset_gen_ns: 150.0,
            cand_gen_ns: 2_000.0,
            record_ns: 800.0,
            disk_bw: 4.0 * MB,
            disk_seek_ns: 10_000_000.0, // 10 ms
            mc_latency_ns: 5_200.0,
            mc_link_bw: 30.0 * MB,
            mc_hub_bw: 32.0 * MB,
            local_copy_bw: 80.0 * MB,
            barrier_ns: 200_000.0, // 0.2 ms
        }
    }

    /// Virtual nanoseconds for a bundle of metered operations.
    pub fn compute_ns(&self, ops: &OpMeter) -> f64 {
        ops.tid_cmp as f64 * self.tid_cmp_ns
            + ops.hash_probe as f64 * self.hash_probe_ns
            + ops.pair_incr as f64 * self.pair_incr_ns
            + ops.subsets_gen as f64 * self.subset_gen_ns
            + ops.cand_gen as f64 * self.cand_gen_ns
            + ops.record as f64 * self.record_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::dec_alpha_1997()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_indexing() {
        let c = ClusterConfig::new(2, 4);
        assert_eq!(c.total(), 8);
        assert_eq!(c.host_of(0), 0);
        assert_eq!(c.host_of(3), 0);
        assert_eq!(c.host_of(4), 1);
        assert_eq!(c.procs_on_host(1), 4..8);
        assert!(c.same_host(4, 7));
        assert!(!c.same_host(3, 4));
    }

    #[test]
    fn label_matches_paper_notation() {
        assert_eq!(ClusterConfig::new(2, 4).label(), "P=4,H=2,T=8");
        assert_eq!(ClusterConfig::sequential().label(), "P=1,H=1,T=1");
        assert_eq!(ClusterConfig::dec_testbed().total(), 32);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_rejected() {
        ClusterConfig::new(0, 4);
    }

    #[test]
    fn compute_ns_prices_categories() {
        let m = CostModel::dec_alpha_1997();
        let mut ops = OpMeter::new();
        ops.tid_cmp = 10;
        ops.hash_probe = 2;
        let ns = m.compute_ns(&ops);
        let expect = 10.0 * m.tid_cmp_ns + 2.0 * m.hash_probe_ns;
        assert!((ns - expect).abs() < 1e-9);
        assert_eq!(m.compute_ns(&OpMeter::new()), 0.0);
    }

    #[test]
    fn hash_probe_costs_more_than_tid_cmp() {
        // The §7 locality argument must be reflected in the calibration.
        let m = CostModel::dec_alpha_1997();
        assert!(m.hash_probe_ns > 3.0 * m.tid_cmp_ns);
    }
}
