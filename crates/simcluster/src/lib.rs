//! A simulated DEC Memory Channel cluster.
//!
//! The paper's testbed — *"a 32-processor (8 nodes, 4 processors each) DEC
//! Alpha cluster inter-connected by the Memory Channel network"* (§6.1) —
//! is reproduced here as a deterministic **trace-replay discrete-event
//! simulator**:
//!
//! 1. Each algorithm executes its *real* computation once per simulated
//!    processor, logging a [`trace::Trace`] of abstract steps:
//!    `Compute(ops)`, `DiskRead/Write(bytes)`, `Send{to,bytes}`,
//!    `Recv{from}`, `Barrier`, plus phase markers.
//! 2. The [`des`] engine replays all traces against resource models —
//!    a per-host disk served FCFS (the local-disk contention of §8.1), a
//!    per-host Memory Channel link plus the shared hub with its aggregate
//!    bandwidth cap and 5.2 µs one-sided write latency (§6.1), and
//!    max-arrival barriers — producing per-processor virtual timelines.
//!
//! Why this substitution is faithful: the paper's claims are about the
//! *cost structure* of the algorithms (disk scans per iteration, barriers
//! per iteration, bytes exchanged, operation counts per layout), all of
//! which are captured exactly; only the constants are modeled, and those
//! are calibrated from the hardware numbers the paper itself publishes.
//! See DESIGN.md §4.
//!
//! [`collective`] implements the paper's communication idioms on top:
//! the §6.2 mutually-exclusive shared-region sum-reduction and the §6.3
//! lock-step alternating 2 MB-buffer tid-list exchange.

pub mod collective;
pub mod config;
pub mod des;
pub mod stats;
pub mod trace;

pub use config::{ClusterConfig, CostModel};
pub use des::{ProcTimeline, Timeline};
pub use trace::{PhaseSteps, Step, Trace, TraceRecorder, BROADCAST};
