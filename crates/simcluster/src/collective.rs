//! The paper's communication idioms, recorded as trace steps.
//!
//! * [`sum_reduce`] — §6.2: *"We allocate an array … on the shared Memory
//!   Channel region. Each processor then accesses this shared array in a
//!   mutually exclusive manner, and increments the current count by its
//!   partial counts. It then waits at a barrier for the last processor to
//!   update the shared array."* The mutual exclusion emerges from hub
//!   FCFS serialization of the broadcast writes; the barrier makes the
//!   global array visible; the final local read is a memory copy.
//!
//! * [`lockstep_exchange`] — §6.3: *"Each processor allocates a 2MB
//!   buffer for a transmit region and a receive region … The
//!   communication proceeds in a lock-step manner with alternating write
//!   and read phases."* Per round every processor broadcasts up to one
//!   buffer of its outgoing tid-lists, a barrier ends the write phase,
//!   every processor scans the receive regions and copies out the bytes
//!   addressed to it, and a barrier ends the read phase.

use crate::trace::{TraceRecorder, BROADCAST};

/// Dispenses globally increasing barrier ids.
#[derive(Debug, Default)]
pub struct BarrierSeq {
    next: u64,
}

impl BarrierSeq {
    /// Start at zero.
    pub fn new() -> BarrierSeq {
        BarrierSeq::default()
    }

    /// The next barrier id.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

/// §6.2 sum-reduction: every processor contributes `bytes[p]` of partial
/// counts to a shared region and afterwards reads the `result_bytes`
/// global array locally.
pub fn sum_reduce(
    recorders: &mut [TraceRecorder],
    bytes: &[u64],
    result_bytes: u64,
    barriers: &mut BarrierSeq,
) {
    assert_eq!(recorders.len(), bytes.len());
    let id = barriers.next_id();
    for (r, &b) in recorders.iter_mut().zip(bytes) {
        if b > 0 {
            r.send_tagged(BROADCAST, b, id);
        }
        r.barrier(id);
        if result_bytes > 0 {
            r.local_copy(result_bytes);
        }
    }
}

/// Broadcast without a reduction read-back (used for the partial-count
/// announcements of §6.2's last paragraph and Candidate Distribution's
/// asynchronous pruning information).
pub fn broadcast_all(recorders: &mut [TraceRecorder], bytes: &[u64], barriers: &mut BarrierSeq) {
    assert_eq!(recorders.len(), bytes.len());
    let id = barriers.next_id();
    for (r, &b) in recorders.iter_mut().zip(bytes) {
        if b > 0 {
            r.send_tagged(BROADCAST, b, id);
        }
        r.barrier(id);
    }
}

/// §6.3 lock-step tid-list exchange. `outgoing[p][q]` is the number of
/// bytes processor `p` must deliver to processor `q` (the diagonal is
/// ignored — a processor's own tid-lists never travel). Returns the
/// number of write/read rounds.
///
/// Per round each processor broadcasts up to `buffer_bytes` of its
/// remaining outgoing data (destinations drained in processor order),
/// then after a barrier copies the bytes addressed to it out of every
/// receive region, then a second barrier closes the read phase.
pub fn lockstep_exchange(
    recorders: &mut [TraceRecorder],
    outgoing: &[Vec<u64>],
    buffer_bytes: u64,
    barriers: &mut BarrierSeq,
) -> usize {
    let p = recorders.len();
    assert!(buffer_bytes > 0, "buffer must be non-empty");
    assert_eq!(outgoing.len(), p);
    assert!(outgoing.iter().all(|row| row.len() == p));

    // Remaining per (sender, destination), drained destination-major.
    let mut remaining: Vec<Vec<u64>> = outgoing.to_vec();
    for (s, row) in remaining.iter_mut().enumerate() {
        row[s] = 0;
    }

    let mut rounds = 0usize;
    loop {
        let total_left: u64 = remaining.iter().flatten().sum();
        if total_left == 0 {
            break;
        }
        rounds += 1;
        // Write phase: each sender fills one transmit buffer.
        let mut sent_this_round: Vec<Vec<u64>> = vec![vec![0; p]; p];
        let write_id = barriers.next_id();
        for (s, r) in recorders.iter_mut().enumerate() {
            let mut budget = buffer_bytes;
            let mut chunk = 0u64;
            for d in 0..p {
                if budget == 0 {
                    break;
                }
                let take = remaining[s][d].min(budget);
                remaining[s][d] -= take;
                sent_this_round[s][d] = take;
                budget -= take;
                chunk += take;
            }
            if chunk > 0 {
                r.send_tagged(BROADCAST, chunk, write_id);
            }
            r.barrier(write_id);
        }
        // Read phase: each processor copies out the bytes addressed to it.
        let read_id = barriers.next_id();
        for (d, r) in recorders.iter_mut().enumerate() {
            let incoming: u64 = (0..p).map(|s| sent_this_round[s][d]).sum();
            if incoming > 0 {
                r.local_copy(incoming);
            }
            r.barrier(read_id);
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, CostModel};
    use crate::des::replay;
    use crate::trace::Trace;

    fn setup(cfg: &ClusterConfig) -> Vec<TraceRecorder> {
        (0..cfg.total())
            .map(|q| TraceRecorder::new(q, CostModel::dec_alpha_1997()))
            .collect()
    }

    fn run(cfg: &ClusterConfig, recs: Vec<TraceRecorder>) -> crate::Timeline {
        let traces: Vec<Trace> = recs.into_iter().map(|r| r.finish()).collect();
        replay(cfg, &CostModel::dec_alpha_1997(), &traces)
    }

    #[test]
    fn sum_reduce_replays_cleanly() {
        let cfg = ClusterConfig::new(2, 2);
        let mut recs = setup(&cfg);
        let mut b = BarrierSeq::new();
        sum_reduce(&mut recs, &[1000, 1000, 1000, 1000], 1000, &mut b);
        let tl = run(&cfg, recs);
        assert!(tl.total_ns() > 0.0);
        // everyone blocked at the barrier at least a little or paid net
        assert!(tl.per_proc.iter().all(|p| p.blocked_ns + p.net_ns > 0.0));
    }

    #[test]
    fn sum_reduce_cost_grows_with_processors() {
        let c2 = ClusterConfig::new(2, 1);
        let mut r2 = setup(&c2);
        let mut b = BarrierSeq::new();
        sum_reduce(&mut r2, &[1 << 20, 1 << 20], 1 << 20, &mut b);
        let t2 = run(&c2, r2).total_ns();

        let c8 = ClusterConfig::new(8, 1);
        let mut r8 = setup(&c8);
        let mut b = BarrierSeq::new();
        sum_reduce(&mut r8, &[1 << 20; 8], 1 << 20, &mut b);
        let t8 = run(&c8, r8).total_ns();
        assert!(
            t8 > 2.0 * t2,
            "O(P) mutually exclusive updates must serialize: {t2} vs {t8}"
        );
    }

    #[test]
    fn lockstep_exchange_rounds_and_replay() {
        let cfg = ClusterConfig::new(2, 1);
        let mut recs = setup(&cfg);
        let mut b = BarrierSeq::new();
        // p0 → p1: 5 MB; p1 → p0: 1 MB; 2 MB buffers → 3 rounds.
        let outgoing = vec![vec![0, 5 << 20], vec![1 << 20, 0]];
        let rounds = lockstep_exchange(&mut recs, &outgoing, 2 << 20, &mut b);
        assert_eq!(rounds, 3);
        let tl = run(&cfg, recs);
        assert!(tl.total_ns() > 0.0);
    }

    #[test]
    fn lockstep_exchange_ignores_diagonal_and_empty() {
        let cfg = ClusterConfig::new(2, 1);
        let mut recs = setup(&cfg);
        let mut b = BarrierSeq::new();
        // only self-traffic → zero rounds, no steps
        let outgoing = vec![vec![7 << 20, 0], vec![0, 3 << 20]];
        let rounds = lockstep_exchange(&mut recs, &outgoing, 2 << 20, &mut b);
        assert_eq!(rounds, 0);
        assert!(recs.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn lockstep_exchange_all_to_all_scales_with_hub() {
        // 4 hosts all-to-all: total cross bytes dominate via the hub.
        let cfg = ClusterConfig::new(4, 1);
        let mut recs = setup(&cfg);
        let mut b = BarrierSeq::new();
        let mb = 1u64 << 20;
        let outgoing: Vec<Vec<u64>> = (0..4)
            .map(|s| (0..4).map(|d| if s == d { 0 } else { 4 * mb }).collect())
            .collect();
        let rounds = lockstep_exchange(&mut recs, &outgoing, 2 * mb, &mut b);
        assert_eq!(rounds, 6, "12 MB per sender / 2 MB buffer");
        let tl = run(&cfg, recs);
        let cost = CostModel::dec_alpha_1997();
        let total_bytes = 4.0 * 12.0 * mb as f64;
        let hub_floor = total_bytes / cost.mc_hub_bw * 1e9;
        assert!(
            tl.total_ns() >= hub_floor,
            "hub is the bottleneck: {} < {hub_floor}",
            tl.total_ns()
        );
    }

    #[test]
    fn barrier_seq_increases() {
        let mut b = BarrierSeq::new();
        assert_eq!(b.next_id(), 0);
        assert_eq!(b.next_id(), 1);
    }
}
