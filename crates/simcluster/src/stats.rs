//! Timeline reporting: turn a replayed [`Timeline`] into human-readable
//! summaries — per-phase tables, per-processor utilization, and a text
//! Gantt strip — and into the structured [`mining_types::stats`] form the
//! observability layer embeds in [`mining_types::MiningStats`]. Used by
//! the `cluster_simulation` example and the repro binaries' verbose modes.

use crate::des::Timeline;
use crate::trace::{Step, Trace, BROADCAST};
use mining_types::stats::{ClusterStats, ProcStats};

/// Aggregated view of one timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineSummary {
    /// Makespan in seconds.
    pub total_secs: f64,
    /// `(label, max-over-procs seconds, share of makespan)` per phase,
    /// in first-seen order of processor 0.
    pub phases: Vec<(&'static str, f64, f64)>,
    /// Per-processor utilization = (compute+disk+net) / finish.
    pub utilization: Vec<f64>,
    /// Mean utilization across processors.
    pub mean_utilization: f64,
    /// Makespan / slowest-processor-busy-time — 1.0 means the critical
    /// path is pure work, higher means waiting dominates.
    pub wait_factor: f64,
}

/// Summarize a timeline.
///
/// # Panics
/// Panics on an empty timeline.
pub fn summarize(tl: &Timeline) -> TimelineSummary {
    assert!(!tl.per_proc.is_empty(), "empty timeline");
    let total = tl.total_ns();
    let phases: Vec<(&'static str, f64, f64)> = tl.per_proc[0]
        .phases
        .iter()
        .map(|(label, _)| {
            let ns = tl.phase_ns(label);
            (*label, ns / 1e9, if total > 0.0 { ns / total } else { 0.0 })
        })
        .collect();
    let utilization: Vec<f64> = tl
        .per_proc
        .iter()
        .map(|p| {
            let busy = p.compute_ns + p.disk_ns + p.net_ns;
            if p.finish_ns > 0.0 {
                busy / p.finish_ns
            } else {
                1.0
            }
        })
        .collect();
    let mean_utilization = utilization.iter().sum::<f64>() / utilization.len() as f64;
    let max_busy = tl
        .per_proc
        .iter()
        .map(|p| p.compute_ns + p.disk_ns + p.net_ns)
        .fold(0.0f64, f64::max);
    let wait_factor = if max_busy > 0.0 {
        total / max_busy
    } else {
        1.0
    };
    TimelineSummary {
        total_secs: total / 1e9,
        phases,
        utilization,
        mean_utilization,
        wait_factor,
    }
}

/// Render a fixed-width text report.
pub fn render(tl: &Timeline) -> String {
    let s = summarize(tl);
    let mut out = String::new();
    out.push_str(&format!(
        "total {:>10.2}s   mean utilization {:>5.1}%   wait factor {:.2}\n",
        s.total_secs,
        s.mean_utilization * 100.0,
        s.wait_factor
    ));
    for (label, secs, share) in &s.phases {
        out.push_str(&format!(
            "  {label:>12}: {secs:>9.2}s  {:>5.1}%  {}\n",
            share * 100.0,
            bar(*share, 40)
        ));
    }
    for (p, u) in s.utilization.iter().enumerate() {
        out.push_str(&format!(
            "  proc {p:>3} busy {:>5.1}%  {}\n",
            u * 100.0,
            bar(*u, 40)
        ));
    }
    out
}

/// Build the structured per-processor split for [`mining_types::MiningStats`]
/// from a replayed timeline plus the traces it replayed.
///
/// Time splits come from the replay (so they include contention and
/// queueing); byte counts come from the traces — sends via
/// [`Trace::phase_breakdown`], receives by scanning every other trace's
/// `Send` steps ([`BROADCAST`] counts as received by all other
/// processors). Load imbalance is max busy time over mean busy time,
/// where busy = compute + disk + net.
///
/// # Panics
/// Panics when `traces` does not match the timeline's processor count.
pub fn cluster_stats(tl: &Timeline, traces: &[Trace]) -> ClusterStats {
    assert_eq!(
        tl.per_proc.len(),
        traces.len(),
        "one trace per timeline processor"
    );
    let n = traces.len();
    let mut received = vec![0u64; n];
    for (from, t) in traces.iter().enumerate() {
        for step in &t.steps {
            if let Step::Send { to, bytes, .. } = *step {
                if to == BROADCAST {
                    for (q, r) in received.iter_mut().enumerate() {
                        if q != from {
                            *r += bytes;
                        }
                    }
                } else {
                    received[to] += bytes;
                }
            }
        }
    }
    let procs: Vec<ProcStats> = tl
        .per_proc
        .iter()
        .zip(traces)
        .enumerate()
        .map(|(p, (pt, trace))| ProcStats {
            proc: p as u64,
            compute_secs: pt.compute_ns / 1e9,
            disk_secs: pt.disk_ns / 1e9,
            net_secs: pt.net_ns / 1e9,
            idle_secs: pt.blocked_ns / 1e9,
            finish_secs: pt.finish_ns / 1e9,
            bytes_sent: trace.phase_breakdown().iter().map(|ph| ph.bytes_sent).sum(),
            bytes_received: received[p],
        })
        .collect();
    let busy: Vec<f64> = procs
        .iter()
        .map(|p| p.compute_secs + p.disk_secs + p.net_secs)
        .collect();
    let max_busy = busy.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean_busy = busy.iter().sum::<f64>() / n as f64;
    let load_imbalance = if mean_busy > 0.0 {
        max_busy / mean_busy
    } else {
        1.0
    };
    ClusterStats {
        total_secs: tl.total_secs(),
        load_imbalance,
        procs,
    }
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, CostModel};
    use crate::des::replay;
    use crate::trace::TraceRecorder;

    fn timeline() -> Timeline {
        let cfg = ClusterConfig::new(1, 2);
        let cost = CostModel::dec_alpha_1997();
        let mut recs: Vec<TraceRecorder> = (0..2)
            .map(|p| TraceRecorder::new(p, cost.clone()))
            .collect();
        for (i, r) in recs.iter_mut().enumerate() {
            r.phase("work");
            r.compute_ns(1e9 * (i as f64 + 1.0));
            r.barrier(0);
            r.phase("tail");
            r.compute_ns(0.5e9);
        }
        let traces: Vec<_> = recs.into_iter().map(|r| r.finish()).collect();
        replay(&cfg, &cost, &traces)
    }

    #[test]
    fn summary_shares_sum_to_about_one() {
        let tl = timeline();
        let s = summarize(&tl);
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].0, "work");
        let share_sum: f64 = s.phases.iter().map(|(_, _, f)| f).sum();
        assert!((share_sum - 1.0).abs() < 0.05, "shares sum {share_sum}");
        assert!(s.total_secs > 2.4 && s.total_secs < 2.7);
    }

    #[test]
    fn utilization_reflects_imbalance() {
        let tl = timeline();
        let s = summarize(&tl);
        // proc 0 computed 1.5 s of 2.5 s; proc 1 computed 2.5 of 2.5
        assert!(s.utilization[0] < s.utilization[1]);
        assert!(s.utilization[1] > 0.95);
        assert!(s.wait_factor >= 1.0);
    }

    #[test]
    fn render_contains_phase_rows() {
        let tl = timeline();
        let text = render(&tl);
        assert!(text.contains("work"), "{text}");
        assert!(text.contains("tail"));
        assert!(text.contains("proc   0"));
        assert!(text.contains('#'));
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
    }

    #[test]
    #[should_panic(expected = "empty timeline")]
    fn empty_timeline_rejected() {
        summarize(&Timeline { per_proc: vec![] });
    }

    #[test]
    fn cluster_stats_splits_time_and_bytes() {
        let cfg = ClusterConfig::new(2, 1);
        let cost = CostModel::dec_alpha_1997();
        let mut recs: Vec<TraceRecorder> = (0..2)
            .map(|p| TraceRecorder::new(p, cost.clone()))
            .collect();
        recs[0].phase("init");
        recs[0].compute_ns(2e9);
        recs[0].send_tagged(1, 1000, 0);
        recs[1].phase("init");
        recs[1].compute_ns(1e9);
        recs[1].recv(0, 0);
        let traces: Vec<_> = recs.into_iter().map(|r| r.finish()).collect();
        let tl = replay(&cfg, &cost, &traces);
        let cs = cluster_stats(&tl, &traces);
        assert_eq!(cs.procs.len(), 2);
        assert_eq!(cs.procs[0].bytes_sent, 1000);
        assert_eq!(cs.procs[0].bytes_received, 0);
        assert_eq!(cs.procs[1].bytes_sent, 0);
        assert_eq!(cs.procs[1].bytes_received, 1000);
        assert!((cs.procs[0].compute_secs - 2.0).abs() < 1e-9);
        assert!((cs.procs[1].compute_secs - 1.0).abs() < 1e-9);
        // proc 1 blocks waiting for the send → idle time recorded
        assert!(cs.procs[1].idle_secs > 0.5);
        assert!(cs.total_secs >= 2.0);
        // proc 0 is busier than the mean → imbalance above 1
        assert!(cs.load_imbalance > 1.0);
    }

    #[test]
    fn cluster_stats_broadcast_received_by_all_others() {
        let cfg = ClusterConfig::new(3, 1);
        let cost = CostModel::dec_alpha_1997();
        let mut recs: Vec<TraceRecorder> = (0..3)
            .map(|p| TraceRecorder::new(p, cost.clone()))
            .collect();
        recs[0].send_tagged(crate::trace::BROADCAST, 64, 0);
        for r in &mut recs {
            r.barrier(0);
        }
        let traces: Vec<_> = recs.into_iter().map(|r| r.finish()).collect();
        let tl = replay(&cfg, &cost, &traces);
        let cs = cluster_stats(&tl, &traces);
        assert_eq!(cs.procs[0].bytes_sent, 64);
        assert_eq!(cs.procs[0].bytes_received, 0);
        assert_eq!(cs.procs[1].bytes_received, 64);
        assert_eq!(cs.procs[2].bytes_received, 64);
    }

    #[test]
    fn cluster_stats_idle_cluster_imbalance_is_one() {
        let cfg = ClusterConfig::new(2, 1);
        let cost = CostModel::dec_alpha_1997();
        let traces = vec![crate::trace::Trace::default(); 2];
        let tl = replay(&cfg, &cost, &traces);
        let cs = cluster_stats(&tl, &traces);
        assert_eq!(cs.load_imbalance, 1.0);
        assert_eq!(cs.total_secs, 0.0);
    }
}
