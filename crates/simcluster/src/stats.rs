//! Timeline reporting: turn a replayed [`Timeline`] into human-readable
//! summaries — per-phase tables, per-processor utilization, and a text
//! Gantt strip. Used by the `cluster_simulation` example and the repro
//! binaries' verbose modes.

use crate::des::Timeline;

/// Aggregated view of one timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineSummary {
    /// Makespan in seconds.
    pub total_secs: f64,
    /// `(label, max-over-procs seconds, share of makespan)` per phase,
    /// in first-seen order of processor 0.
    pub phases: Vec<(&'static str, f64, f64)>,
    /// Per-processor utilization = (compute+disk+net) / finish.
    pub utilization: Vec<f64>,
    /// Mean utilization across processors.
    pub mean_utilization: f64,
    /// Makespan / slowest-processor-busy-time — 1.0 means the critical
    /// path is pure work, higher means waiting dominates.
    pub wait_factor: f64,
}

/// Summarize a timeline.
///
/// # Panics
/// Panics on an empty timeline.
pub fn summarize(tl: &Timeline) -> TimelineSummary {
    assert!(!tl.per_proc.is_empty(), "empty timeline");
    let total = tl.total_ns();
    let phases: Vec<(&'static str, f64, f64)> = tl.per_proc[0]
        .phases
        .iter()
        .map(|(label, _)| {
            let ns = tl.phase_ns(label);
            (*label, ns / 1e9, if total > 0.0 { ns / total } else { 0.0 })
        })
        .collect();
    let utilization: Vec<f64> = tl
        .per_proc
        .iter()
        .map(|p| {
            let busy = p.compute_ns + p.disk_ns + p.net_ns;
            if p.finish_ns > 0.0 {
                busy / p.finish_ns
            } else {
                1.0
            }
        })
        .collect();
    let mean_utilization = utilization.iter().sum::<f64>() / utilization.len() as f64;
    let max_busy = tl
        .per_proc
        .iter()
        .map(|p| p.compute_ns + p.disk_ns + p.net_ns)
        .fold(0.0f64, f64::max);
    let wait_factor = if max_busy > 0.0 {
        total / max_busy
    } else {
        1.0
    };
    TimelineSummary {
        total_secs: total / 1e9,
        phases,
        utilization,
        mean_utilization,
        wait_factor,
    }
}

/// Render a fixed-width text report.
pub fn render(tl: &Timeline) -> String {
    let s = summarize(tl);
    let mut out = String::new();
    out.push_str(&format!(
        "total {:>10.2}s   mean utilization {:>5.1}%   wait factor {:.2}\n",
        s.total_secs,
        s.mean_utilization * 100.0,
        s.wait_factor
    ));
    for (label, secs, share) in &s.phases {
        out.push_str(&format!(
            "  {label:>12}: {secs:>9.2}s  {:>5.1}%  {}\n",
            share * 100.0,
            bar(*share, 40)
        ));
    }
    for (p, u) in s.utilization.iter().enumerate() {
        out.push_str(&format!(
            "  proc {p:>3} busy {:>5.1}%  {}\n",
            u * 100.0,
            bar(*u, 40)
        ));
    }
    out
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, CostModel};
    use crate::des::replay;
    use crate::trace::TraceRecorder;

    fn timeline() -> Timeline {
        let cfg = ClusterConfig::new(1, 2);
        let cost = CostModel::dec_alpha_1997();
        let mut recs: Vec<TraceRecorder> = (0..2)
            .map(|p| TraceRecorder::new(p, cost.clone()))
            .collect();
        for (i, r) in recs.iter_mut().enumerate() {
            r.phase("work");
            r.compute_ns(1e9 * (i as f64 + 1.0));
            r.barrier(0);
            r.phase("tail");
            r.compute_ns(0.5e9);
        }
        let traces: Vec<_> = recs.into_iter().map(|r| r.finish()).collect();
        replay(&cfg, &cost, &traces)
    }

    #[test]
    fn summary_shares_sum_to_about_one() {
        let tl = timeline();
        let s = summarize(&tl);
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].0, "work");
        let share_sum: f64 = s.phases.iter().map(|(_, _, f)| f).sum();
        assert!((share_sum - 1.0).abs() < 0.05, "shares sum {share_sum}");
        assert!(s.total_secs > 2.4 && s.total_secs < 2.7);
    }

    #[test]
    fn utilization_reflects_imbalance() {
        let tl = timeline();
        let s = summarize(&tl);
        // proc 0 computed 1.5 s of 2.5 s; proc 1 computed 2.5 of 2.5
        assert!(s.utilization[0] < s.utilization[1]);
        assert!(s.utilization[1] > 0.95);
        assert!(s.wait_factor >= 1.0);
    }

    #[test]
    fn render_contains_phase_rows() {
        let tl = timeline();
        let text = render(&tl);
        assert!(text.contains("work"), "{text}");
        assert!(text.contains("tail"));
        assert!(text.contains("proc   0"));
        assert!(text.contains('#'));
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
    }

    #[test]
    #[should_panic(expected = "empty timeline")]
    fn empty_timeline_rejected() {
        summarize(&Timeline { per_proc: vec![] });
    }
}
