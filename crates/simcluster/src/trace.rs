//! Traces: the abstract step log each simulated processor records.

use mining_types::OpMeter;

/// Pseudo-destination meaning "all hosts" — a write to a Memory Channel
/// region mapped for receive on every node (§6.1's hub multicast).
/// Broadcast sends cost sender-link and hub time but are not received
/// with [`Step::Recv`]; a subsequent barrier orders visibility, matching
/// the shared-region usage in §6.2.
pub const BROADCAST: usize = usize::MAX;

/// One abstract step of a simulated processor.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// CPU work, pre-priced in virtual nanoseconds by the cost model at
    /// record time (the recorder owns the [`crate::CostModel`] prices via
    /// its caller — see [`TraceRecorder::compute`]).
    Compute {
        /// Virtual nanoseconds of CPU work.
        ns: f64,
    },
    /// Sequential read of `bytes` from this processor's host disk.
    DiskRead {
        /// Bytes read.
        bytes: u64,
    },
    /// Sequential write of `bytes` to this processor's host disk.
    DiskWrite {
        /// Bytes written.
        bytes: u64,
    },
    /// One-sided Memory Channel write of `bytes` to processor `to`
    /// (or [`BROADCAST`]). Non-blocking for the sender beyond the link
    /// occupancy; delivered after hub transfer + latency.
    Send {
        /// Destination processor id or [`BROADCAST`].
        to: usize,
        /// Payload bytes.
        bytes: u64,
        /// Match tag (must be unique per (from, to) message in flight).
        tag: u64,
    },
    /// Block until the matching [`Step::Send`] from `from` is delivered.
    Recv {
        /// Source processor id.
        from: usize,
        /// Match tag.
        tag: u64,
    },
    /// Global barrier across all processors; id must increase.
    Barrier {
        /// Barrier sequence number.
        id: u64,
    },
    /// Phase marker: subsequent elapsed time is attributed to this label.
    Phase {
        /// Phase label (e.g. `"init"`, `"transform"`, `"async"`).
        label: &'static str,
    },
}

/// A processor's full step log.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Steps in program order.
    pub steps: Vec<Step>,
}

/// Per-phase totals of the *recorded* quantities in a [`Trace`] —
/// attribution happens at record time, before any replay, so these are
/// contention-free sums (compute is pre-priced ns; disk/net are bytes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseSteps {
    /// The phase label steps were attributed to ([`crate::des::UNLABELED`]
    /// for steps before the first marker).
    pub label: &'static str,
    /// Pre-priced compute nanoseconds.
    pub compute_ns: f64,
    /// Bytes read from disk.
    pub disk_read_bytes: u64,
    /// Bytes written to disk.
    pub disk_write_bytes: u64,
    /// Payload bytes sent (direct and broadcast).
    pub bytes_sent: u64,
    /// Number of `Send` steps.
    pub sends: u64,
    /// Number of `Recv` steps.
    pub recvs: u64,
    /// Number of `Barrier` steps.
    pub barriers: u64,
}

impl Trace {
    /// Attribute every step to its preceding [`Step::Phase`] marker and
    /// sum the recorded quantities per label, in first-seen order. Steps
    /// before the first marker land under [`crate::des::UNLABELED`]. A
    /// label recorded twice (phases can be re-entered) accumulates into
    /// its first entry.
    pub fn phase_breakdown(&self) -> Vec<PhaseSteps> {
        let mut out: Vec<PhaseSteps> = Vec::new();
        let mut label = crate::des::UNLABELED;
        let entry = |out: &mut Vec<PhaseSteps>, label: &'static str| -> usize {
            if let Some(pos) = out.iter().position(|p| p.label == label) {
                return pos;
            }
            out.push(PhaseSteps {
                label,
                ..PhaseSteps::default()
            });
            out.len() - 1
        };
        for step in &self.steps {
            if let Step::Phase { label: l } = step {
                label = l;
                entry(&mut out, label);
                continue;
            }
            let i = entry(&mut out, label);
            let p = &mut out[i];
            match *step {
                Step::Compute { ns } => p.compute_ns += ns,
                Step::DiskRead { bytes } => p.disk_read_bytes += bytes,
                Step::DiskWrite { bytes } => p.disk_write_bytes += bytes,
                Step::Send { bytes, .. } => {
                    p.bytes_sent += bytes;
                    p.sends += 1;
                }
                Step::Recv { .. } => p.recvs += 1,
                Step::Barrier { .. } => p.barriers += 1,
                Step::Phase { .. } => unreachable!("handled above"),
            }
        }
        out
    }
}

/// Records a [`Trace`] for one simulated processor.
///
/// Compute work can be logged either as pre-priced nanoseconds or by
/// diffing an [`OpMeter`] against the cost model — algorithms meter their
/// real work, then flush the delta.
#[derive(Debug)]
pub struct TraceRecorder {
    proc: usize,
    steps: Vec<Step>,
    cost: crate::CostModel,
    next_auto_tag: u64,
}

impl TraceRecorder {
    /// New recorder for processor `proc` with the given pricing.
    pub fn new(proc: usize, cost: crate::CostModel) -> TraceRecorder {
        TraceRecorder {
            proc,
            steps: Vec::new(),
            cost,
            next_auto_tag: 0,
        }
    }

    /// The processor this recorder belongs to.
    pub fn proc(&self) -> usize {
        self.proc
    }

    /// The pricing model.
    pub fn cost(&self) -> &crate::CostModel {
        &self.cost
    }

    /// Mark the start of a named phase.
    pub fn phase(&mut self, label: &'static str) {
        self.steps.push(Step::Phase { label });
    }

    /// Record pre-priced CPU work. Zero-duration work is skipped.
    pub fn compute_ns(&mut self, ns: f64) {
        assert!(ns.is_finite() && ns >= 0.0, "negative compute time");
        if ns > 0.0 {
            // Coalesce with a preceding Compute to keep traces small.
            if let Some(Step::Compute { ns: prev }) = self.steps.last_mut() {
                *prev += ns;
                return;
            }
            self.steps.push(Step::Compute { ns });
        }
    }

    /// Record the work in `ops` at the model's prices.
    pub fn compute(&mut self, ops: &OpMeter) {
        let ns = self.cost.compute_ns(ops);
        self.compute_ns(ns);
    }

    /// Record the delta `current − baseline` of a live meter, returning a
    /// new baseline. Usage: `baseline = rec.compute_since(&meter, baseline)`.
    pub fn compute_since(&mut self, meter: &OpMeter, baseline: OpMeter) -> OpMeter {
        let delta = meter.since(&baseline);
        self.compute(&delta);
        *meter
    }

    /// Record a memory copy of `bytes` (write-doubling / region scan) at
    /// the local copy bandwidth.
    pub fn local_copy(&mut self, bytes: u64) {
        let ns = bytes as f64 / self.cost.local_copy_bw * 1e9;
        self.compute_ns(ns);
    }

    /// Record a sequential disk read.
    pub fn disk_read(&mut self, bytes: u64) {
        self.steps.push(Step::DiskRead { bytes });
    }

    /// Record a sequential disk write.
    pub fn disk_write(&mut self, bytes: u64) {
        self.steps.push(Step::DiskWrite { bytes });
    }

    /// Record a one-sided send with an explicit tag.
    pub fn send_tagged(&mut self, to: usize, bytes: u64, tag: u64) {
        assert!(
            to == BROADCAST || to != self.proc,
            "send to self is a local copy"
        );
        self.steps.push(Step::Send { to, bytes, tag });
    }

    /// Record a one-sided send with an auto-assigned per-recorder tag;
    /// returns the tag (receiver must be told out-of-band, so prefer
    /// [`TraceRecorder::send_tagged`] in protocols).
    pub fn send(&mut self, to: usize, bytes: u64) -> u64 {
        let tag = self.next_auto_tag;
        self.next_auto_tag += 1;
        self.send_tagged(to, bytes, tag);
        tag
    }

    /// Record a blocking receive.
    pub fn recv(&mut self, from: usize, tag: u64) {
        assert_ne!(from, self.proc, "recv from self");
        self.steps.push(Step::Recv { from, tag });
    }

    /// Record a barrier.
    pub fn barrier(&mut self, id: u64) {
        self.steps.push(Step::Barrier { id });
    }

    /// Finish recording.
    pub fn finish(self) -> Trace {
        Trace { steps: self.steps }
    }

    /// Number of steps so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;

    fn rec() -> TraceRecorder {
        TraceRecorder::new(0, CostModel::dec_alpha_1997())
    }

    #[test]
    fn compute_coalesces() {
        let mut r = rec();
        r.compute_ns(10.0);
        r.compute_ns(5.0);
        let t = r.finish();
        assert_eq!(t.steps, vec![Step::Compute { ns: 15.0 }]);
    }

    #[test]
    fn zero_compute_skipped() {
        let mut r = rec();
        r.compute_ns(0.0);
        r.compute(&OpMeter::new());
        assert!(r.is_empty());
    }

    #[test]
    fn compute_since_prices_delta() {
        let mut r = rec();
        let mut meter = OpMeter::new();
        meter.tid_cmp = 100;
        let baseline = r.compute_since(&meter, OpMeter::new());
        assert_eq!(baseline.tid_cmp, 100);
        meter.tid_cmp = 150;
        r.compute_since(&meter, baseline);
        let t = r.finish();
        // 100 * 40ns coalesced with 50 * 40ns
        assert_eq!(t.steps, vec![Step::Compute { ns: 6000.0 }]);
    }

    #[test]
    fn protocol_steps_recorded_in_order() {
        let mut r = rec();
        r.phase("init");
        r.disk_read(100);
        r.send_tagged(1, 64, 7);
        r.recv(2, 9);
        r.barrier(0);
        r.disk_write(32);
        let t = r.finish();
        assert_eq!(t.steps.len(), 6);
        assert_eq!(t.steps[0], Step::Phase { label: "init" });
        assert_eq!(
            t.steps[2],
            Step::Send {
                to: 1,
                bytes: 64,
                tag: 7
            }
        );
        assert_eq!(t.steps[3], Step::Recv { from: 2, tag: 9 });
    }

    #[test]
    fn auto_tags_increment() {
        let mut r = rec();
        assert_eq!(r.send(1, 10), 0);
        assert_eq!(r.send(1, 10), 1);
        assert_eq!(r.send(2, 10), 2);
    }

    #[test]
    #[should_panic(expected = "send to self")]
    fn send_to_self_rejected() {
        rec().send(0, 10);
    }

    #[test]
    fn phase_breakdown_attributes_to_preceding_marker() {
        let mut r = rec();
        r.phase("init");
        r.compute_ns(100.0);
        r.disk_read(64);
        r.phase("transform");
        r.send_tagged(1, 512, 0);
        r.send_tagged(1, 512, 1);
        r.barrier(0);
        r.phase("async");
        r.compute_ns(300.0);
        r.recv(1, 0);
        r.disk_write(32);
        let bd = r.finish().phase_breakdown();
        assert_eq!(bd.len(), 3);
        assert_eq!(bd[0].label, "init");
        assert_eq!(bd[0].compute_ns, 100.0);
        assert_eq!(bd[0].disk_read_bytes, 64);
        assert_eq!(bd[0].bytes_sent, 0);
        assert_eq!(bd[1].label, "transform");
        assert_eq!(bd[1].bytes_sent, 1024);
        assert_eq!(bd[1].sends, 2);
        assert_eq!(bd[1].barriers, 1);
        assert_eq!(bd[2].label, "async");
        assert_eq!(bd[2].compute_ns, 300.0);
        assert_eq!(bd[2].recvs, 1);
        assert_eq!(bd[2].disk_write_bytes, 32);
    }

    #[test]
    fn phase_breakdown_prefix_is_unlabeled() {
        let mut r = rec();
        r.compute_ns(50.0);
        r.phase("work");
        r.compute_ns(25.0);
        let bd = r.finish().phase_breakdown();
        assert_eq!(bd.len(), 2);
        assert_eq!(bd[0].label, crate::des::UNLABELED);
        assert_eq!(bd[0].compute_ns, 50.0);
        assert_eq!(bd[1].compute_ns, 25.0);
    }

    #[test]
    fn phase_breakdown_reentered_label_accumulates() {
        let mut r = rec();
        r.phase("a");
        r.compute_ns(10.0);
        r.phase("b");
        r.disk_read(8);
        r.phase("a");
        r.compute_ns(5.0);
        let bd = r.finish().phase_breakdown();
        assert_eq!(bd.len(), 2);
        assert_eq!(bd[0].label, "a");
        assert_eq!(bd[0].compute_ns, 15.0);
        assert_eq!(bd[1].label, "b");
    }

    #[test]
    fn phase_breakdown_empty_and_marker_only() {
        assert!(Trace::default().phase_breakdown().is_empty());
        let mut r = rec();
        r.phase("lonely");
        let bd = r.finish().phase_breakdown();
        assert_eq!(bd.len(), 1);
        assert_eq!(
            bd[0],
            PhaseSteps {
                label: "lonely",
                ..PhaseSteps::default()
            }
        );
    }

    #[test]
    fn local_copy_priced_by_bandwidth() {
        let mut r = rec();
        let bw = r.cost().local_copy_bw;
        r.local_copy(bw as u64); // one second of copying
        let t = r.finish();
        match t.steps[0] {
            Step::Compute { ns } => assert!((ns - 1e9).abs() / 1e9 < 0.01),
            _ => panic!("expected compute"),
        }
    }
}
