//! The discrete-event trace-replay engine.
//!
//! Replays one [`Trace`] per processor against the resource models of
//! [`CostModel`]:
//!
//! * **CPU** — `Compute` advances the processor's virtual clock by its
//!   pre-priced duration.
//! * **Disk** — one FCFS-served disk per *host*; concurrent requests from
//!   processors sharing a host queue up, reproducing the local-disk
//!   contention the paper observes in §8.1 (*"since all the processors
//!   will be accessing the local disk simultaneously, we will suffer from
//!   a lot of disk contention"*).
//! * **Network** — one Memory Channel adapter (link) per host plus the
//!   shared hub: a cross-host `Send` occupies the sender's host link at
//!   link bandwidth, the hub at aggregate bandwidth (FCFS), and is
//!   delivered `latency` after the hub transfer completes. Intra-host
//!   sends are memory copies (the write-doubling path of §6.1).
//!   Broadcast sends pay an extra local copy — the "cost of double
//!   writing" the paper accepts to avoid loop-back.
//! * **Barrier** — all processors must arrive; all leave at the max
//!   arrival time plus a flat cost.
//!
//! The engine always advances the processor with the smallest virtual
//! clock (ties by processor id), so FCFS resource bookings happen in
//! global virtual-time order and the replay is fully deterministic.

use crate::config::{ClusterConfig, CostModel};
use crate::trace::{Step, Trace, BROADCAST};
use mining_types::FxHashMap;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Label applied before the first `Phase` marker of a trace.
pub const UNLABELED: &str = "(unlabeled)";

/// Per-processor result of a replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcTimeline {
    /// Virtual time at which this processor finished its trace.
    pub finish_ns: f64,
    /// Elapsed virtual time per phase label, in first-seen order.
    pub phases: Vec<(&'static str, f64)>,
    /// Time spent in `Compute` steps.
    pub compute_ns: f64,
    /// Time spent in disk requests (service + queueing).
    pub disk_ns: f64,
    /// Time spent occupying the send path (local copy / link).
    pub net_ns: f64,
    /// Time spent blocked in `Recv` and barriers.
    pub blocked_ns: f64,
}

impl ProcTimeline {
    /// Time attributed to `label` on this processor.
    pub fn phase_ns(&self, label: &str) -> f64 {
        self.phases
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, ns)| *ns)
            .unwrap_or(0.0)
    }
}

/// The replayed cluster timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    /// One entry per processor.
    pub per_proc: Vec<ProcTimeline>,
}

impl Timeline {
    /// Makespan: the last processor's finish time, in ns.
    pub fn total_ns(&self) -> f64 {
        self.per_proc
            .iter()
            .map(|p| p.finish_ns)
            .fold(0.0, f64::max)
    }

    /// Makespan in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns() / 1e9
    }

    /// Max over processors of time attributed to `label` — for phases
    /// aligned by barriers this is the phase's contribution to the
    /// makespan (the paper's per-phase breakdown in Table 2).
    pub fn phase_ns(&self, label: &str) -> f64 {
        self.per_proc
            .iter()
            .map(|p| p.phase_ns(label))
            .fold(0.0, f64::max)
    }

    /// Max phase time in seconds.
    pub fn phase_secs(&self, label: &str) -> f64 {
        self.phase_ns(label) / 1e9
    }
}

/// Replay `traces` (one per processor, id order) on the cluster.
///
/// # Panics
/// Panics on protocol errors: wrong trace count, a `Recv` whose send
/// never happens, a barrier some processor never reaches (deadlock), or
/// out-of-range processor ids.
pub fn replay(config: &ClusterConfig, cost: &CostModel, traces: &[Trace]) -> Timeline {
    let t = config.total();
    assert_eq!(traces.len(), t, "need one trace per processor");

    let mut engine = Engine::new(config, cost, traces);
    engine.run();
    engine.into_timeline()
}

/// f64 with a total order for the scheduling heap (clocks are finite).
#[derive(Clone, Copy, PartialEq, Debug)]
struct Clock(f64);
impl Eq for Clock {}
impl PartialOrd for Clock {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Clock {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct ProcState {
    clock: f64,
    cursor: usize,
    label: &'static str,
    phases: Vec<(&'static str, f64)>,
    compute_ns: f64,
    disk_ns: f64,
    net_ns: f64,
    blocked_ns: f64,
    finished: bool,
    last_barrier: Option<u64>,
}

impl ProcState {
    fn attribute(&mut self, elapsed: f64) {
        debug_assert!(elapsed >= -1e-6, "negative elapsed {elapsed}");
        if let Some(e) = self.phases.iter_mut().find(|(l, _)| *l == self.label) {
            e.1 += elapsed;
        } else {
            self.phases.push((self.label, elapsed));
        }
    }
}

struct Engine<'a> {
    config: &'a ClusterConfig,
    cost: &'a CostModel,
    traces: &'a [Trace],
    procs: Vec<ProcState>,
    runnable: BinaryHeap<Reverse<(Clock, usize)>>,
    disk_free: Vec<f64>,
    link_free: Vec<f64>,
    hub_free: f64,
    /// (from, to, tag) → FIFO of delivery times.
    mailbox: FxHashMap<(usize, usize, u64), VecDeque<f64>>,
    /// (from, to, tag) → processor parked on that receive.
    recv_waiters: FxHashMap<(usize, usize, u64), usize>,
    /// barrier id → (arrived procs, max arrival clock).
    barriers: FxHashMap<u64, (Vec<usize>, f64)>,
}

impl<'a> Engine<'a> {
    fn new(config: &'a ClusterConfig, cost: &'a CostModel, traces: &'a [Trace]) -> Self {
        let t = config.total();
        let mut runnable = BinaryHeap::with_capacity(t);
        for p in 0..t {
            runnable.push(Reverse((Clock(0.0), p)));
        }
        Engine {
            config,
            cost,
            traces,
            procs: (0..t)
                .map(|_| ProcState {
                    clock: 0.0,
                    cursor: 0,
                    label: UNLABELED,
                    phases: Vec::new(),
                    compute_ns: 0.0,
                    disk_ns: 0.0,
                    net_ns: 0.0,
                    blocked_ns: 0.0,
                    finished: false,
                    last_barrier: None,
                })
                .collect(),
            runnable,
            disk_free: vec![0.0; config.hosts],
            link_free: vec![0.0; config.hosts],
            hub_free: 0.0,
            mailbox: FxHashMap::default(),
            recv_waiters: FxHashMap::default(),
            barriers: FxHashMap::default(),
        }
    }

    fn run(&mut self) {
        while let Some(Reverse((_, p))) = self.runnable.pop() {
            self.step(p);
        }
        if let Some(stuck) = self.procs.iter().position(|p| !p.finished) {
            panic!(
                "deadlock: processor {stuck} blocked at step {} ({:?}); \
                 recv waiters: {:?}, open barriers: {:?}",
                self.procs[stuck].cursor,
                self.traces[stuck].steps.get(self.procs[stuck].cursor),
                self.recv_waiters.keys().collect::<Vec<_>>(),
                self.barriers.keys().collect::<Vec<_>>(),
            );
        }
    }

    /// Execute one step of processor `p`, re-queueing it unless it parks
    /// or finishes.
    fn step(&mut self, p: usize) {
        let Some(step) = self.traces[p].steps.get(self.procs[p].cursor) else {
            self.procs[p].finished = true;
            return;
        };
        let step = step.clone();
        let before = self.procs[p].clock;
        match step {
            Step::Phase { label } => {
                self.procs[p].label = label;
                // register the phase even if it ends up with zero time
                self.procs[p].attribute(0.0);
                self.advance(p, before);
            }
            Step::Compute { ns } => {
                self.procs[p].clock += ns;
                self.procs[p].compute_ns += ns;
                self.finish_step(p, before);
            }
            Step::DiskRead { bytes } | Step::DiskWrite { bytes } => {
                let host = self.config.host_of(p);
                let start = self.procs[p].clock.max(self.disk_free[host]);
                let service = self.cost.disk_seek_ns + bytes as f64 / self.cost.disk_bw * 1e9;
                let done = start + service;
                self.disk_free[host] = done;
                self.procs[p].disk_ns += done - self.procs[p].clock;
                self.procs[p].clock = done;
                self.finish_step(p, before);
            }
            Step::Send { to, bytes, tag } => {
                self.exec_send(p, to, bytes, tag);
                self.finish_step(p, before);
            }
            Step::Recv { from, tag } => {
                assert!(
                    from < self.procs.len(),
                    "recv from out-of-range proc {from}"
                );
                let key = (from, p, tag);
                if let Some(q) = self.mailbox.get_mut(&key) {
                    if let Some(delivery) = q.pop_front() {
                        if q.is_empty() {
                            self.mailbox.remove(&key);
                        }
                        let wait = (delivery - self.procs[p].clock).max(0.0);
                        self.procs[p].blocked_ns += wait;
                        self.procs[p].clock += wait;
                        self.finish_step(p, before);
                        return;
                    }
                }
                // Park; the matching send will wake us (do not advance
                // the cursor — the Recv re-executes on wake).
                let prev = self.recv_waiters.insert(key, p);
                assert!(
                    prev.is_none(),
                    "two processors waiting on the same (from,to,tag) = {key:?}"
                );
            }
            Step::Barrier { id } => {
                let st = &mut self.procs[p];
                if let Some(last) = st.last_barrier {
                    assert!(
                        id > last,
                        "barrier ids must increase on proc {p}: {last} then {id}"
                    );
                }
                st.last_barrier = Some(id);
                let entry = self.barriers.entry(id).or_insert((Vec::new(), 0.0));
                entry.0.push(p);
                entry.1 = entry.1.max(self.procs[p].clock);
                if entry.0.len() == self.procs.len() {
                    let (members, max_arrival) = self.barriers.remove(&id).unwrap();
                    let release = max_arrival + self.cost.barrier_ns;
                    for q in members {
                        let arr = self.procs[q].clock;
                        self.procs[q].blocked_ns += release - arr;
                        self.procs[q].clock = release;
                        // attribute and advance past the barrier step
                        let elapsed = release - arr;
                        self.procs[q].attribute(elapsed);
                        self.procs[q].cursor += 1;
                        self.runnable.push(Reverse((Clock(release), q)));
                    }
                }
                // (arrival itself took no time; released procs already
                // attributed their wait above)
            }
        }
    }

    fn exec_send(&mut self, p: usize, to: usize, bytes: u64, tag: u64) {
        let host = self.config.host_of(p);
        if to == BROADCAST {
            // Write-doubling: local copy into the own receive region,
            // then the transmit-region write through link + hub.
            let double = bytes as f64 / self.cost.local_copy_bw * 1e9;
            self.procs[p].clock += double;
            self.procs[p].net_ns += double;
            let start = self.procs[p].clock.max(self.link_free[host]);
            let link_done = start + bytes as f64 / self.cost.mc_link_bw * 1e9;
            self.link_free[host] = link_done;
            let hub_start = start.max(self.hub_free);
            let hub_done = hub_start + bytes as f64 / self.cost.mc_hub_bw * 1e9;
            self.hub_free = hub_done;
            // The writer must drain its transmit buffer through the hub
            // before proceeding (the shared region is reused and the
            // following barrier implies global visibility), so hub
            // contention serializes concurrent shared-region updates —
            // the "mutually exclusive manner" of §6.2.
            let done = link_done.max(hub_done);
            self.procs[p].net_ns += done - self.procs[p].clock;
            self.procs[p].clock = done;
            // broadcasts are not received; a barrier orders visibility
        } else if self.config.same_host(p, to) {
            // Intra-host: a memory copy via write-doubling; no hub.
            let done = self.procs[p].clock + bytes as f64 / self.cost.local_copy_bw * 1e9;
            self.procs[p].net_ns += done - self.procs[p].clock;
            self.procs[p].clock = done;
            self.deliver(p, to, tag, done);
        } else {
            assert!(to < self.procs.len(), "send to out-of-range proc {to}");
            let start = self.procs[p].clock.max(self.link_free[host]);
            let link_done = start + bytes as f64 / self.cost.mc_link_bw * 1e9;
            self.link_free[host] = link_done;
            let hub_start = start.max(self.hub_free);
            let hub_done = hub_start + bytes as f64 / self.cost.mc_hub_bw * 1e9;
            self.hub_free = hub_done;
            let delivery = link_done.max(hub_done) + self.cost.mc_latency_ns;
            self.procs[p].net_ns += link_done - self.procs[p].clock;
            self.procs[p].clock = link_done;
            self.deliver(p, to, tag, delivery);
        }
    }

    fn deliver(&mut self, from: usize, to: usize, tag: u64, delivery: f64) {
        let key = (from, to, tag);
        self.mailbox.entry(key).or_default().push_back(delivery);
        if let Some(waiter) = self.recv_waiters.remove(&key) {
            // Wake the parked processor; it re-executes its Recv.
            let clk = self.procs[waiter].clock;
            self.runnable.push(Reverse((Clock(clk), waiter)));
        }
    }

    /// Attribute elapsed time, advance the cursor, and re-queue.
    fn finish_step(&mut self, p: usize, before: f64) {
        let elapsed = self.procs[p].clock - before;
        self.procs[p].attribute(elapsed);
        self.advance(p, self.procs[p].clock);
    }

    fn advance(&mut self, p: usize, _now: f64) {
        self.procs[p].cursor += 1;
        self.runnable.push(Reverse((Clock(self.procs[p].clock), p)));
    }

    fn into_timeline(self) -> Timeline {
        Timeline {
            per_proc: self
                .procs
                .into_iter()
                .map(|s| ProcTimeline {
                    finish_ns: s.clock,
                    phases: s.phases,
                    compute_ns: s.compute_ns,
                    disk_ns: s.disk_ns,
                    net_ns: s.net_ns,
                    blocked_ns: s.blocked_ns,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    fn cost() -> CostModel {
        CostModel::dec_alpha_1997()
    }

    fn recorders(config: &ClusterConfig) -> Vec<TraceRecorder> {
        (0..config.total())
            .map(|p| TraceRecorder::new(p, cost()))
            .collect()
    }

    fn finish(recs: Vec<TraceRecorder>) -> Vec<Trace> {
        recs.into_iter().map(|r| r.finish()).collect()
    }

    #[test]
    fn single_proc_compute_only() {
        let cfg = ClusterConfig::sequential();
        let mut recs = recorders(&cfg);
        recs[0].phase("work");
        recs[0].compute_ns(1000.0);
        let tl = replay(&cfg, &cost(), &finish(recs));
        assert_eq!(tl.total_ns(), 1000.0);
        assert_eq!(tl.phase_ns("work"), 1000.0);
        assert_eq!(tl.per_proc[0].compute_ns, 1000.0);
    }

    #[test]
    fn disk_contention_serializes_within_host() {
        let c = cost();
        // Two procs on ONE host read 4 MB each → the second queues.
        let cfg1 = ClusterConfig::new(1, 2);
        let mut recs = recorders(&cfg1);
        for r in &mut recs {
            r.disk_read(4 * 1024 * 1024);
        }
        let shared = replay(&cfg1, &c, &finish(recs));

        // Two procs on TWO hosts → independent disks, no queueing.
        let cfg2 = ClusterConfig::new(2, 1);
        let mut recs = recorders(&cfg2);
        for r in &mut recs {
            r.disk_read(4 * 1024 * 1024);
        }
        let separate = replay(&cfg2, &c, &finish(recs));

        let one_read = c.disk_seek_ns + 4.0 * 1024.0 * 1024.0 / c.disk_bw * 1e9;
        assert!((separate.total_ns() - one_read).abs() < 1.0);
        assert!((shared.total_ns() - 2.0 * one_read).abs() < 1.0);
    }

    #[test]
    fn send_recv_delivery_time() {
        let c = cost();
        let cfg = ClusterConfig::new(2, 1); // cross-host
        let mut recs = recorders(&cfg);
        recs[0].send_tagged(1, 3 * 1024 * 1024, 7);
        recs[1].recv(0, 7);
        let tl = replay(&cfg, &c, &finish(recs));
        let bytes = 3.0 * 1024.0 * 1024.0;
        let link = bytes / c.mc_link_bw * 1e9;
        let hub = bytes / c.mc_hub_bw * 1e9;
        // hub (slower) dominates; receiver unblocks at hub + latency
        let expect = hub.max(link) + c.mc_latency_ns;
        assert!(
            (tl.per_proc[1].finish_ns - expect).abs() < 1.0,
            "got {} want {expect}",
            tl.per_proc[1].finish_ns
        );
        // sender finishes at link completion only
        assert!((tl.per_proc[0].finish_ns - link).abs() < 1.0);
        assert!(tl.per_proc[1].blocked_ns > 0.0);
    }

    #[test]
    fn recv_before_send_parks_and_wakes() {
        let c = cost();
        let cfg = ClusterConfig::new(2, 1);
        let mut recs = recorders(&cfg);
        // receiver starts waiting immediately; sender computes first
        recs[1].recv(0, 1);
        recs[0].compute_ns(5e6);
        recs[0].send_tagged(1, 1024, 1);
        let tl = replay(&cfg, &c, &finish(recs));
        assert!(tl.per_proc[1].finish_ns > 5e6);
    }

    #[test]
    fn intra_host_send_uses_memory_copy() {
        let c = cost();
        let cfg = ClusterConfig::new(1, 2);
        let mut recs = recorders(&cfg);
        recs[0].send_tagged(1, 8 * 1024 * 1024, 0);
        recs[1].recv(0, 0);
        let tl = replay(&cfg, &c, &finish(recs));
        let copy = 8.0 * 1024.0 * 1024.0 / c.local_copy_bw * 1e9;
        assert!((tl.per_proc[1].finish_ns - copy).abs() < 1.0);
    }

    #[test]
    fn hub_serializes_concurrent_cross_host_sends() {
        let c = cost();
        // 4 hosts; procs 0..3 all send to proc 3's host... use 4 senders
        // to distinct receivers so links don't serialize, only the hub.
        let cfg = ClusterConfig::new(4, 1);
        let mut recs = recorders(&cfg);
        let mb = 1024 * 1024;
        recs[0].send_tagged(2, 4 * mb, 0);
        recs[1].send_tagged(3, 4 * mb, 0);
        recs[2].recv(0, 0);
        recs[3].recv(1, 0);
        let tl = replay(&cfg, &c, &finish(recs));
        let hub_one = 4.0 * mb as f64 / c.mc_hub_bw * 1e9;
        // the second transfer waits for the first on the hub
        let last = tl.per_proc[2].finish_ns.max(tl.per_proc[3].finish_ns);
        assert!(
            last >= 2.0 * hub_one,
            "hub must serialize: {last} < {}",
            2.0 * hub_one
        );
    }

    #[test]
    fn barrier_aligns_clocks() {
        let c = cost();
        let cfg = ClusterConfig::new(1, 3);
        let mut recs = recorders(&cfg);
        recs[0].compute_ns(100.0);
        recs[1].compute_ns(5000.0);
        recs[2].compute_ns(2500.0);
        for r in &mut recs {
            r.barrier(0);
            r.compute_ns(10.0);
        }
        let tl = replay(&cfg, &c, &finish(recs));
        let release = 5000.0 + c.barrier_ns;
        for p in 0..3 {
            assert!((tl.per_proc[p].finish_ns - (release + 10.0)).abs() < 1.0);
        }
        // fastest proc blocked the longest
        assert!(tl.per_proc[0].blocked_ns > tl.per_proc[1].blocked_ns);
    }

    #[test]
    fn phases_attribute_elapsed_time() {
        let c = cost();
        let cfg = ClusterConfig::sequential();
        let mut recs = recorders(&cfg);
        recs[0].phase("a");
        recs[0].compute_ns(100.0);
        recs[0].phase("b");
        recs[0].compute_ns(250.0);
        let tl = replay(&cfg, &c, &finish(recs));
        assert_eq!(tl.per_proc[0].phase_ns("a"), 100.0);
        assert_eq!(tl.per_proc[0].phase_ns("b"), 250.0);
        assert_eq!(tl.phase_ns("b"), 250.0);
        assert_eq!(tl.phase_ns("missing"), 0.0);
    }

    #[test]
    fn fifo_per_sender_receiver_pair() {
        let c = cost();
        let cfg = ClusterConfig::new(2, 1);
        let mut recs = recorders(&cfg);
        // Two sends with distinct tags; MC guarantees write ordering, and
        // the link serialization makes the first delivery earlier.
        recs[0].send_tagged(1, 1024 * 1024, 0);
        recs[0].send_tagged(1, 1024, 1);
        recs[1].recv(0, 0);
        let t_first = {
            let tl = replay(&cfg, &c, &finish(recs));
            tl.per_proc[1].finish_ns
        };
        let mut recs2 = recorders(&cfg);
        recs2[0].send_tagged(1, 1024 * 1024, 0);
        recs2[0].send_tagged(1, 1024, 1);
        recs2[1].recv(0, 1);
        let t_second = {
            let tl = replay(&cfg, &c, &finish(recs2));
            tl.per_proc[1].finish_ns
        };
        assert!(t_second > t_first, "second write delivered after first");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_send_is_deadlock() {
        let cfg = ClusterConfig::new(2, 1);
        let mut recs = recorders(&cfg);
        recs[1].recv(0, 99);
        replay(&cfg, &cost(), &finish(recs));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unreached_barrier_is_deadlock() {
        let cfg = ClusterConfig::new(2, 1);
        let mut recs = recorders(&cfg);
        recs[0].barrier(0);
        // proc 1 never barriers
        replay(&cfg, &cost(), &finish(recs));
    }

    #[test]
    fn determinism() {
        let c = cost();
        let cfg = ClusterConfig::new(2, 2);
        let build = || {
            let mut recs = recorders(&cfg);
            for (i, r) in recs.iter_mut().enumerate() {
                r.phase("x");
                r.compute_ns(100.0 * (i as f64 + 1.0));
                r.disk_read(1024 * 1024);
                r.barrier(0);
                if i == 0 {
                    r.send_tagged(3, 2048, 5);
                }
                if i == 3 {
                    r.recv(0, 5);
                }
                r.barrier(1);
            }
            finish(recs)
        };
        let a = replay(&cfg, &c, &build());
        let b = replay(&cfg, &c, &build());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_traces_finish_at_zero() {
        let cfg = ClusterConfig::new(2, 2);
        let tl = replay(&cfg, &cost(), &finish(recorders(&cfg)));
        assert_eq!(tl.total_ns(), 0.0);
    }
}
