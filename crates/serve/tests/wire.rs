//! Loopback TCP integration tests: the happy path plus the robustness
//! contract — malformed frames, oversized frames, partial frames followed
//! by disconnects, idle timeouts, and concurrent clients. The server must
//! never panic and must keep serving other connections through all of it.

use assoc_serve::protocol::{read_frame, write_frame, Frame, MAX_RESPONSE_FRAME};
use assoc_serve::{Client, Dataset, Query, Response, ServerConfig, Store, StoreConfig};
use mining_types::{FrequentSet, Itemset};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn iset(raw: &[u32]) -> Itemset {
    Itemset::of(raw)
}

fn dataset() -> Dataset {
    let frequent: FrequentSet = [
        (iset(&[1]), 10),
        (iset(&[2]), 8),
        (iset(&[3]), 6),
        (iset(&[1, 2]), 5),
        (iset(&[1, 3]), 4),
        (iset(&[2, 3]), 4),
        (iset(&[1, 2, 3]), 3),
    ]
    .into_iter()
    .collect();
    let rules = assoc_rules::generate(&frequent, 0.0);
    Dataset {
        frequent,
        rules,
        num_transactions: 12,
    }
}

fn start_server(cfg: &ServerConfig) -> (Arc<Store>, assoc_serve::ServerHandle) {
    let store = Arc::new(Store::with_dataset(&dataset(), &StoreConfig::default()));
    let handle = assoc_serve::start(Arc::clone(&store), cfg).expect("bind loopback");
    (store, handle)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// Read the server's single response frame, then expect EOF (connection
/// dropped by the server).
fn expect_error_then_close(mut stream: TcpStream) -> String {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let msg = match read_frame(&mut stream, MAX_RESPONSE_FRAME).expect("error response") {
        Frame::Payload(p) => match Response::decode(&p).expect("decodable response") {
            Response::Error(msg) => msg,
            other => panic!("expected error response, got {other:?}"),
        },
        other => panic!("expected payload, got {other:?}"),
    };
    match read_frame(&mut stream, MAX_RESPONSE_FRAME).expect("clean close") {
        Frame::Eof => {}
        other => panic!("expected EOF after error, got {other:?}"),
    }
    msg
}

#[test]
fn happy_path_round_trip() {
    let (_store, handle) = start_server(&test_config());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client.ping().unwrap();
    assert_eq!(client.support(iset(&[1, 2])).unwrap(), Some(5));
    assert_eq!(client.support(iset(&[7])).unwrap(), None);

    let subs = client.subsets(iset(&[1, 2, 3]), 100).unwrap();
    assert_eq!(subs.len(), 7);
    let sups = client.supersets(iset(&[2]), 100).unwrap();
    assert_eq!(
        sups.iter().map(|c| c.itemset.clone()).collect::<Vec<_>>(),
        vec![iset(&[1, 2]), iset(&[1, 2, 3]), iset(&[2]), iset(&[2, 3])]
    );

    let rules = client.rules_for(iset(&[2]), 5).unwrap();
    assert!(!rules.is_empty());
    for w in rules.windows(2) {
        assert!(w[0].confidence() >= w[1].confidence());
    }

    let top = client.top_k(1, 2).unwrap();
    assert_eq!(top[0].itemset, iset(&[1]));
    assert_eq!(top[0].support, 10);

    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"server\":{"), "{stats}");
    assert!(stats.contains("\"itemsets\":7"), "{stats}");

    let counters = handle.shutdown();
    assert_eq!(counters.connections, 1);
    assert!(counters.requests >= 8, "{counters:?}");
    assert_eq!(counters.protocol_errors, 0);
}

#[test]
fn malformed_frame_gets_error_and_close_but_server_keeps_serving() {
    let (_store, handle) = start_server(&test_config());
    let addr = handle.local_addr();

    // Unknown opcode.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, &[0xEE, 1, 2, 3]).unwrap();
    let msg = expect_error_then_close(raw);
    assert!(msg.contains("unknown opcode"), "{msg}");

    // Truncated body: Support announcing 4 items, carrying none.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, &[0x01, 4, 0]).unwrap();
    let msg = expect_error_then_close(raw);
    assert!(msg.contains("truncated"), "{msg}");

    // Trailing garbage after a valid Ping.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, &[0x00, 0xAB]).unwrap();
    let msg = expect_error_then_close(raw);
    assert!(msg.contains("trailing"), "{msg}");

    // The server is still healthy for new connections.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.support(iset(&[1])).unwrap(), Some(10));
    drop(client);

    let counters = handle.shutdown();
    assert_eq!(counters.protocol_errors, 3);
    assert_eq!(counters.connections, 4);
}

#[test]
fn oversized_frame_is_rejected_without_reading_it() {
    let (_store, handle) = start_server(&test_config());
    let addr = handle.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    // Announce a payload far beyond MAX_REQUEST_FRAME; send no payload.
    raw.write_all(&(64 * 1024 * 1024u32).to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let msg = expect_error_then_close(raw);
    assert!(msg.contains("exceeds request limit"), "{msg}");

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    drop(client);
    let counters = handle.shutdown();
    assert_eq!(counters.protocol_errors, 1);
}

#[test]
fn partial_frame_then_disconnect_does_not_disturb_the_server() {
    let (_store, handle) = start_server(&test_config());
    let addr = handle.local_addr();

    // Half a header.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[7, 0]).unwrap();
    raw.flush().unwrap();
    drop(raw);

    // Full header, partial payload.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&10u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x01, 2]).unwrap();
    raw.flush().unwrap();
    drop(raw);

    // Both were dropped server-side without poisoning anything.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.support(iset(&[2, 3])).unwrap(), Some(4));
    drop(client);
    handle.shutdown();
}

#[test]
fn idle_connection_is_dropped_after_the_read_timeout() {
    let cfg = ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let (_store, handle) = start_server(&cfg);
    let addr = handle.local_addr();

    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Say nothing; the server should hang up on us.
    let mut buf = [0u8; 1];
    let n = idle.read(&mut buf).unwrap();
    assert_eq!(n, 0, "server should close the idle connection");

    // And it still serves fresh connections.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    drop(client);
    let counters = handle.shutdown();
    assert_eq!(counters.timeouts, 1);
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let cfg = ServerConfig {
        workers: 8,
        ..test_config()
    };
    let (_store, handle) = start_server(&cfg);
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..50 {
                    match (t + round) % 4 {
                        0 => assert_eq!(client.support(iset(&[1, 2])).unwrap(), Some(5)),
                        1 => assert_eq!(client.subsets(iset(&[1, 2, 3]), 100).unwrap().len(), 7),
                        2 => {
                            let top = client.top_k(0, 1).unwrap();
                            assert_eq!(top[0].support, 10);
                        }
                        _ => {
                            let rules = client.rules_for(iset(&[1]), 3).unwrap();
                            assert!(rules.len() <= 3);
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let counters = handle.shutdown();
    assert_eq!(counters.connections, 8);
    assert_eq!(counters.requests, 8 * 50);
    assert_eq!(counters.protocol_errors, 0);
}

#[test]
fn reload_swaps_answers_without_restarting_the_server() {
    let (store, handle) = start_server(&test_config());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(client.support(iset(&[9])).unwrap(), None);

    let mut bigger = dataset();
    bigger.frequent.insert(iset(&[9]), 2);
    store.load(&bigger);

    // Same connection, new generation.
    assert_eq!(client.support(iset(&[9])).unwrap(), Some(2));
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"generation\":2"), "{stats}");
    drop(client);
    handle.shutdown();
}

#[test]
fn queries_behave_through_the_wire_exactly_as_in_process() {
    let (store, handle) = start_server(&test_config());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for q in [
        Query::Support {
            itemset: iset(&[1, 3]),
        },
        Query::Subsets {
            of: iset(&[1, 2]),
            limit: 5,
        },
        Query::Supersets {
            of: iset(&[3]),
            limit: 2,
        },
        Query::RulesFor {
            antecedent: iset(&[1, 2]),
            k: 4,
        },
        Query::TopK { size: 2, k: 3 },
    ] {
        let over_wire = client.query(&q).unwrap();
        let in_process = store.execute(&q);
        assert_eq!(over_wire, in_process, "{q:?}");
    }
    drop(client);
    handle.shutdown();
}
