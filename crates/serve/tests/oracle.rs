//! Oracle equivalence: every `assoc-serve` query answer must equal a
//! naive linear scan over the `FrequentSet` / rule-list it was built
//! from, for arbitrary mined databases — and the cache must never change
//! an answer (cold, warm, and cache-disabled stores all agree).

use apriori::reference::{brute_force, random_db};
use assoc_serve::{Dataset, Query, Response, Store, StoreConfig};
use mining_types::{Counted, ItemId, Itemset, MinSupport};
use proptest::prelude::*;

const NUM_ITEMS: u32 = 9;

fn mask_itemset(mask: u32) -> Itemset {
    Itemset::from_sorted(
        (0..NUM_ITEMS)
            .filter(|b| mask & (1 << b) != 0)
            .map(ItemId)
            .collect(),
    )
}

fn mined(seed: u64, pct: f64, conf: f64) -> Dataset {
    let db = random_db(seed, 90, NUM_ITEMS, 5);
    let frequent = brute_force(&db, MinSupport::from_percent(pct));
    let rules = assoc_rules::generate(&frequent, conf);
    Dataset {
        frequent,
        rules,
        num_transactions: db.num_transactions() as u32,
    }
}

fn naive_support(ds: &Dataset, q: &Itemset) -> Response {
    if q.is_empty() {
        return Response::Support(None);
    }
    Response::Support(ds.frequent.support_of(q))
}

fn lex_limited(mut v: Vec<Counted>, limit: u32) -> Response {
    v.sort_by(|a, b| a.itemset.cmp(&b.itemset));
    v.truncate(limit as usize);
    Response::Itemsets(v)
}

fn naive_subsets(ds: &Dataset, q: &Itemset, limit: u32) -> Response {
    lex_limited(
        ds.frequent
            .sorted()
            .into_iter()
            .filter(|c| c.itemset.is_subset_of(q))
            .collect(),
        limit,
    )
}

fn naive_supersets(ds: &Dataset, q: &Itemset, limit: u32) -> Response {
    lex_limited(
        ds.frequent
            .sorted()
            .into_iter()
            .filter(|c| q.is_subset_of(&c.itemset))
            .collect(),
        limit,
    )
}

fn naive_rules_for(ds: &Dataset, antecedent: &Itemset, k: u32) -> Response {
    let mut entries: Vec<assoc_serve::RuleEntry> = ds
        .rules
        .iter()
        .filter(|r| &r.antecedent == antecedent)
        .map(|r| assoc_serve::RuleEntry {
            consequent: r.consequent.clone(),
            support: r.support,
            antecedent_support: r.antecedent_support,
            consequent_support: r.consequent_support,
        })
        .collect();
    // Confidence descending: with the antecedent fixed, the shared
    // antecedent support makes that exactly support descending.
    entries.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(a.consequent.cmp(&b.consequent))
    });
    entries.truncate(k as usize);
    Response::Rules(entries)
}

fn naive_top_k(ds: &Dataset, size: u32, k: u32) -> Response {
    let mut v: Vec<Counted> = ds
        .frequent
        .sorted()
        .into_iter()
        .filter(|c| size == 0 || c.itemset.len() == size as usize)
        .collect();
    v.sort_by(|a, b| b.support.cmp(&a.support).then(a.itemset.cmp(&b.itemset)));
    v.truncate(k as usize);
    Response::Itemsets(v)
}

/// Run `q` against a caching store (cold then warm) and a cache-disabled
/// store, assert all three equal, and return the answer.
fn served(cached: &Store, uncached: &Store, q: &Query) -> Response {
    let cold = cached.execute(q);
    let warm = cached.execute(q);
    let none = uncached.execute(q);
    assert_eq!(cold, warm, "cache warm/cold divergence on {q:?}");
    assert_eq!(cold, none, "cache on/off divergence on {q:?}");
    cold
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_four_query_types_match_the_linear_scan_oracle(
        seed in 0u64..400,
        pct in 6.0f64..30.0,
        conf in 0.05f64..0.9,
        shards in 1usize..7,
        mask_a in 0u32..512,
        mask_b in 0u32..512,
        limit in 0u32..40,
        size in 0u32..5,
        k in 0u32..15,
    ) {
        let ds = mined(seed, pct, conf);
        let cached = Store::with_dataset(&ds, &StoreConfig { shards, cache_entries: 64 });
        let uncached = Store::with_dataset(&ds, &StoreConfig { shards, cache_entries: 0 });

        for mask in [mask_a, mask_b] {
            let q = mask_itemset(mask);
            prop_assert_eq!(
                served(&cached, &uncached, &Query::Support { itemset: q.clone() }),
                naive_support(&ds, &q)
            );
            prop_assert_eq!(
                served(&cached, &uncached, &Query::Subsets { of: q.clone(), limit }),
                naive_subsets(&ds, &q, limit)
            );
            prop_assert_eq!(
                served(&cached, &uncached, &Query::Supersets { of: q.clone(), limit }),
                naive_supersets(&ds, &q, limit)
            );
            // Antecedents that actually occur are far more interesting
            // than random masks, so probe both.
            let mut antecedents = vec![q.clone()];
            if let Some(r) = ds.rules.get((mask as usize) % ds.rules.len().max(1)) {
                antecedents.push(r.antecedent.clone());
            }
            for a in antecedents {
                prop_assert_eq!(
                    served(&cached, &uncached, &Query::RulesFor { antecedent: a.clone(), k }),
                    naive_rules_for(&ds, &a, k)
                );
            }
        }
        prop_assert_eq!(
            served(&cached, &uncached, &Query::TopK { size, k }),
            naive_top_k(&ds, size, k)
        );

        // The caching store answered every query at least twice, so the
        // warm passes must have hit (repeated queries can only add hits).
        let cs = cached.cache_stats();
        prop_assert!(cs.hits >= cs.misses, "hits {} < misses {}", cs.hits, cs.misses);
        prop_assert!(cs.hits > 0);
    }
}

#[test]
fn wire_roundtrip_preserves_every_answer() {
    // Encode → decode every response produced over one dataset; the wire
    // representation must be lossless so the TCP path can't diverge from
    // the in-process path.
    let ds = mined(7, 10.0, 0.3);
    let store = Store::with_dataset(&ds, &StoreConfig::default());
    let mut queries = vec![Query::TopK { size: 0, k: 50 }];
    for mask in 0u32..64 {
        let q = mask_itemset(mask);
        queries.push(Query::Support { itemset: q.clone() });
        queries.push(Query::Subsets {
            of: q.clone(),
            limit: 20,
        });
        queries.push(Query::Supersets {
            of: q.clone(),
            limit: 20,
        });
        queries.push(Query::RulesFor {
            antecedent: q,
            k: 10,
        });
    }
    for q in &queries {
        let decoded_q = Query::decode(&q.encode()).expect("query roundtrip");
        assert_eq!(&decoded_q, q);
        let resp = store.execute(q);
        let decoded = Response::decode(&resp.encode()).expect("response roundtrip");
        assert_eq!(decoded, resp, "{q:?}");
    }
}
