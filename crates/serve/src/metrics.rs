//! Per-query serving metrics on the [`eclat_obs`] registry.
//!
//! One [`ServeMetrics`] instance accompanies a server: every answered
//! request increments a per-query-kind counter and feeds a log-bucketed
//! latency histogram (plus the `all` aggregate), and a render pass
//! syncs the store/cache/server snapshot counters into the same
//! registry so `eclat query --metrics` returns one Prometheus-style
//! text document. The histogram quantiles are also exported as
//! structured [`QueryStat`] rows inside the `Stats` JSON, which is what
//! `servload` compares its client-side percentiles against.

use crate::protocol::Query;
use crate::stats::{QueryStat, ServeStats};
use eclat_obs::metrics::{Counter, Histogram, Registry, RENDERED_QUANTILES};
use std::sync::Arc;
use std::time::Duration;

/// Query-kind labels, aggregate first. Order is the row order of
/// [`ServeMetrics::query_stats`].
pub const QUERY_KINDS: [&str; 9] = [
    "all",
    "ping",
    "support",
    "subsets",
    "supersets",
    "rules_for",
    "top_k",
    "stats",
    "metrics",
];

/// Request counters and latency histograms for one server, keyed by
/// query kind, on a private [`Registry`].
pub struct ServeMetrics {
    registry: Registry,
    requests: Vec<Arc<Counter>>,
    latency: Vec<Arc<Histogram>>,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// A fresh registry with one counter + histogram per query kind.
    pub fn new() -> ServeMetrics {
        let registry = Registry::new();
        let requests = QUERY_KINDS
            .iter()
            .map(|k| registry.counter(&format!("eclat_serve_requests_total{{query=\"{k}\"}}")))
            .collect();
        let latency = QUERY_KINDS
            .iter()
            .map(|k| registry.histogram(&format!("eclat_serve_latency_seconds{{query=\"{k}\"}}")))
            .collect();
        ServeMetrics {
            registry,
            requests,
            latency,
        }
    }

    /// The metrics label of a query.
    pub fn kind_of(query: &Query) -> &'static str {
        match query {
            Query::Ping => "ping",
            Query::Support { .. } => "support",
            Query::Subsets { .. } => "subsets",
            Query::Supersets { .. } => "supersets",
            Query::RulesFor { .. } => "rules_for",
            Query::TopK { .. } => "top_k",
            Query::Stats => "stats",
            Query::Metrics => "metrics",
        }
    }

    fn index_of(kind: &str) -> usize {
        QUERY_KINDS.iter().position(|&k| k == kind).unwrap_or(0)
    }

    /// Record one answered request of `kind` (also feeds `all`).
    pub fn observe(&self, kind: &str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = Self::index_of(kind);
        self.requests[idx].inc();
        self.latency[idx].observe_ns(ns);
        if idx != 0 {
            self.requests[0].inc();
            self.latency[0].observe_ns(ns);
        }
    }

    /// One [`QueryStat`] row per kind that has answered at least one
    /// request, in [`QUERY_KINDS`] order (`all` first).
    pub fn query_stats(&self) -> Vec<QueryStat> {
        QUERY_KINDS
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.requests[i].get() > 0)
            .map(|(i, &kind)| {
                let h = &self.latency[i];
                let ms = |q: f64| h.quantile_ns(q) / 1e6;
                QueryStat {
                    query: kind.to_string(),
                    count: self.requests[i].get(),
                    p50_ms: ms(RENDERED_QUANTILES[0]),
                    p90_ms: ms(RENDERED_QUANTILES[1]),
                    p99_ms: ms(RENDERED_QUANTILES[2]),
                }
            })
            .collect()
    }

    /// Sync the snapshot counters of `stats` into the registry and
    /// render the whole thing as Prometheus-style text.
    pub fn render(&self, stats: &ServeStats) -> String {
        let r = &self.registry;
        r.gauge("eclat_serve_generation").set(stats.generation);
        r.gauge("eclat_serve_itemsets").set(stats.itemsets);
        r.gauge("eclat_serve_rules").set(stats.rules);
        r.counter("eclat_serve_cache_hits_total")
            .store(stats.cache.hits);
        r.counter("eclat_serve_cache_misses_total")
            .store(stats.cache.misses);
        r.counter("eclat_serve_cache_insertions_total")
            .store(stats.cache.insertions);
        r.counter("eclat_serve_cache_evictions_total")
            .store(stats.cache.evictions);
        r.gauge("eclat_serve_cache_entries")
            .set(stats.cache.entries);
        if let Some(s) = stats.server {
            r.counter("eclat_serve_connections_total")
                .store(s.connections);
            r.counter("eclat_serve_server_requests_total")
                .store(s.requests);
            r.counter("eclat_serve_protocol_errors_total")
                .store(s.protocol_errors);
            r.counter("eclat_serve_timeouts_total").store(s.timeouts);
        }
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use mining_types::Itemset;

    fn stats() -> ServeStats {
        ServeStats {
            generation: 3,
            reloads: 0,
            shards: 4,
            itemsets: 10,
            rules: 5,
            trie_nodes: 20,
            num_transactions: 100,
            cache: CacheStats {
                capacity: 64,
                entries: 2,
                value_bytes: 99,
                hits: 7,
                misses: 3,
                insertions: 3,
                evictions: 1,
            },
            server: None,
            queries: None,
        }
    }

    #[test]
    fn kinds_cover_every_query() {
        let m = ServeMetrics::new();
        let queries = [
            Query::Ping,
            Query::Support {
                itemset: Itemset::of(&[1]),
            },
            Query::Stats,
            Query::Metrics,
        ];
        for q in &queries {
            let kind = ServeMetrics::kind_of(q);
            assert!(QUERY_KINDS.contains(&kind), "{kind}");
            m.observe(kind, Duration::from_micros(50));
        }
        let rows = m.query_stats();
        assert_eq!(rows[0].query, "all");
        assert_eq!(rows[0].count, queries.len() as u64);
        let ping = rows.iter().find(|r| r.query == "ping").unwrap();
        assert_eq!(ping.count, 1);
        // 50 µs = 0.05 ms within the ≤ 12.5 % bucket quantization.
        assert!(
            (ping.p50_ms - 0.05).abs() / 0.05 <= 0.125,
            "{}",
            ping.p50_ms
        );
        assert!(rows.iter().all(|r| r.count > 0), "quiet kinds are omitted");
    }

    #[test]
    fn render_includes_requests_and_synced_snapshot() {
        let m = ServeMetrics::new();
        m.observe("support", Duration::from_millis(2));
        let text = m.render(&stats());
        assert!(
            text.contains("eclat_serve_requests_total{query=\"support\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("eclat_serve_requests_total{query=\"all\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("eclat_serve_latency_seconds{query=\"all\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("eclat_serve_cache_hits_total 7"), "{text}");
        assert!(text.contains("eclat_serve_generation 3"), "{text}");
        // Quiet kinds still render (count 0) in the full exposition.
        assert!(
            text.contains("eclat_serve_requests_total{query=\"ping\"} 0"),
            "{text}"
        );
    }
}
