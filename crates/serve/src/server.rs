//! Std-only thread-pool TCP server for the wire protocol.
//!
//! No async runtime: the build is offline/vendored, so the server is a
//! fixed pool of worker threads fed by an accept thread over an mpsc
//! channel. Each connection is owned by one worker for its whole life and
//! processes frames serially; concurrency comes from the pool (and the
//! store's lock-free reads make the workers embarrassingly parallel).
//!
//! Robustness contract, pinned by the loopback integration tests:
//!
//! * a malformed frame (unknown opcode, truncated body, trailing bytes)
//!   gets an `Error` response, then the connection is closed;
//! * an oversized frame (announced length beyond the request limit) gets
//!   an `Error` response without the payload ever being read, then close;
//! * a peer that disappears mid-frame, or idles past the per-connection
//!   read timeout, is dropped silently;
//! * none of the above ever panics a worker or disturbs other
//!   connections.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] flips a flag, nudges
//! the accept loop awake with a loopback connection, and joins every
//! thread; workers finish their current connection first (bounded by the
//! read timeout).

use crate::metrics::ServeMetrics;
use crate::protocol::{read_frame, write_frame, Frame, Query, Response, MAX_REQUEST_FRAME};
use crate::stats::ServerCounters;
use crate::store::Store;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Interface to bind (loopback by default).
    pub host: String,
    /// Port to bind; `0` asks the OS for an ephemeral port (read it back
    /// from [`ServerHandle::local_addr`]).
    pub port: u16,
    /// Worker threads — the number of connections served concurrently.
    pub workers: usize,
    /// Per-connection read timeout; an idle connection is dropped after
    /// this long between frames.
    pub read_timeout: Duration,
    /// Request-frame payload limit.
    pub max_request_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 8,
            read_timeout: Duration::from_secs(10),
            max_request_frame: MAX_REQUEST_FRAME,
        }
    }
}

#[derive(Default)]
struct AtomicCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    timeouts: AtomicU64,
}

/// A running server; dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (they keep serving
/// until the process exits).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<AtomicCounters>,
    metrics: Arc<ServeMetrics>,
    workers: usize,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `port: 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-query request/latency metrics this server records.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Snapshot the server counters.
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            workers: self.workers as u64,
        }
    }

    /// Stop accepting, drain the workers, and join every thread.
    /// Returns the final counters.
    pub fn shutdown(mut self) -> ServerCounters {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        self.counters()
    }
}

/// Bind and start serving `store` with `cfg`.
///
/// # Errors
/// Fails only on bind; everything after runs on the spawned threads.
pub fn start(store: Arc<Store>, cfg: &ServerConfig) -> io::Result<ServerHandle> {
    assert!(cfg.workers > 0, "need at least one worker");
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(AtomicCounters::default());
    let metrics = Arc::new(ServeMetrics::new());

    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_threads = Vec::with_capacity(cfg.workers);
    for n in 0..cfg.workers {
        let rx = Arc::clone(&rx);
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let metrics = Arc::clone(&metrics);
        let cfg = cfg.clone();
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("assoc-serve-worker-{n}"))
                .spawn(move || worker_loop(&rx, &store, &stop, &counters, &metrics, &cfg))?,
        );
    }

    let accept_stop = Arc::clone(&stop);
    let accept_counters = Arc::clone(&counters);
    let workers = cfg.workers;
    let accept_thread = std::thread::Builder::new()
        .name("assoc-serve-accept".to_string())
        .spawn(move || {
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match incoming {
                    Ok(stream) => {
                        accept_counters.connections.fetch_add(1, Ordering::Relaxed);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. EMFILE); keep going.
                        continue;
                    }
                }
            }
            // Dropping `tx` here wakes every idle worker out of recv().
        })?;

    Ok(ServerHandle {
        addr,
        stop,
        counters,
        metrics,
        workers,
        accept_thread: Some(accept_thread),
        worker_threads,
    })
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    store: &Store,
    stop: &AtomicBool,
    counters: &AtomicCounters,
    metrics: &ServeMetrics,
    cfg: &ServerConfig,
) {
    loop {
        // Hold the lock only for the recv so other workers can pick up
        // connections while this one serves.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => handle_connection(stream, store, stop, counters, metrics, cfg),
            Err(_) => return, // accept loop gone: shutdown
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    store: &Store,
    stop: &AtomicBool,
    counters: &AtomicCounters,
    metrics: &ServeMetrics,
    cfg: &ServerConfig,
) {
    let snapshot_counters = |counters: &AtomicCounters| ServerCounters {
        connections: counters.connections.load(Ordering::Relaxed),
        requests: counters.requests.load(Ordering::Relaxed),
        protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
        timeouts: counters.timeouts.load(Ordering::Relaxed),
        workers: cfg.workers as u64,
    };
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream, cfg.max_request_frame) {
            Ok(Frame::Eof) => return,
            Ok(Frame::TooLarge(len)) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let err = Response::Error(format!(
                    "frame of {len} bytes exceeds request limit of {}",
                    cfg.max_request_frame
                ));
                let _ = write_frame(&mut stream, &err.encode());
                return;
            }
            Ok(Frame::Payload(payload)) => match Query::decode(&payload) {
                Ok(query) => {
                    let start = Instant::now();
                    let kind = ServeMetrics::kind_of(&query);
                    let response = match query {
                        Query::Stats => {
                            let mut stats = store.serve_stats(Some(snapshot_counters(counters)));
                            stats.queries = Some(metrics.query_stats());
                            Response::StatsJson(stats.to_json())
                        }
                        Query::Metrics => {
                            let mut stats = store.serve_stats(Some(snapshot_counters(counters)));
                            stats.queries = Some(metrics.query_stats());
                            Response::MetricsText(metrics.render(&stats))
                        }
                        other => store.execute(&other),
                    };
                    counters.requests.fetch_add(1, Ordering::Relaxed);
                    metrics.observe(kind, start.elapsed());
                    if write_frame(&mut stream, &response.encode()).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let err = Response::Error(format!("bad request: {e}"));
                    let _ = write_frame(&mut stream, &err.encode());
                    return;
                }
            },
            Err(e) if wire::is_timeout(&e) => {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return, // peer vanished mid-frame
        }
    }
}
