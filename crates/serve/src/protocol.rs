//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — travels as one **frame**:
//!
//! ```text
//! frame    := len:u32le  payload[len]
//! itemset  := n:u16le  item:u32le × n          (items sorted ascending)
//! counted  := itemset  support:u32le
//! rule     := antecedent:itemset  consequent:itemset
//!             support:u32le  antecedent_support:u32le  consequent_support:u32le
//!
//! request  := 0x00                                  Ping
//!           | 0x01 itemset                          Support
//!           | 0x02 itemset limit:u32le              Subsets
//!           | 0x03 itemset limit:u32le              Supersets
//!           | 0x04 itemset k:u32le                  RulesFor
//!           | 0x05 size:u32le k:u32le               TopK (size 0 = any)
//!           | 0x06                                  Stats
//!           | 0x07                                  Metrics
//!
//! response := 0x00                                  Pong
//!           | 0x01 found:u8 support:u32le           Support
//!           | 0x02 count:u32le counted × count      Itemsets
//!           | 0x03 count:u32le rule × count         Rules
//!           | 0x04 len:u16le utf8[len]              Error
//!           | 0x05 len:u32le utf8[len]              StatsJson
//!           | 0x06 len:u32le utf8[len]              MetricsText
//! ```
//!
//! All integers are little-endian. Decoding is strict: unknown opcodes,
//! truncated bodies, unsorted itemsets, and trailing bytes are all
//! [`ProtoError`]s — the server answers them with an `Error` response and
//! drops the connection rather than guessing. Frames larger than the
//! receiver's limit ([`MAX_REQUEST_FRAME`] / [`MAX_RESPONSE_FRAME`]) are
//! rejected before the payload is read.

use crate::index::RuleEntry;
use mining_types::{Counted, ItemId, Itemset};
use std::fmt;

// The outer framing is shared workspace plumbing (the `wire` crate);
// `eclat-net` speaks the same frame layout. Re-exported here so this
// module remains the one-stop description of the serve protocol.
pub use wire::{read_frame, write_frame, Frame};

/// Largest request payload a server will read. Requests are one itemset
/// plus a few integers, so this is generous.
pub const MAX_REQUEST_FRAME: usize = 64 * 1024;

/// Largest response payload a client will read. Result lists are bounded
/// by [`MAX_RESULT_LIMIT`], which keeps worst-case responses far below
/// this.
pub const MAX_RESPONSE_FRAME: usize = 8 * 1024 * 1024;

/// Hard cap on `limit` / `k` in enumeration queries; the server clamps
/// rather than errors, and the bound keeps responses inside
/// [`MAX_RESPONSE_FRAME`].
pub const MAX_RESULT_LIMIT: u32 = 65_536;

/// A protocol decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the announced structure was complete.
    Truncated,
    /// First byte of a request/response was not a known opcode.
    BadOpcode(u8),
    /// Bytes remained after a complete message was decoded.
    TrailingBytes(usize),
    /// An itemset's items were not strictly ascending.
    UnsortedItemset,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A frame length exceeded the receiver's limit.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The receiver's limit.
        max: usize,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated payload"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::UnsortedItemset => write!(f, "itemset items must be strictly ascending"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds limit of {max}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// A query against the store — the in-process API and the wire protocol
/// share this type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Liveness check.
    Ping,
    /// Exact support of one itemset.
    Support {
        /// The itemset to look up.
        itemset: Itemset,
    },
    /// Frequent itemsets that are ⊆ `of`, lexicographic, at most `limit`.
    Subsets {
        /// The covering itemset.
        of: Itemset,
        /// Maximum results (clamped to [`MAX_RESULT_LIMIT`]).
        limit: u32,
    },
    /// Frequent itemsets that are ⊇ `of`, lexicographic, at most `limit`.
    Supersets {
        /// The contained itemset (empty = enumerate everything).
        of: Itemset,
        /// Maximum results (clamped to [`MAX_RESULT_LIMIT`]).
        limit: u32,
    },
    /// Top-`k` rules with exactly this antecedent, confidence descending.
    RulesFor {
        /// The antecedent ("items bought with …").
        antecedent: Itemset,
        /// Maximum rules (clamped to [`MAX_RESULT_LIMIT`]).
        k: u32,
    },
    /// Top-`k` frequent itemsets of `size` items (0 = any size) by
    /// support descending.
    TopK {
        /// Required itemset size, or 0 for any.
        size: u32,
        /// Maximum results (clamped to [`MAX_RESULT_LIMIT`]).
        k: u32,
    },
    /// Server/cache statistics as a JSON document.
    Stats,
    /// Request/latency metrics as Prometheus-style exposition text.
    Metrics,
}

/// A query answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Query::Ping`].
    Pong,
    /// Answer to [`Query::Support`]: the support, if frequent.
    Support(Option<u32>),
    /// Answer to subset/superset/top-k queries.
    Itemsets(Vec<Counted>),
    /// Answer to [`Query::RulesFor`]: the antecedent echoed back is not
    /// needed — entries carry everything else.
    Rules(Vec<RuleEntry>),
    /// Server-side failure (decode error, unsupported query).
    Error(String),
    /// Answer to [`Query::Stats`].
    StatsJson(String),
    /// Answer to [`Query::Metrics`].
    MetricsText(String),
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_itemset(buf: &mut Vec<u8>, is: &Itemset) {
    debug_assert!(is.len() <= u16::MAX as usize);
    put_u16(buf, is.len() as u16);
    for item in is {
        put_u32(buf, item.0);
    }
}

/// Strict little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.at + n > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn itemset(&mut self) -> Result<Itemset, ProtoError> {
        let n = self.u16()? as usize;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(ItemId(self.u32()?));
        }
        if !items.windows(2).all(|w| w[0] < w[1]) {
            return Err(ProtoError::UnsortedItemset);
        }
        Ok(Itemset::from_sorted(items))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.at != self.buf.len() {
            return Err(ProtoError::TrailingBytes(self.buf.len() - self.at));
        }
        Ok(())
    }
}

impl Query {
    /// Encode into a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Query::Ping => buf.push(0x00),
            Query::Support { itemset } => {
                buf.push(0x01);
                put_itemset(&mut buf, itemset);
            }
            Query::Subsets { of, limit } => {
                buf.push(0x02);
                put_itemset(&mut buf, of);
                put_u32(&mut buf, *limit);
            }
            Query::Supersets { of, limit } => {
                buf.push(0x03);
                put_itemset(&mut buf, of);
                put_u32(&mut buf, *limit);
            }
            Query::RulesFor { antecedent, k } => {
                buf.push(0x04);
                put_itemset(&mut buf, antecedent);
                put_u32(&mut buf, *k);
            }
            Query::TopK { size, k } => {
                buf.push(0x05);
                put_u32(&mut buf, *size);
                put_u32(&mut buf, *k);
            }
            Query::Stats => buf.push(0x06),
            Query::Metrics => buf.push(0x07),
        }
        buf
    }

    /// Decode a payload (strict: trailing bytes are an error).
    pub fn decode(payload: &[u8]) -> Result<Query, ProtoError> {
        let mut c = Cursor::new(payload);
        let q = match c.u8()? {
            0x00 => Query::Ping,
            0x01 => Query::Support {
                itemset: c.itemset()?,
            },
            0x02 => Query::Subsets {
                of: c.itemset()?,
                limit: c.u32()?,
            },
            0x03 => Query::Supersets {
                of: c.itemset()?,
                limit: c.u32()?,
            },
            0x04 => Query::RulesFor {
                antecedent: c.itemset()?,
                k: c.u32()?,
            },
            0x05 => Query::TopK {
                size: c.u32()?,
                k: c.u32()?,
            },
            0x06 => Query::Stats,
            0x07 => Query::Metrics,
            op => return Err(ProtoError::BadOpcode(op)),
        };
        c.finish()?;
        Ok(q)
    }
}

impl Response {
    /// Encode into a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Pong => buf.push(0x00),
            Response::Support(sup) => {
                buf.push(0x01);
                buf.push(sup.is_some() as u8);
                put_u32(&mut buf, sup.unwrap_or(0));
            }
            Response::Itemsets(list) => {
                buf.push(0x02);
                put_u32(&mut buf, list.len() as u32);
                for c in list {
                    put_itemset(&mut buf, &c.itemset);
                    put_u32(&mut buf, c.support);
                }
            }
            Response::Rules(list) => {
                buf.push(0x03);
                put_u32(&mut buf, list.len() as u32);
                for r in list {
                    // The caller re-attaches the shared antecedent; on the
                    // wire each entry is self-contained.
                    put_itemset(&mut buf, &r.consequent);
                    put_u32(&mut buf, r.support);
                    put_u32(&mut buf, r.antecedent_support);
                    put_u32(&mut buf, r.consequent_support);
                }
            }
            Response::Error(msg) => {
                buf.push(0x04);
                let bytes = msg.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                put_u16(&mut buf, n as u16);
                buf.extend_from_slice(&bytes[..n]);
            }
            Response::StatsJson(json) => {
                buf.push(0x05);
                put_u32(&mut buf, json.len() as u32);
                buf.extend_from_slice(json.as_bytes());
            }
            Response::MetricsText(text) => {
                buf.push(0x06);
                put_u32(&mut buf, text.len() as u32);
                buf.extend_from_slice(text.as_bytes());
            }
        }
        buf
    }

    /// Decode a payload (strict).
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(payload);
        let r = match c.u8()? {
            0x00 => Response::Pong,
            0x01 => {
                let found = c.u8()? != 0;
                let sup = c.u32()?;
                Response::Support(found.then_some(sup))
            }
            0x02 => {
                let n = c.u32()? as usize;
                let mut list = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let itemset = c.itemset()?;
                    let support = c.u32()?;
                    list.push(Counted { itemset, support });
                }
                Response::Itemsets(list)
            }
            0x03 => {
                let n = c.u32()? as usize;
                let mut list = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let consequent = c.itemset()?;
                    let support = c.u32()?;
                    let antecedent_support = c.u32()?;
                    let consequent_support = c.u32()?;
                    list.push(RuleEntry {
                        consequent,
                        support,
                        antecedent_support,
                        consequent_support,
                    });
                }
                Response::Rules(list)
            }
            0x04 => {
                let n = c.u16()? as usize;
                let msg = std::str::from_utf8(c.take(n)?).map_err(|_| ProtoError::BadUtf8)?;
                Response::Error(msg.to_string())
            }
            0x05 => {
                let n = c.u32()? as usize;
                let json = std::str::from_utf8(c.take(n)?).map_err(|_| ProtoError::BadUtf8)?;
                Response::StatsJson(json.to_string())
            }
            0x06 => {
                let n = c.u32()? as usize;
                let text = std::str::from_utf8(c.take(n)?).map_err(|_| ProtoError::BadUtf8)?;
                Response::MetricsText(text.to_string())
            }
            op => return Err(ProtoError::BadOpcode(op)),
        };
        c.finish()?;
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    #[test]
    fn query_roundtrip() {
        let queries = [
            Query::Ping,
            Query::Support {
                itemset: iset(&[1, 5, 9]),
            },
            Query::Subsets {
                of: iset(&[2, 3]),
                limit: 100,
            },
            Query::Supersets {
                of: Itemset::empty(),
                limit: 7,
            },
            Query::RulesFor {
                antecedent: iset(&[4]),
                k: 3,
            },
            Query::TopK { size: 0, k: 10 },
            Query::Stats,
            Query::Metrics,
        ];
        for q in queries {
            let enc = q.encode();
            assert_eq!(Query::decode(&enc).unwrap(), q, "{q:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = [
            Response::Pong,
            Response::Support(Some(42)),
            Response::Support(None),
            Response::Itemsets(vec![
                Counted {
                    itemset: iset(&[1, 2]),
                    support: 5,
                },
                Counted {
                    itemset: iset(&[7]),
                    support: 9,
                },
            ]),
            Response::Rules(vec![RuleEntry {
                consequent: iset(&[3]),
                support: 4,
                antecedent_support: 6,
                consequent_support: 5,
            }]),
            Response::Error("no such thing".to_string()),
            Response::StatsJson("{\"hits\":1}".to_string()),
            Response::MetricsText("# TYPE x counter\nx 1\n".to_string()),
        ];
        for r in responses {
            let enc = r.encode();
            assert_eq!(Response::decode(&enc).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn strict_decoding_rejects_garbage() {
        assert_eq!(Query::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Query::decode(&[0xEE]), Err(ProtoError::BadOpcode(0xEE)));
        assert_eq!(
            Query::decode(&[0x00, 0x01]),
            Err(ProtoError::TrailingBytes(1))
        );
        // Support frame announcing 2 items but carrying none.
        assert_eq!(Query::decode(&[0x01, 2, 0]), Err(ProtoError::Truncated));
        // Unsorted itemset.
        let mut bad = vec![0x01, 2, 0];
        bad.extend_from_slice(&5u32.to_le_bytes());
        bad.extend_from_slice(&3u32.to_le_bytes());
        assert_eq!(Query::decode(&bad), Err(ProtoError::UnsortedItemset));
        assert_eq!(
            Response::decode(&[0x04, 1, 0, 0xFF]),
            Err(ProtoError::BadUtf8)
        );
    }

    #[test]
    fn frame_io_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap();
        assert_eq!(buf, vec![3, 0, 0, 0, 1, 2, 3]);
        let mut r = &buf[..];
        match read_frame(&mut r, 16).unwrap() {
            Frame::Payload(p) => assert_eq!(p, vec![1, 2, 3]),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, 16).unwrap() {
            Frame::Eof => {}
            other => panic!("{other:?}"),
        }

        let mut r = &buf[..];
        match read_frame(&mut r, 2).unwrap() {
            Frame::TooLarge(3) => {}
            other => panic!("{other:?}"),
        }

        // Mid-header close is an error, not Eof.
        let mut r = &buf[..2];
        assert_eq!(
            read_frame(&mut r, 16).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Mid-payload close too.
        let mut r = &buf[..5];
        assert_eq!(
            read_frame(&mut r, 16).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
