//! Read-optimized prefix-trie index over mined artifacts.
//!
//! One [`IndexShard`] holds every frequent itemset whose *first* (smallest)
//! item routes to the shard, stored in a [`Trie`] keyed by the sorted item
//! sequence, plus the pre-generated rules grouped by antecedent and
//! per-size support-ordered rankings for top-k queries. Shards are built
//! once and never mutated — the store layer swaps whole shard tables
//! ([`crate::store`]), so everything here is `&self` and safe to share
//! across reader threads without locks.
//!
//! Result orderings are part of the query contract (the wire protocol
//! exposes them verbatim and the oracle property test pins them):
//!
//! * subset / superset enumeration: lexicographic ascending;
//! * top-k itemsets: support descending, then lexicographic;
//! * rules for an antecedent: confidence descending (within one antecedent
//!   this equals support descending — the antecedent support is shared),
//!   then consequent lexicographic.

use assoc_rules::Rule;
use mining_types::{Counted, FrequentSet, FxHashMap, ItemId, Itemset};

/// Everything the serving layer loads: the mined frequent set, the
/// pre-generated rules, and the database size the statistics (lift,
/// leverage, conviction) are relative to.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// Frequent itemsets with absolute supports (downward-closed sets
    /// give the most useful subset queries, but any set serves).
    pub frequent: FrequentSet,
    /// Rules generated from `frequent` (may be empty).
    pub rules: Vec<Rule>,
    /// Number of transactions in the mined database.
    pub num_transactions: u32,
}

/// One rule under a fixed antecedent, as stored in the index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleEntry {
    /// The consequent `Y` of `antecedent ⇒ Y`.
    pub consequent: Itemset,
    /// Absolute support of `antecedent ∪ Y`.
    pub support: u32,
    /// Absolute support of the antecedent.
    pub antecedent_support: u32,
    /// Absolute support of the consequent.
    pub consequent_support: u32,
}

impl RuleEntry {
    /// Confidence `support / antecedent_support`.
    pub fn confidence(&self) -> f64 {
        self.support as f64 / self.antecedent_support as f64
    }
}

/// A node of the itemset trie: sorted child edges plus the support of the
/// itemset ending here, if that itemset is frequent.
#[derive(Clone, Debug, Default)]
struct Node {
    children: Vec<(ItemId, u32)>,
    support: Option<u32>,
}

impl Node {
    fn child(&self, item: ItemId) -> Option<u32> {
        self.children
            .binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|pos| self.children[pos].1)
    }
}

/// Arena-allocated prefix trie over sorted itemsets.
#[derive(Clone, Debug)]
pub struct Trie {
    nodes: Vec<Node>,
}

impl Default for Trie {
    fn default() -> Self {
        Trie {
            nodes: vec![Node::default()],
        }
    }
}

impl Trie {
    /// Insert `items` (sorted ascending) with its support.
    fn insert(&mut self, items: &[ItemId], support: u32) {
        let mut at = 0u32;
        for &item in items {
            at = match self.nodes[at as usize]
                .children
                .binary_search_by_key(&item, |&(i, _)| i)
            {
                Ok(pos) => self.nodes[at as usize].children[pos].1,
                Err(pos) => {
                    let next = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[at as usize].children.insert(pos, (item, next));
                    next
                }
            };
        }
        self.nodes[at as usize].support = Some(support);
    }

    /// Exact support lookup.
    pub fn support(&self, items: &[ItemId]) -> Option<u32> {
        let mut at = 0u32;
        for &item in items {
            at = self.nodes[at as usize].child(item)?;
        }
        self.nodes[at as usize].support
    }

    /// Append up to `limit` stored itemsets that are **subsets** of the
    /// sorted `query` (including `query` itself when stored), in
    /// lexicographic order.
    pub fn subsets_of(&self, query: &[ItemId], limit: usize, out: &mut Vec<Counted>) {
        let mut path = Vec::with_capacity(query.len());
        self.subsets_rec(0, query, 0, &mut path, limit, out);
    }

    fn subsets_rec(
        &self,
        at: u32,
        query: &[ItemId],
        start: usize,
        path: &mut Vec<ItemId>,
        limit: usize,
        out: &mut Vec<Counted>,
    ) {
        if out.len() >= limit {
            return;
        }
        let node = &self.nodes[at as usize];
        if let Some(sup) = node.support {
            out.push(Counted {
                itemset: Itemset::from_sorted(path.clone()),
                support: sup,
            });
        }
        for (t, &item) in query.iter().enumerate().skip(start) {
            if out.len() >= limit {
                return;
            }
            if let Some(child) = node.child(item) {
                path.push(item);
                self.subsets_rec(child, query, t + 1, path, limit, out);
                path.pop();
            }
        }
    }

    /// Append up to `limit` stored itemsets that are **supersets** of the
    /// sorted `query` (including `query` itself when stored), in
    /// lexicographic order. An empty query enumerates everything.
    pub fn supersets_of(&self, query: &[ItemId], limit: usize, out: &mut Vec<Counted>) {
        let mut path = Vec::new();
        self.supersets_rec(0, query, 0, &mut path, limit, out);
    }

    fn supersets_rec(
        &self,
        at: u32,
        query: &[ItemId],
        qi: usize,
        path: &mut Vec<ItemId>,
        limit: usize,
        out: &mut Vec<Counted>,
    ) {
        if out.len() >= limit {
            return;
        }
        let node = &self.nodes[at as usize];
        if qi == query.len() {
            if let Some(sup) = node.support {
                if !path.is_empty() {
                    out.push(Counted {
                        itemset: Itemset::from_sorted(path.clone()),
                        support: sup,
                    });
                }
            }
        }
        for &(item, child) in &node.children {
            if out.len() >= limit {
                return;
            }
            // Items are stored ascending, so once an edge passes the next
            // needed query item, no descendant can contain it.
            if qi < query.len() && item > query[qi] {
                break;
            }
            let nqi = if qi < query.len() && item == query[qi] {
                qi + 1
            } else {
                qi
            };
            path.push(item);
            self.supersets_rec(child, query, nqi, path, limit, out);
            path.pop();
        }
    }

    /// Number of trie nodes (root included) — a size diagnostic.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// One shard of the read-optimized index: the itemsets (and rules) whose
/// first item routes here.
#[derive(Clone, Debug, Default)]
pub struct IndexShard {
    trie: Trie,
    rules: FxHashMap<Itemset, Vec<RuleEntry>>,
    /// `ranked[k-1]` = all stored `k`-itemsets, support descending then
    /// lexicographic; `ranked_all` is the same over every size.
    ranked: Vec<Vec<Counted>>,
    ranked_all: Vec<Counted>,
    num_itemsets: usize,
    num_rules: usize,
}

impl IndexShard {
    /// Exact support of `itemset`, if stored.
    pub fn support(&self, itemset: &Itemset) -> Option<u32> {
        self.trie.support(itemset.items())
    }

    /// Lexicographic subset enumeration (see [`Trie::subsets_of`]).
    pub fn subsets_of(&self, query: &Itemset, limit: usize, out: &mut Vec<Counted>) {
        self.trie.subsets_of(query.items(), limit, out);
    }

    /// Lexicographic superset enumeration (see [`Trie::supersets_of`]).
    pub fn supersets_of(&self, query: &Itemset, limit: usize, out: &mut Vec<Counted>) {
        self.trie.supersets_of(query.items(), limit, out);
    }

    /// Up to `k` rules with exactly this antecedent, confidence
    /// descending then consequent lexicographic.
    pub fn rules_for(&self, antecedent: &Itemset, k: usize) -> &[RuleEntry] {
        match self.rules.get(antecedent) {
            Some(entries) => &entries[..k.min(entries.len())],
            None => &[],
        }
    }

    /// Up to `k` stored itemsets of `size` items (`size == 0` = any
    /// size), support descending then lexicographic.
    pub fn top_k(&self, size: usize, k: usize) -> &[Counted] {
        let ranked = if size == 0 {
            &self.ranked_all
        } else {
            match self.ranked.get(size - 1) {
                Some(r) => r,
                None => return &[],
            }
        };
        &ranked[..k.min(ranked.len())]
    }

    /// Itemsets stored in this shard.
    pub fn num_itemsets(&self) -> usize {
        self.num_itemsets
    }

    /// Rules stored in this shard.
    pub fn num_rules(&self) -> usize {
        self.num_rules
    }

    /// Trie nodes in this shard (root included).
    pub fn num_trie_nodes(&self) -> usize {
        self.trie.num_nodes()
    }
}

/// Shard index for an itemset: by its first item, modulo `num_shards`.
/// The empty itemset routes to shard 0 (it is never stored; the store
/// layer special-cases queries about it).
pub fn shard_of(itemset: &Itemset, num_shards: usize) -> usize {
    itemset.first().map(|i| i.index() % num_shards).unwrap_or(0)
}

/// Build `num_shards` immutable shards from a dataset.
///
/// # Panics
/// Panics if `num_shards == 0`.
pub fn build_shards(dataset: &Dataset, num_shards: usize) -> Vec<IndexShard> {
    assert!(num_shards > 0, "need at least one shard");
    let mut shards = vec![IndexShard::default(); num_shards];

    // Insert itemsets in sorted order so trie children are appended
    // mostly in order and the ranked lists tie-break deterministically.
    for c in dataset.frequent.sorted() {
        let shard = &mut shards[shard_of(&c.itemset, num_shards)];
        shard.trie.insert(c.itemset.items(), c.support);
        shard.num_itemsets += 1;
        let k = c.itemset.len();
        if shard.ranked.len() < k {
            shard.ranked.resize(k, Vec::new());
        }
        shard.ranked[k - 1].push(c.clone());
        shard.ranked_all.push(c);
    }
    for shard in &mut shards {
        for ranked in shard
            .ranked
            .iter_mut()
            .chain(std::iter::once(&mut shard.ranked_all))
        {
            ranked.sort_by(|a, b| b.support.cmp(&a.support).then(a.itemset.cmp(&b.itemset)));
        }
    }

    for rule in &dataset.rules {
        let shard = &mut shards[shard_of(&rule.antecedent, num_shards)];
        shard
            .rules
            .entry(rule.antecedent.clone())
            .or_default()
            .push(RuleEntry {
                consequent: rule.consequent.clone(),
                support: rule.support,
                antecedent_support: rule.antecedent_support,
                consequent_support: rule.consequent_support,
            });
        shard.num_rules += 1;
    }
    for shard in &mut shards {
        for entries in shard.rules.values_mut() {
            // Within one antecedent every entry shares antecedent_support,
            // so support descending *is* confidence descending — integer
            // comparison, no float ties.
            entries.sort_by(|a, b| {
                b.support
                    .cmp(&a.support)
                    .then(a.consequent.cmp(&b.consequent))
            });
        }
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    fn dataset() -> Dataset {
        let frequent: FrequentSet = [
            (iset(&[1]), 10),
            (iset(&[2]), 8),
            (iset(&[3]), 6),
            (iset(&[1, 2]), 5),
            (iset(&[1, 3]), 4),
            (iset(&[2, 3]), 4),
            (iset(&[1, 2, 3]), 3),
        ]
        .into_iter()
        .collect();
        let rules = assoc_rules::generate(&frequent, 0.0);
        Dataset {
            frequent,
            rules,
            num_transactions: 12,
        }
    }

    fn all_shards_collect(
        shards: &[IndexShard],
        f: impl Fn(&IndexShard, &mut Vec<Counted>),
    ) -> Vec<Counted> {
        let mut out = Vec::new();
        for s in shards {
            f(s, &mut out);
        }
        out.sort_by(|a, b| a.itemset.cmp(&b.itemset));
        out
    }

    #[test]
    fn exact_support_across_shards() {
        for shards in [build_shards(&dataset(), 1), build_shards(&dataset(), 4)] {
            let q = iset(&[1, 2]);
            assert_eq!(shards[shard_of(&q, shards.len())].support(&q), Some(5));
            let missing = iset(&[2, 4]);
            assert_eq!(
                shards[shard_of(&missing, shards.len())].support(&missing),
                None
            );
        }
    }

    #[test]
    fn subset_enumeration_is_lexicographic() {
        let shards = build_shards(&dataset(), 3);
        let q = iset(&[1, 2, 3]);
        let got = all_shards_collect(&shards, |s, out| s.subsets_of(&q, usize::MAX, out));
        let names: Vec<Itemset> = got.iter().map(|c| c.itemset.clone()).collect();
        assert_eq!(
            names,
            vec![
                iset(&[1]),
                iset(&[1, 2]),
                iset(&[1, 2, 3]),
                iset(&[1, 3]),
                iset(&[2]),
                iset(&[2, 3]),
                iset(&[3]),
            ]
        );
    }

    #[test]
    fn superset_enumeration_includes_self_and_respects_limit() {
        let shards = build_shards(&dataset(), 2);
        let q = iset(&[2]);
        let got = all_shards_collect(&shards, |s, out| s.supersets_of(&q, usize::MAX, out));
        let names: Vec<Itemset> = got.iter().map(|c| c.itemset.clone()).collect();
        assert_eq!(
            names,
            vec![iset(&[1, 2]), iset(&[1, 2, 3]), iset(&[2]), iset(&[2, 3])]
        );

        // Per-shard limit: each shard returns its lexicographically first
        // `limit` hits, so the global first `limit` survive the merge.
        let mut limited = Vec::new();
        for s in &shards {
            let mut one = Vec::new();
            s.supersets_of(&q, 2, &mut one);
            assert!(one.len() <= 2);
            limited.extend(one);
        }
        limited.sort_by(|a, b| a.itemset.cmp(&b.itemset));
        limited.truncate(2);
        assert_eq!(limited[0].itemset, iset(&[1, 2]));
        assert_eq!(limited[1].itemset, iset(&[1, 2, 3]));
    }

    #[test]
    fn empty_query_supersets_enumerate_everything() {
        let shards = build_shards(&dataset(), 2);
        let q = Itemset::empty();
        let got = all_shards_collect(&shards, |s, out| s.supersets_of(&q, usize::MAX, out));
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn rules_ranked_by_confidence_then_consequent() {
        let shards = build_shards(&dataset(), 1);
        let a = iset(&[1]);
        let entries = shards[0].rules_for(&a, 10);
        assert!(!entries.is_empty());
        for w in entries.windows(2) {
            assert!(
                w[0].confidence() > w[1].confidence()
                    || (w[0].confidence() == w[1].confidence()
                        && w[0].consequent <= w[1].consequent)
            );
        }
        assert_eq!(shards[0].rules_for(&a, 1).len(), 1);
        assert!(shards[0].rules_for(&iset(&[9]), 5).is_empty());
    }

    #[test]
    fn top_k_ranked_by_support() {
        let shards = build_shards(&dataset(), 1);
        let top = shards[0].top_k(1, 2);
        assert_eq!(top[0].itemset, iset(&[1]));
        assert_eq!(top[1].itemset, iset(&[2]));
        let any = shards[0].top_k(0, 3);
        assert_eq!(any[0].support, 10);
        assert_eq!(any.len(), 3);
        assert!(shards[0].top_k(9, 5).is_empty());
    }

    #[test]
    fn shard_routing_is_stable() {
        assert_eq!(shard_of(&iset(&[5, 9]), 4), 1);
        assert_eq!(shard_of(&Itemset::empty(), 4), 0);
    }
}
