//! `assoc-serve` — concurrent query serving over mined itemsets and rules.
//!
//! The mining pipeline (Eclat and friends) produces a
//! [`mining_types::FrequentSet`] and [`assoc_rules`] turns it into ranked
//! rules; this crate is the **read path** that turns those artifacts into
//! a service:
//!
//! * [`index`] — a read-optimized prefix-trie index answering four query
//!   shapes: exact support, subset/superset enumeration, top-k rules for
//!   an antecedent ("items bought with X"), and top-k frequent
//!   k-itemsets;
//! * [`store`] — shards the index by first item behind `Arc` snapshots
//!   (readers never block, reloads swap a pointer) with a bounded LRU
//!   [`cache`] in front, instrumented with hit/miss counters;
//! * [`protocol`] — a length-prefixed binary wire format with strict
//!   decoding and explicit frame-size limits;
//! * [`server`] — a std-only thread-pool TCP server (no async runtime;
//!   the build is offline/vendored) with per-connection read timeouts and
//!   graceful shutdown;
//! * [`client`] — the matching blocking client;
//! * [`stats`] — cache/server counters exported through
//!   [`mining_types::json`], same machinery as the mining stats layer.
//!
//! The CLI front end is `eclat serve` / `eclat query`; the closed-loop
//! load generator lives in the bench crate (`servload`).

pub mod cache;
pub mod client;
pub mod index;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod store;

pub use cache::{CacheStats, QueryCache};
pub use client::Client;
pub use index::{Dataset, IndexShard, RuleEntry};
pub use metrics::ServeMetrics;
pub use protocol::{Query, Response};
pub use server::{start, ServerConfig, ServerHandle};
pub use stats::{QueryStat, ServeStats, ServerCounters};
pub use store::{Store, StoreConfig};
