//! Blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection; queries run serially over it
//! (the protocol has no request ids — responses come back in order). The
//! typed convenience methods turn a server-side [`Response::Error`] into
//! an [`io::Error`] so callers handle one error channel.

use crate::index::RuleEntry;
use crate::protocol::{read_frame, write_frame, Frame, Query, Response, MAX_RESPONSE_FRAME};
use mining_types::{Counted, Itemset};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Set the response read timeout (`None` blocks forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Issue one query and read one response.
    pub fn query(&mut self, query: &Query) -> io::Result<Response> {
        write_frame(&mut self.stream, &query.encode())?;
        match read_frame(&mut self.stream, MAX_RESPONSE_FRAME)? {
            Frame::Payload(payload) => Response::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Frame::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Frame::TooLarge(len) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response frame of {len} bytes exceeds the client limit"),
            )),
        }
    }

    fn expect_err(kind: &str, got: Response) -> io::Error {
        match got {
            Response::Error(msg) => io::Error::other(format!("server error: {msg}")),
            other => io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected {kind} response, got {other:?}"),
            ),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.query(&Query::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::expect_err("pong", other)),
        }
    }

    /// Exact support of `itemset`, if frequent.
    pub fn support(&mut self, itemset: Itemset) -> io::Result<Option<u32>> {
        match self.query(&Query::Support { itemset })? {
            Response::Support(s) => Ok(s),
            other => Err(Self::expect_err("support", other)),
        }
    }

    /// Frequent itemsets ⊆ `of` (lexicographic, at most `limit`).
    pub fn subsets(&mut self, of: Itemset, limit: u32) -> io::Result<Vec<Counted>> {
        match self.query(&Query::Subsets { of, limit })? {
            Response::Itemsets(v) => Ok(v),
            other => Err(Self::expect_err("itemsets", other)),
        }
    }

    /// Frequent itemsets ⊇ `of` (lexicographic, at most `limit`).
    pub fn supersets(&mut self, of: Itemset, limit: u32) -> io::Result<Vec<Counted>> {
        match self.query(&Query::Supersets { of, limit })? {
            Response::Itemsets(v) => Ok(v),
            other => Err(Self::expect_err("itemsets", other)),
        }
    }

    /// Top-`k` rules for an antecedent, confidence descending.
    pub fn rules_for(&mut self, antecedent: Itemset, k: u32) -> io::Result<Vec<RuleEntry>> {
        match self.query(&Query::RulesFor { antecedent, k })? {
            Response::Rules(v) => Ok(v),
            other => Err(Self::expect_err("rules", other)),
        }
    }

    /// Top-`k` itemsets of `size` items (0 = any) by support.
    pub fn top_k(&mut self, size: u32, k: u32) -> io::Result<Vec<Counted>> {
        match self.query(&Query::TopK { size, k })? {
            Response::Itemsets(v) => Ok(v),
            other => Err(Self::expect_err("itemsets", other)),
        }
    }

    /// Server statistics as a JSON document.
    pub fn stats_json(&mut self) -> io::Result<String> {
        match self.query(&Query::Stats)? {
            Response::StatsJson(j) => Ok(j),
            other => Err(Self::expect_err("stats", other)),
        }
    }

    /// Server metrics as Prometheus-style exposition text.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        match self.query(&Query::Metrics)? {
            Response::MetricsText(t) => Ok(t),
            other => Err(Self::expect_err("metrics", other)),
        }
    }
}
