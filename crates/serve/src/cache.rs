//! Bounded LRU cache over encoded query → encoded response bytes.
//!
//! The serving layer caches at the *wire* level: the key is the encoded
//! request payload and the value the encoded response payload, so one
//! cache serves both the in-process API and the TCP path, and a hit costs
//! one hash lookup plus a buffer clone. Entries live in a vector-arena
//! doubly-linked list (no per-entry allocation for the links); eviction
//! is exact LRU. Hit/miss counters are atomic so readers never contend on
//! the map lock just to bump statistics; the counters feed
//! [`crate::stats::ServeStats`] and the JSON emitters.
//!
//! A capacity of `0` disables caching entirely (every lookup is a miss
//! and nothing is stored) — the oracle property test runs every query
//! through both a caching and a disabled store and pins identical
//! answers.

use mining_types::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: u32 = u32::MAX;

struct Entry {
    key: Vec<u8>,
    value: Vec<u8>,
    prev: u32,
    next: u32,
}

struct LruInner {
    map: FxHashMap<Vec<u8>, u32>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    value_bytes: u64,
}

impl LruInner {
    fn unlink(&mut self, at: u32) {
        let (prev, next) = {
            let e = &self.entries[at as usize];
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.entries[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entries[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, at: u32) {
        self.entries[at as usize].prev = NIL;
        self.entries[at as usize].next = self.head;
        match self.head {
            NIL => self.tail = at,
            h => self.entries[h as usize].prev = at,
        }
        self.head = at;
    }
}

/// Concurrent bounded LRU cache (capacity in entries).
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<LruInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Configured capacity in entries (0 = caching disabled).
    pub capacity: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total bytes of cached response payloads.
    pub value_bytes: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the index.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl QueryCache {
    /// A cache holding at most `capacity` entries (`0` disables it).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            inner: Mutex::new(LruInner {
                map: FxHashMap::default(),
                entries: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                value_bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `key`, bumping it to most-recently-used on a hit.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.map.get(key).copied() {
            Some(at) => {
                inner.unlink(at);
                inner.push_front(at);
                let value = inner.entries[at as usize].value.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `key → value`, evicting the least-recently-used entry when
    /// full. Overwriting an existing key refreshes its recency.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(at) = inner.map.get(&key).copied() {
            inner.unlink(at);
            inner.push_front(at);
            let e = &mut inner.entries[at as usize];
            let old = std::mem::replace(&mut e.value, value);
            let new_len = inner.entries[at as usize].value.len();
            inner.value_bytes = inner.value_bytes - old.len() as u64 + new_len as u64;
            return;
        }
        if inner.map.len() >= self.capacity {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL);
            inner.unlink(victim);
            let e = &mut inner.entries[victim as usize];
            let old_key = std::mem::take(&mut e.key);
            inner.value_bytes -= inner.entries[victim as usize].value.len() as u64;
            inner.entries[victim as usize].value = Vec::new();
            inner.map.remove(&old_key);
            inner.free.push(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let at = match inner.free.pop() {
            Some(at) => {
                let e = &mut inner.entries[at as usize];
                e.key = key.clone();
                e.value = value;
                at
            }
            None => {
                let at = inner.entries.len() as u32;
                inner.entries.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                at
            }
        };
        inner.value_bytes += inner.entries[at as usize].value.len() as u64;
        inner.map.insert(key, at);
        inner.push_front(at);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every entry (used when the store reloads a new dataset);
    /// counters are preserved.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.map.clear();
        inner.entries.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
        inner.value_bytes = 0;
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, value_bytes) = {
            let inner = self.inner.lock().expect("cache lock");
            (inner.map.len() as u64, inner.value_bytes)
        };
        CacheStats {
            capacity: self.capacity as u64,
            entries,
            value_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u8) -> Vec<u8> {
        vec![n]
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = QueryCache::new(2);
        assert_eq!(c.get(&k(1)), None);
        c.put(k(1), vec![10]);
        assert_eq!(c.get(&k(1)), Some(vec![10]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let c = QueryCache::new(2);
        c.put(k(1), vec![1]);
        c.put(k(2), vec![2]);
        // touch 1 so 2 becomes LRU
        assert!(c.get(&k(1)).is_some());
        c.put(k(3), vec![3]);
        assert_eq!(c.get(&k(2)), None, "LRU entry should be evicted");
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn overwrite_refreshes_value_and_recency() {
        let c = QueryCache::new(2);
        c.put(k(1), vec![1]);
        c.put(k(2), vec![2]);
        c.put(k(1), vec![9, 9]);
        c.put(k(3), vec![3]);
        assert_eq!(c.get(&k(1)), Some(vec![9, 9]));
        assert_eq!(c.get(&k(2)), None);
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.value_bytes, 3);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = QueryCache::new(0);
        c.put(k(1), vec![1]);
        assert_eq!(c.get(&k(1)), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 0);
    }

    #[test]
    fn clear_preserves_counters() {
        let c = QueryCache::new(4);
        c.put(k(1), vec![1]);
        assert!(c.get(&k(1)).is_some());
        c.clear();
        assert_eq!(c.get(&k(1)), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let c = QueryCache::new(2);
        for n in 0..20u8 {
            c.put(k(n), vec![n]);
        }
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 18);
        assert!(c.get(&k(19)).is_some());
        assert!(c.get(&k(18)).is_some());
    }
}
