//! Serving-side statistics, exported through the workspace's JSON
//! machinery ([`mining_types::json`]) exactly like
//! [`mining_types::MiningStats`] — byte-stable key order, no serde.

use crate::cache::CacheStats;
use mining_types::json::{Arr, Obj};
use std::fmt::Write as _;

/// Bump when the serving-stats JSON layout changes.
/// v2: added the per-query-kind `queries` latency section.
/// v3: added the `reloads` hot-reload counter.
pub const SERVE_SCHEMA_VERSION: u64 = 3;

/// Counters maintained by the TCP server ([`crate::server`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (any response kind).
    pub requests: u64,
    /// Connections dropped for malformed or oversized frames.
    pub protocol_errors: u64,
    /// Connections dropped for idling past the read timeout.
    pub timeouts: u64,
    /// Worker threads in the pool.
    pub workers: u64,
}

impl ServerCounters {
    fn to_json(self) -> String {
        Obj::new()
            .u64("connections", self.connections)
            .u64("requests", self.requests)
            .u64("protocol_errors", self.protocol_errors)
            .u64("timeouts", self.timeouts)
            .u64("workers", self.workers)
            .finish()
    }
}

/// Per-query-kind latency digest, distilled from the server's
/// [`crate::metrics::ServeMetrics`] histograms (quantization error is
/// bounded at ≤ 12.5 % by the log-bucket layout).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryStat {
    /// Query kind label (`"all"` aggregates every kind).
    pub query: String,
    /// Requests of this kind answered so far.
    pub count: u64,
    /// Median service latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile service latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
}

impl QueryStat {
    fn to_json(&self) -> String {
        Obj::new()
            .str("query", &self.query)
            .u64("count", self.count)
            .f64("p50_ms", self.p50_ms)
            .f64("p90_ms", self.p90_ms)
            .f64("p99_ms", self.p99_ms)
            .finish()
    }
}

/// A point-in-time report over the store (and optionally the server).
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Current dataset generation (0 = nothing loaded yet).
    pub generation: u64,
    /// Hot reloads performed after the initial load (see
    /// [`crate::Store::reload`]).
    pub reloads: u64,
    /// Number of index shards.
    pub shards: u64,
    /// Frequent itemsets served.
    pub itemsets: u64,
    /// Rules served.
    pub rules: u64,
    /// Total prefix-trie nodes.
    pub trie_nodes: u64,
    /// Transactions in the mined database.
    pub num_transactions: u64,
    /// Query-cache counters.
    pub cache: CacheStats,
    /// TCP server counters, when serving over the wire.
    pub server: Option<ServerCounters>,
    /// Per-query-kind latency digests, when serving over the wire
    /// (filled from the server's metrics; in-process stores have none).
    pub queries: Option<Vec<QueryStat>>,
}

impl ServeStats {
    /// Compact JSON document (stable key order).
    pub fn to_json(&self) -> String {
        let cache = Obj::new()
            .u64("capacity", self.cache.capacity)
            .u64("entries", self.cache.entries)
            .u64("value_bytes", self.cache.value_bytes)
            .u64("hits", self.cache.hits)
            .u64("misses", self.cache.misses)
            .u64("insertions", self.cache.insertions)
            .u64("evictions", self.cache.evictions)
            .f64("hit_rate", self.cache.hit_rate())
            .finish();
        let server = match self.server {
            Some(s) => s.to_json(),
            None => "null".to_string(),
        };
        let queries = match &self.queries {
            Some(rows) => {
                let mut arr = Arr::new();
                for row in rows {
                    arr.raw(&row.to_json());
                }
                arr.finish()
            }
            None => "null".to_string(),
        };
        Obj::new()
            .u64("schema_version", SERVE_SCHEMA_VERSION)
            .u64("generation", self.generation)
            .u64("reloads", self.reloads)
            .u64("shards", self.shards)
            .u64("itemsets", self.itemsets)
            .u64("rules", self.rules)
            .u64("trie_nodes", self.trie_nodes)
            .u64("num_transactions", self.num_transactions)
            .raw("cache", &cache)
            .raw("server", &server)
            .raw("queries", &queries)
            .finish()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve stats: generation {} ({} reloads) / {} shards / {} itemsets / {} rules ({} trie nodes)",
            self.generation, self.reloads, self.shards, self.itemsets, self.rules, self.trie_nodes
        );
        let _ = writeln!(
            out,
            "  cache: {}/{} entries, {} hits / {} misses ({:.1}% hit rate), {} evictions",
            self.cache.entries,
            self.cache.capacity,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.evictions
        );
        if let Some(s) = self.server {
            let _ = writeln!(
                out,
                "  server: {} connections, {} requests, {} protocol errors, {} timeouts ({} workers)",
                s.connections, s.requests, s.protocol_errors, s.timeouts, s.workers
            );
        }
        if let Some(rows) = &self.queries {
            for q in rows {
                let _ = writeln!(
                    out,
                    "  {:<10} {:>8} reqs  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms",
                    q.query, q.count, q.p50_ms, q.p90_ms, q.p99_ms
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeStats {
        ServeStats {
            generation: 2,
            reloads: 1,
            shards: 4,
            itemsets: 100,
            rules: 30,
            trie_nodes: 150,
            num_transactions: 1000,
            cache: CacheStats {
                capacity: 64,
                entries: 10,
                value_bytes: 500,
                hits: 9,
                misses: 1,
                insertions: 1,
                evictions: 0,
            },
            server: None,
            queries: None,
        }
    }

    #[test]
    fn json_shape_without_server() {
        let json = sample().to_json();
        assert!(
            json.starts_with("{\"schema_version\":3,\"generation\":2,\"reloads\":1,"),
            "{json}"
        );
        assert!(json.contains("\"server\":null"), "{json}");
        assert!(json.contains("\"queries\":null"), "{json}");
        assert!(json.contains("\"hit_rate\":0.9"), "{json}");
        let keys = mining_types::json::collect_keys(&json);
        assert!(keys.contains(&"cache".to_string()));
        assert!(keys.contains(&"evictions".to_string()));
    }

    #[test]
    fn json_and_render_with_server() {
        let mut s = sample();
        s.server = Some(ServerCounters {
            connections: 3,
            requests: 40,
            protocol_errors: 1,
            timeouts: 0,
            workers: 8,
        });
        s.queries = Some(vec![QueryStat {
            query: "all".to_string(),
            count: 40,
            p50_ms: 0.5,
            p90_ms: 1.25,
            p99_ms: 4.0,
        }]);
        let json = s.to_json();
        assert!(json.contains("\"server\":{\"connections\":3"), "{json}");
        assert!(
            json.contains("\"queries\":[{\"query\":\"all\",\"count\":40,\"p50_ms\":0.5"),
            "{json}"
        );
        let human = s.render();
        assert!(human.contains("generation 2"), "{human}");
        assert!(human.contains("90.0% hit rate"), "{human}");
        assert!(human.contains("8 workers"), "{human}");
        assert!(human.contains("p99 4.000 ms"), "{human}");
    }
}
