//! The sharded, lock-free-read store and in-process query engine.
//!
//! A [`Store`] holds an immutable [`ShardTable`] behind one
//! `RwLock<Arc<…>>`: readers hold the lock only long enough to clone the
//! `Arc` (no allocation, no contention with other readers), then run the
//! whole query against that snapshot. [`Store::load`] builds a complete
//! replacement table **off to the side** and swaps the pointer — reloads
//! never block readers, and a reader that started on the old table
//! finishes on the old table (its `Arc` keeps the data alive). Because the
//! swap replaces the whole table at once, even multi-shard queries always
//! see one consistent generation.
//!
//! Shard routing is by an itemset's first item ([`shard_of`]): exact
//! support and rule lookups touch exactly one shard, subset enumeration
//! touches the shards of the query's items, and superset/top-k queries
//! fan out across all shards and merge (each shard's partial answer is
//! bounded by the query limit, so the merge is cheap).
//!
//! Answers are cached in a bounded LRU ([`QueryCache`]) keyed by
//! `(generation, encoded query)` — a reload implicitly invalidates every
//! cached answer even if an in-flight reader races the [`QueryCache::clear`].

use crate::cache::{CacheStats, QueryCache};
use crate::index::{build_shards, shard_of, Dataset, IndexShard};
use crate::protocol::{Query, Response, MAX_RESULT_LIMIT};
use crate::stats::{ServeStats, ServerCounters};
use mining_types::{Counted, Itemset};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Store construction knobs.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of index shards (first-item routing).
    pub shards: usize,
    /// Query-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 16,
            cache_entries: 4096,
        }
    }
}

/// One immutable generation of the index.
#[derive(Debug, Default)]
pub struct ShardTable {
    shards: Vec<IndexShard>,
    num_transactions: u32,
    generation: u64,
}

impl ShardTable {
    /// Total itemsets across shards.
    pub fn num_itemsets(&self) -> usize {
        self.shards.iter().map(|s| s.num_itemsets()).sum()
    }

    /// Total rules across shards.
    pub fn num_rules(&self) -> usize {
        self.shards.iter().map(|s| s.num_rules()).sum()
    }

    /// Total trie nodes across shards (roots included).
    pub fn num_trie_nodes(&self) -> usize {
        self.shards.iter().map(|s| s.num_trie_nodes()).sum()
    }

    /// Monotonic reload counter (starts at 1 for the first load).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Transactions in the mined database this table was built from.
    pub fn num_transactions(&self) -> u32 {
        self.num_transactions
    }
}

/// The concurrent query-serving store.
pub struct Store {
    table: RwLock<Arc<ShardTable>>,
    cache: QueryCache,
    num_shards: usize,
    generations: AtomicU64,
    reloads: AtomicU64,
}

impl Store {
    /// An empty store (every query answers "nothing") — load a dataset
    /// with [`Store::load`].
    pub fn new(cfg: &StoreConfig) -> Store {
        assert!(cfg.shards > 0, "need at least one shard");
        let empty = ShardTable {
            shards: vec![IndexShard::default(); cfg.shards],
            ..ShardTable::default()
        };
        Store {
            table: RwLock::new(Arc::new(empty)),
            cache: QueryCache::new(cfg.cache_entries),
            num_shards: cfg.shards,
            generations: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
        }
    }

    /// Build a store pre-loaded with `dataset`.
    pub fn with_dataset(dataset: &Dataset, cfg: &StoreConfig) -> Store {
        let store = Store::new(cfg);
        store.load(dataset);
        store
    }

    /// Replace the served dataset. The new shard table is built while old
    /// readers keep serving; only the final pointer swap takes the write
    /// lock. Returns the new generation.
    pub fn load(&self, dataset: &Dataset) -> u64 {
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1;
        let next = Arc::new(ShardTable {
            shards: build_shards(dataset, self.num_shards),
            num_transactions: dataset.num_transactions,
            generation,
        });
        *self.table.write().expect("store lock") = next;
        // Stale inserts from racing readers are keyed by the old
        // generation, so clearing here is an optimization, not required
        // for correctness.
        self.cache.clear();
        generation
    }

    /// [`Store::load`], counted as a *hot reload*: the serve CLI's
    /// snapshot watcher calls this for every swap after the initial
    /// load, so `reloads` in the stats report says how many times the
    /// served dataset changed underneath live traffic.
    pub fn reload(&self, dataset: &Dataset) -> u64 {
        let generation = self.load(dataset);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        generation
    }

    /// Hot reloads performed so far (initial load excluded).
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Snapshot the current table (readers run entirely on the snapshot).
    pub fn snapshot(&self) -> Arc<ShardTable> {
        self.table.read().expect("store lock").clone()
    }

    /// Answer a query, consulting the LRU cache for the cacheable kinds.
    pub fn execute(&self, query: &Query) -> Response {
        match query {
            Query::Ping => return Response::Pong,
            Query::Stats => return Response::StatsJson(self.serve_stats(None).to_json()),
            // Request metrics live with the TCP server, which intercepts
            // this query before it reaches the store.
            Query::Metrics => {
                return Response::Error("metrics are only served over the wire".to_string())
            }
            _ => {}
        }
        let table = self.snapshot();
        let mut key = table.generation.to_le_bytes().to_vec();
        key.extend_from_slice(&query.encode());
        if let Some(hit) = self.cache.get(&key) {
            return Response::decode(&hit).expect("cache holds only encoded responses");
        }
        let response = Self::answer(&table, query);
        self.cache.put(key, response.encode());
        response
    }

    fn answer(table: &ShardTable, query: &Query) -> Response {
        match query {
            Query::Ping => Response::Pong,
            Query::Stats | Query::Metrics => {
                Response::Error("stats and metrics handled above".to_string())
            }
            Query::Support { itemset } => {
                if itemset.is_empty() {
                    return Response::Support(None);
                }
                let shard = &table.shards[shard_of(itemset, table.shards.len())];
                Response::Support(shard.support(itemset))
            }
            Query::Subsets { of, limit } => {
                let limit = clamp_limit(*limit);
                let mut out = Vec::new();
                for si in subset_shards(of, table.shards.len()) {
                    // Each shard gets a full `limit` of its own: the global
                    // first-`limit` answers are a subset of the union of the
                    // per-shard first-`limit` answers, but not of a shared
                    // buffer that an earlier shard may already have filled.
                    let mut part = Vec::new();
                    table.shards[si].subsets_of(of, limit, &mut part);
                    out.append(&mut part);
                }
                merge_lexicographic(&mut out, limit);
                Response::Itemsets(out)
            }
            Query::Supersets { of, limit } => {
                let limit = clamp_limit(*limit);
                let mut out = Vec::new();
                for shard in &table.shards {
                    let mut part = Vec::new();
                    shard.supersets_of(of, limit, &mut part);
                    out.append(&mut part);
                }
                merge_lexicographic(&mut out, limit);
                Response::Itemsets(out)
            }
            Query::RulesFor { antecedent, k } => {
                let k = clamp_limit(*k);
                if antecedent.is_empty() {
                    return Response::Rules(Vec::new());
                }
                let shard = &table.shards[shard_of(antecedent, table.shards.len())];
                Response::Rules(shard.rules_for(antecedent, k).to_vec())
            }
            Query::TopK { size, k } => {
                let k = clamp_limit(*k);
                let mut out = Vec::new();
                for shard in &table.shards {
                    out.extend_from_slice(shard.top_k(*size as usize, k));
                }
                out.sort_by(|a, b| b.support.cmp(&a.support).then(a.itemset.cmp(&b.itemset)));
                out.truncate(k);
                Response::Itemsets(out)
            }
        }
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Full statistics report, optionally including the TCP server's
    /// counters (the server passes its own; in-process callers pass
    /// `None`).
    pub fn serve_stats(&self, server: Option<ServerCounters>) -> ServeStats {
        let table = self.snapshot();
        ServeStats {
            generation: table.generation(),
            reloads: self.reloads(),
            shards: table.shards.len() as u64,
            itemsets: table.num_itemsets() as u64,
            rules: table.num_rules() as u64,
            trie_nodes: table.num_trie_nodes() as u64,
            num_transactions: table.num_transactions() as u64,
            cache: self.cache_stats(),
            server,
            queries: None,
        }
    }
}

fn clamp_limit(limit: u32) -> usize {
    limit.min(MAX_RESULT_LIMIT) as usize
}

/// Shards that can hold a subset of `of`: a subset's first item is one of
/// `of`'s items.
fn subset_shards(of: &Itemset, num_shards: usize) -> Vec<usize> {
    let mut shards: Vec<usize> = of.items().iter().map(|i| i.index() % num_shards).collect();
    shards.sort_unstable();
    shards.dedup();
    shards
}

/// Per-shard partial answers are each lexicographically sorted and
/// bounded by `limit`; the global answer is the first `limit` of their
/// merged union.
fn merge_lexicographic(out: &mut Vec<Counted>, limit: usize) {
    out.sort_by(|a, b| a.itemset.cmp(&b.itemset));
    out.truncate(limit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mining_types::FrequentSet;

    fn iset(raw: &[u32]) -> Itemset {
        Itemset::of(raw)
    }

    fn dataset() -> Dataset {
        let frequent: FrequentSet = [
            (iset(&[1]), 10),
            (iset(&[2]), 8),
            (iset(&[3]), 6),
            (iset(&[1, 2]), 5),
            (iset(&[1, 3]), 4),
            (iset(&[2, 3]), 4),
            (iset(&[1, 2, 3]), 3),
        ]
        .into_iter()
        .collect();
        let rules = assoc_rules::generate(&frequent, 0.0);
        Dataset {
            frequent,
            rules,
            num_transactions: 12,
        }
    }

    #[test]
    fn empty_store_answers_nothing() {
        let store = Store::new(&StoreConfig::default());
        assert_eq!(
            store.execute(&Query::Support {
                itemset: iset(&[1])
            }),
            Response::Support(None)
        );
        assert_eq!(
            store.execute(&Query::TopK { size: 0, k: 5 }),
            Response::Itemsets(Vec::new())
        );
    }

    #[test]
    fn queries_and_cache_agree() {
        let cached = Store::with_dataset(&dataset(), &StoreConfig::default());
        let uncached = Store::with_dataset(
            &dataset(),
            &StoreConfig {
                cache_entries: 0,
                ..Default::default()
            },
        );
        let queries = [
            Query::Support {
                itemset: iset(&[1, 2]),
            },
            Query::Subsets {
                of: iset(&[1, 2, 3]),
                limit: 100,
            },
            Query::Supersets {
                of: iset(&[2]),
                limit: 100,
            },
            Query::RulesFor {
                antecedent: iset(&[1]),
                k: 10,
            },
            Query::TopK { size: 2, k: 2 },
        ];
        for q in &queries {
            let cold = cached.execute(q);
            let warm = cached.execute(q);
            let none = uncached.execute(q);
            assert_eq!(cold, warm, "{q:?}");
            assert_eq!(cold, none, "{q:?}");
        }
        let cs = cached.cache_stats();
        assert_eq!(cs.hits, queries.len() as u64);
        assert_eq!(cs.misses, queries.len() as u64);
        assert_eq!(uncached.cache_stats().hits, 0);
    }

    #[test]
    fn reload_bumps_generation_and_invalidates() {
        let store = Store::with_dataset(&dataset(), &StoreConfig::default());
        let q = Query::Support {
            itemset: iset(&[4]),
        };
        assert_eq!(store.execute(&q), Response::Support(None));

        let mut bigger = dataset();
        bigger.frequent.insert(iset(&[4]), 7);
        let generation = store.load(&bigger);
        assert_eq!(generation, 2);
        assert_eq!(store.snapshot().generation(), 2);
        assert_eq!(store.execute(&q), Response::Support(Some(7)));
    }

    #[test]
    fn reload_counter_tracks_hot_swaps_only() {
        let store = Store::with_dataset(&dataset(), &StoreConfig::default());
        assert_eq!(store.reloads(), 0, "the initial load is not a reload");
        let generation = store.reload(&dataset());
        assert_eq!(generation, 2);
        assert_eq!(store.reloads(), 1);
        store.load(&dataset()); // plain load does not count
        assert_eq!(store.reloads(), 1);
        assert_eq!(store.serve_stats(None).reloads, 1);
    }

    #[test]
    fn old_snapshot_survives_reload() {
        let store = Store::with_dataset(&dataset(), &StoreConfig::default());
        let old = store.snapshot();
        store.load(&Dataset::default());
        assert_eq!(store.snapshot().num_itemsets(), 0);
        // The pre-reload reader still sees the full old generation.
        assert_eq!(old.num_itemsets(), 7);
        assert_eq!(old.generation(), 1);
    }

    /// Reload race: readers hammer the (cached) store while another
    /// thread keeps swapping between two generations whose supports are
    /// disjoint ranges. Every answer — cache hit or miss, single- or
    /// multi-shard — must come from *exactly one* generation: all
    /// supports below 100, or all at least 100, never a mix and never a
    /// stale generation resurrected through the LRU after a reload.
    #[test]
    fn reload_race_serves_exactly_one_generation() {
        use std::sync::atomic::AtomicBool;

        let low = dataset(); // supports 3..=10
        let mut high = dataset(); // same itemsets, supports +100
        high.frequent = low
            .frequent
            .iter()
            .map(|(itemset, support)| (itemset.clone(), support + 100))
            .collect();
        high.rules = assoc_rules::generate(&high.frequent, 0.0);

        // Small cache + few shards keeps eviction and fan-out in play.
        let store = Arc::new(Store::with_dataset(
            &low,
            &StoreConfig {
                shards: 4,
                cache_entries: 8,
            },
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let all = Query::Supersets {
                        of: Itemset::empty(),
                        limit: 100,
                    };
                    let one = Query::Support {
                        itemset: iset(&[1, 2]),
                    };
                    while !stop.load(Ordering::Relaxed) {
                        match store.execute(&all) {
                            Response::Itemsets(v) => {
                                assert_eq!(v.len(), 7, "whole table in every generation");
                                let highs = v.iter().filter(|c| c.support >= 100).count();
                                assert!(
                                    highs == 0 || highs == v.len(),
                                    "mixed-generation answer: {v:?}"
                                );
                            }
                            other => panic!("{other:?}"),
                        }
                        match store.execute(&one) {
                            Response::Support(Some(s)) => {
                                assert!(s == 5 || s == 105, "stale or torn support {s}")
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            store.load(&high);
            store.load(&low);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // After the dust settles the final generation (low) answers alone.
        assert_eq!(
            store.execute(&Query::Support {
                itemset: iset(&[1, 2])
            }),
            Response::Support(Some(5))
        );
    }

    #[test]
    fn limits_are_clamped_and_zero_means_empty() {
        let store = Store::with_dataset(&dataset(), &StoreConfig::default());
        match store.execute(&Query::Supersets {
            of: Itemset::empty(),
            limit: 0,
        }) {
            Response::Itemsets(v) => assert!(v.is_empty()),
            other => panic!("{other:?}"),
        }
        match store.execute(&Query::Supersets {
            of: Itemset::empty(),
            limit: u32::MAX,
        }) {
            Response::Itemsets(v) => assert_eq!(v.len(), 7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_report_counts() {
        let store = Store::with_dataset(&dataset(), &StoreConfig::default());
        let stats = store.serve_stats(None);
        assert_eq!(stats.itemsets, 7);
        assert!(stats.rules > 0);
        assert_eq!(stats.num_transactions, 12);
        let json = stats.to_json();
        assert!(json.contains("\"itemsets\":7"), "{json}");
        match store.execute(&Query::Stats) {
            Response::StatsJson(j) => assert!(j.contains("\"cache\"")),
            other => panic!("{other:?}"),
        }
    }
}
