//! Minsup boundary audit (§5.3 short-circuit): for **every** `TidSet`
//! representation, a candidate whose support is *exactly* `minsup` must
//! survive `join_bounded`, and one at `minsup − 1` must be pruned — the
//! trait contract is `None` **iff** `support < minsup`, with no off-by-one
//! in any kernel's early-bail arithmetic.

use mining_types::OpMeter;
use tidlist::diffset::DiffSet;
use tidlist::{AdaptiveSet, BitmapSet, ChunkedList, GallopList, TidList, TidSet};

/// Exercise one representation's pairwise + fold bounded joins around the
/// exact threshold. `s` is the true support of `a ⋈ b`; `s_fold` of
/// `a ⋈ b ⋈ c`.
fn check_boundary<S: TidSet>(label: &str, a: &S, b: &S, c: &S, s: u32, s_fold: u32) {
    assert_eq!(a.join(b).support(), s, "{label}: setup");
    let mut m = OpMeter::new();
    // support == minsup: must survive, with the full (untruncated) result.
    let at = a.join_bounded(b, s);
    assert_eq!(
        at.as_ref().map(TidSet::support),
        Some(s),
        "{label}: candidate at exactly minsup={s} must survive"
    );
    assert_eq!(
        a.join_bounded_metered(b, s, &mut m).map(|j| j.support()),
        Some(s),
        "{label}: metered bounded join at minsup={s}"
    );
    // support == minsup − 1 (i.e. minsup = s + 1): must be pruned.
    assert!(
        a.join_bounded(b, s + 1).is_none(),
        "{label}: support {s} must be pruned at minsup={}",
        s + 1
    );
    assert!(
        a.join_bounded_metered(b, s + 1, &mut m).is_none(),
        "{label}: metered prune at minsup={}",
        s + 1
    );
    // A generous threshold never changes the surviving result's support.
    if s > 0 {
        assert_eq!(
            a.join_bounded(b, s - 1).map(|j| j.support()),
            Some(s),
            "{label}: slack minsup={} must not alter the result",
            s - 1
        );
    }
    // Same contract through the look-ahead fold (`fold_join`).
    assert_eq!(
        a.fold_join(&[b, c]).support(),
        s_fold,
        "{label}: fold setup"
    );
    assert_eq!(
        a.fold_join_bounded(&[b, c], s_fold).map(|j| j.support()),
        Some(s_fold),
        "{label}: fold candidate at exactly minsup={s_fold} must survive"
    );
    assert!(
        a.fold_join_bounded(&[b, c], s_fold + 1).is_none(),
        "{label}: fold support {s_fold} must be pruned at minsup={}",
        s_fold + 1
    );
    assert_eq!(
        a.fold_join_bounded_metered(&[b, c], s_fold, &mut m)
            .map(|j| j.support()),
        Some(s_fold),
        "{label}: metered fold at minsup={s_fold}"
    );
}

#[test]
fn every_representation_honours_the_exact_threshold() {
    // Class prefix P covers 0..100; members are sub-ranges of it.
    // A∩B = 30..60 (support 30); A∩B∩C = 30..55 (support 25).
    let tp = TidList::from_unsorted(0..100u32);
    let ta = TidList::from_unsorted(0..60u32);
    let tb = TidList::from_unsorted(30..90u32);
    let tc = TidList::from_unsorted(10..55u32);
    let (s, s_fold) = (30, 25);

    check_boundary("tidlist", &ta, &tb, &tc, s, s_fold);
    check_boundary(
        "gallop",
        &GallopList(ta.clone()),
        &GallopList(tb.clone()),
        &GallopList(tc.clone()),
        s,
        s_fold,
    );
    check_boundary(
        "chunked",
        &ChunkedList(ta.clone()),
        &ChunkedList(tb.clone()),
        &ChunkedList(tc.clone()),
        s,
        s_fold,
    );
    check_boundary(
        "diffset",
        &DiffSet::from_tidlists(&tp, &ta),
        &DiffSet::from_tidlists(&tp, &tb),
        &DiffSet::from_tidlists(&tp, &tc),
        s,
        s_fold,
    );
    // Adaptive at every switch point reachable in two joins: pure-diffset
    // (fuel 0), switch-on-second-join (fuel 1), never-switch (fuel 9).
    for fuel in [0, 1, 9] {
        check_boundary(
            &format!("adaptive(fuel={fuel})"),
            &AdaptiveSet::with_fuel(ta.clone(), fuel),
            &AdaptiveSet::with_fuel(tb.clone(), fuel),
            &AdaptiveSet::with_fuel(tc.clone(), fuel),
            s,
            s_fold,
        );
    }
    let (base, words) = BitmapSet::frame_of([&ta, &tb, &tc]);
    check_boundary(
        "bitmap",
        &BitmapSet::from_tidlist(&ta, base, words),
        &BitmapSet::from_tidlist(&tb, base, words),
        &BitmapSet::from_tidlist(&tc, base, words),
        s,
        s_fold,
    );
}

/// The same audit on a *skewed* pair, so the galloping / chunked-gallop
/// code paths (not just the merge) face the exact threshold: a short list
/// against a long one where the intersection support is tiny and known.
#[test]
fn skewed_operands_honour_the_exact_threshold() {
    // |long| = 4096, |short| = 3, intersection = {128, 2048} (support 2).
    let long = TidList::from_unsorted(0..4096u32);
    let short = TidList::from_unsorted([128u32, 2048, 5000]);
    for (label, a, b) in [
        (
            "gallop-skew",
            GallopList(short.clone()).join_bounded(&GallopList(long.clone()), 2),
            GallopList(short.clone()).join_bounded(&GallopList(long.clone()), 3),
        ),
        (
            "chunked-skew",
            ChunkedList(short.clone())
                .join_bounded(&ChunkedList(long.clone()), 2)
                .map(|j| GallopList(j.0)),
            ChunkedList(short.clone())
                .join_bounded(&ChunkedList(long.clone()), 3)
                .map(|j| GallopList(j.0)),
        ),
    ] {
        assert_eq!(
            a.map(|j| j.support()),
            Some(2),
            "{label}: support-2 candidate at minsup=2 must survive"
        );
        assert!(b.is_none(), "{label}: support 2 must be pruned at minsup=3");
    }
}
