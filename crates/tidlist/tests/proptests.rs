//! Property-based tests for the tid-list kernels: every kernel must agree
//! with a naive `BTreeSet` model, and the short-circuit must be *exactly*
//! a frequency test, never changing which itemsets qualify.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tidlist::diffset::{reconstruct_tidlist, DiffSet};
use tidlist::{IntersectOutcome, TidList};

fn tidset() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..500, 0..120)
}

fn model(v: &[u32]) -> BTreeSet<u32> {
    v.iter().copied().collect()
}

fn to_raw(t: &TidList) -> Vec<u32> {
    t.tids().iter().map(|t| t.0).collect()
}

proptest! {
    #[test]
    fn from_unsorted_sorts_dedups(v in tidset()) {
        let t = TidList::from_unsorted(v.iter().copied());
        let m: Vec<u32> = model(&v).into_iter().collect();
        prop_assert_eq!(to_raw(&t), m);
    }

    #[test]
    fn intersect_matches_set_model(a in tidset(), b in tidset()) {
        let ta = TidList::from_unsorted(a.iter().copied());
        let tb = TidList::from_unsorted(b.iter().copied());
        let expect: Vec<u32> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(to_raw(&ta.intersect(&tb)), expect.clone());
        prop_assert_eq!(to_raw(&ta.gallop_intersect(&tb)), expect.clone());
        prop_assert_eq!(to_raw(&ta.intersect_adaptive(&tb)), expect.clone());
        prop_assert_eq!(ta.intersect_count(&tb) as usize, expect.len());
        // commutativity
        prop_assert_eq!(ta.intersect(&tb), tb.intersect(&ta));
    }

    #[test]
    fn union_difference_match_set_model(a in tidset(), b in tidset()) {
        let ta = TidList::from_unsorted(a.iter().copied());
        let tb = TidList::from_unsorted(b.iter().copied());
        let u: Vec<u32> = model(&a).union(&model(&b)).copied().collect();
        let d: Vec<u32> = model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(to_raw(&ta.union(&tb)), u);
        prop_assert_eq!(to_raw(&ta.difference(&tb)), d);
    }

    #[test]
    fn bounded_is_exactly_a_frequency_filter(a in tidset(), b in tidset(), minsup in 1u32..40) {
        let ta = TidList::from_unsorted(a.iter().copied());
        let tb = TidList::from_unsorted(b.iter().copied());
        let full = ta.intersect(&tb);
        match ta.intersect_bounded(&tb, minsup) {
            IntersectOutcome::Frequent(list) => {
                prop_assert!(full.support() >= minsup);
                prop_assert_eq!(list, full);
            }
            IntersectOutcome::Infrequent => {
                prop_assert!(full.support() < minsup);
            }
        }
    }

    #[test]
    fn split_partitions(a in tidset(), bound in 0u32..600) {
        let ta = TidList::from_unsorted(a.iter().copied());
        let (lo, hi) = ta.split_at_tid(mining_types::Tid(bound));
        prop_assert!(lo.tids().iter().all(|t| t.0 < bound));
        prop_assert!(hi.tids().iter().all(|t| t.0 >= bound));
        let mut merged = lo.clone();
        merged.append_partial(&hi);
        prop_assert_eq!(merged, ta);
    }

    #[test]
    fn diffset_join_agrees_with_tidlist_join(
        pa in tidset(), pb in tidset(), pc in tidset()
    ) {
        // Force t(B), t(C) ⊆ t(A) so the diffset precondition (same prefix)
        // holds: treat A as the common prefix.
        let ta = TidList::from_unsorted(pa.iter().copied());
        let tb = ta.intersect(&TidList::from_unsorted(pb.iter().copied()));
        let tc = ta.intersect(&TidList::from_unsorted(pc.iter().copied()));
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        prop_assert_eq!(dab.support, tb.support());
        let dabc = dab.join(&dac);
        let tab = ta.intersect(&tb);
        let tabc = tab.intersect(&tc);
        prop_assert_eq!(dabc.support, tabc.support());
        prop_assert_eq!(reconstruct_tidlist(&tab, &dabc), tabc.clone());
        // bounded join agrees wherever it returns Some
        for minsup in [1u32, 2, 5, 20] {
            match dab.join_bounded(&dac, minsup) {
                Some(d) => {
                    prop_assert!(tabc.support() >= minsup);
                    prop_assert_eq!(d.support, tabc.support());
                }
                None => prop_assert!(tabc.support() < minsup),
            }
        }
    }

    #[test]
    fn metered_kernels_report_positive_work(a in tidset(), b in tidset()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let ta = TidList::from_unsorted(a.iter().copied());
        let tb = TidList::from_unsorted(b.iter().copied());
        let mut m = mining_types::OpMeter::new();
        let r1 = ta.intersect_metered(&tb, &mut m);
        prop_assert_eq!(r1, ta.intersect(&tb));
        prop_assert!(m.tid_cmp >= 1);
        prop_assert!(m.tid_cmp as usize <= ta.len() + tb.len());
    }
}
