//! Kernel-equivalence properties on *adversarial* inputs: galloping,
//! chunked (8-lane), and bitmap joins must agree element-for-element with
//! the two-pointer merge, and every `*_bounded` variant must be exactly a
//! frequency filter — including on the shapes that historically break
//! search-based kernels (empty operands, single elements, all-equal runs,
//! disjoint tails, and tids at `u32::MAX` where `hi = base + stride + 1`
//! style bounds can overflow or clamp wrong).

use mining_types::{OpMeter, Tid};
use proptest::prelude::*;
use tidlist::{BitmapSet, ChunkedList, GallopList, IntersectOutcome, TidList, TidSet};

/// One tid-list drawn from a menu of adversarial shapes.
fn adversarial() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        // Empty.
        Just(Vec::new()),
        // Single element, anywhere in the tid space (incl. u32::MAX).
        prop_oneof![
            Just(0u32),
            Just(1),
            Just(63),
            Just(64),
            Just(u32::MAX - 1),
            Just(u32::MAX)
        ]
        .prop_map(|x| vec![x]),
        // All-equal run (dedups to a single element).
        (any::<u32>(), 1usize..64).prop_map(|(x, n)| vec![x; n]),
        // Dense low range: many repeats and adjacencies.
        proptest::collection::vec(0u32..96, 0..160),
        // Sparse wide range, biased to word boundaries and the top of
        // the tid space.
        proptest::collection::vec(
            prop_oneof![
                0u32..1024,
                (0u32..64).prop_map(|k| k * 64),
                (0u32..200).prop_map(|k| u32::MAX - k),
            ],
            0..96
        ),
        // Long skew: one long ramp (gallop's favourite prey).
        (0u32..512, 1u32..8, 0usize..256).prop_map(|(start, step, n)| (0..n)
            .map(|i| start + i as u32 * step)
            .collect::<Vec<u32>>()),
    ]
}

/// A pair of lists; sometimes with a shared prefix and *disjoint tails*
/// (the shape where a final-block galloping bound that overshoots keeps
/// probing past its operand's real end).
fn adversarial_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    prop_oneof![
        (adversarial(), adversarial()).prop_map(|(a, b)| (a, b)),
        (adversarial(), 0usize..64, 0usize..64).prop_map(|(shared, n_a, n_b)| {
            let mut a = shared.clone();
            let mut b = shared;
            a.extend((0..n_a as u32).map(|i| 2_000_000 + 2 * i));
            b.extend((0..n_b as u32).map(|i| 2_000_001 + 2 * i));
            (a, b)
        }),
    ]
}

fn raw(t: &TidList) -> Vec<u32> {
    t.tids().iter().map(|t| t.0).collect()
}

proptest! {
    /// Satellite 1: `gallop_intersect` and both chunked kernels are
    /// drop-in replacements for the two-pointer merge.
    #[test]
    fn search_kernels_match_two_pointer(ab in adversarial_pair()) {
        let (a, b) = ab;
        let ta = TidList::from_unsorted(a.iter().copied());
        let tb = TidList::from_unsorted(b.iter().copied());
        let expect = raw(&ta.intersect(&tb));
        prop_assert_eq!(raw(&ta.gallop_intersect(&tb)), expect.clone());
        prop_assert_eq!(raw(&tb.gallop_intersect(&ta)), expect.clone());
        prop_assert_eq!(raw(&ta.intersect_chunked(&tb)), expect.clone());
        prop_assert_eq!(raw(&tb.intersect_chunked(&ta)), expect.clone());
        prop_assert_eq!(raw(&ta.gallop_intersect_chunked(&tb)), expect.clone());
        prop_assert_eq!(raw(&ta.intersect_chunked_adaptive(&tb)), expect.clone());
        // Metered variants compute the same list.
        let mut m = OpMeter::new();
        prop_assert_eq!(raw(&ta.intersect_chunked_metered(&tb, &mut m)), expect.clone());
        prop_assert_eq!(raw(&ta.gallop_intersect_chunked_metered(&tb, &mut m)), expect);
    }

    /// Every bounded kernel is *exactly* a frequency filter: `Frequent`
    /// iff the full intersection meets `minsup`, with identical contents.
    #[test]
    fn bounded_kernels_are_frequency_filters(
        ab in adversarial_pair(),
        minsup in 1u32..48,
    ) {
        let (a, b) = ab;
        let ta = TidList::from_unsorted(a.iter().copied());
        let tb = TidList::from_unsorted(b.iter().copied());
        let full = ta.intersect(&tb);
        for outcome in [
            ta.intersect_bounded(&tb, minsup),
            ta.intersect_chunked_bounded(&tb, minsup),
            ta.intersect_chunked_bounded_metered(&tb, minsup, &mut OpMeter::new()),
        ] {
            match outcome {
                IntersectOutcome::Frequent(list) => {
                    prop_assert!(full.support() >= minsup);
                    prop_assert_eq!(&list, &full);
                }
                IntersectOutcome::Infrequent => prop_assert!(full.support() < minsup),
            }
        }
    }

    /// The `TidSet` wrappers (gallop / chunked) honour the same contract
    /// through the trait surface used by the mining kernel.
    #[test]
    fn tidset_wrappers_agree(ab in adversarial_pair(), minsup in 1u32..48) {
        let (a, b) = ab;
        let ta = TidList::from_unsorted(a.iter().copied());
        let tb = TidList::from_unsorted(b.iter().copied());
        let full = ta.intersect(&tb);
        let g = GallopList(ta.clone()).join(&GallopList(tb.clone()));
        prop_assert_eq!(&g.0, &full);
        let c = ChunkedList(ta.clone()).join(&ChunkedList(tb.clone()));
        prop_assert_eq!(&c.0, &full);
        match ChunkedList(ta.clone()).join_bounded(&ChunkedList(tb.clone()), minsup) {
            Some(j) => {
                prop_assert!(full.support() >= minsup);
                prop_assert_eq!(&j.0, &full);
            }
            None => prop_assert!(full.support() < minsup),
        }
    }

    /// Bitmap joins agree with the merge on any shared frame, and the
    /// tid-list round-trip is lossless — including at `u32::MAX` when the
    /// lists stay within one frame.
    #[test]
    fn bitmap_join_matches_merge(
        a in proptest::collection::vec(0u32..2048, 0..128),
        b in proptest::collection::vec(0u32..2048, 0..128),
        offset in prop_oneof![Just(0u32), Just(64), Just(4096), Just(u32::MAX - 2048)],
        minsup in 1u32..48,
    ) {
        let shift = |v: &[u32]| TidList::from_unsorted(v.iter().map(|&x| x + offset));
        let (ta, tb) = (shift(&a), shift(&b));
        let (base, words) = BitmapSet::frame_of([&ta, &tb]);
        let (ba, bb) = (
            BitmapSet::from_tidlist(&ta, base, words),
            BitmapSet::from_tidlist(&tb, base, words),
        );
        prop_assert_eq!(ba.to_tidlist(), ta.clone());
        let full = ta.intersect(&tb);
        prop_assert_eq!(ba.join(&bb).to_tidlist(), full.clone());
        match ba.join_bounded(&bb, minsup) {
            Some(j) => {
                prop_assert!(full.support() >= minsup);
                prop_assert_eq!(j.to_tidlist(), full);
            }
            None => prop_assert!(full.support() < minsup),
        }
    }

    /// Associativity-of-agreement across a 3-way chain: folding joins in
    /// either kernel yields the same set (the shape `fold_join` relies on).
    #[test]
    fn three_way_chain_agrees(
        a in adversarial(), b in adversarial(), c in adversarial(),
    ) {
        let (ta, tb, tc) = (
            TidList::from_unsorted(a.iter().copied()),
            TidList::from_unsorted(b.iter().copied()),
            TidList::from_unsorted(c.iter().copied()),
        );
        let merge = ta.intersect(&tb).intersect(&tc);
        prop_assert_eq!(ta.gallop_intersect(&tb).gallop_intersect(&tc), merge.clone());
        prop_assert_eq!(ta.intersect_chunked(&tb).intersect_chunked(&tc), merge);
    }
}

/// The specific regression the galloping bound is prone to: a final block
/// where `base + stride + 1` overshoots the operand — probing must clamp
/// to the real end and still find a match sitting exactly at `len - 1`.
#[test]
fn gallop_final_block_hits_last_element() {
    for long_len in [1usize, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
        let long = TidList::from_unsorted((0..long_len as u32).map(|i| i * 3));
        let last = long.tids().last().copied().unwrap_or(Tid(0)).0;
        let short = TidList::from_unsorted([last]);
        let hit = short.gallop_intersect(&long);
        assert_eq!(
            hit.support(),
            1,
            "missed final element, long_len={long_len}"
        );
        assert_eq!(raw(&hit), vec![last]);
        assert_eq!(raw(&short.gallop_intersect_chunked(&long)), vec![last]);
    }
    // And at the very top of the tid space.
    let long = TidList::from_unsorted([u32::MAX - 64, u32::MAX - 1, u32::MAX]);
    let short = TidList::from_unsorted([u32::MAX]);
    assert_eq!(raw(&short.gallop_intersect(&long)), vec![u32::MAX]);
    assert_eq!(raw(&short.gallop_intersect_chunked(&long)), vec![u32::MAX]);
}
