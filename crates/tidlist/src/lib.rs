//! Sorted transaction-id lists (tid-lists) and their intersection kernels.
//!
//! §4.2 of the paper: *"The vertical (or inverted) layout … consists of a
//! list of items, with each item followed by its tid-list — the list of all
//! the transaction identifiers containing the item. … if the tid-list is
//! sorted in increasing order, then the support of a candidate k-itemset
//! can be computed by simply intersecting the tid-lists of any two (k−1)-
//! subsets."*
//!
//! This crate provides the [`TidList`] type plus every intersection
//! variant the reproduction needs:
//!
//! * [`TidList::intersect`] — plain two-pointer merge;
//! * [`TidList::intersect_bounded`] — the paper's **short-circuited**
//!   intersection (§5.3): stop as soon as the upper bound on the result
//!   cardinality drops below the minimum support;
//! * [`TidList::gallop_intersect`] — galloping (exponential-search)
//!   kernel for size-skewed operands;
//! * [`TidList::difference`] — set difference, used by the d-Eclat
//!   *diffset* extension;
//! * `_metered` variants of the hot kernels that report the element
//!   comparisons performed, feeding the simulated-cluster cost model.
//!
//! * [`TidList::intersect_chunked`] / [`TidList::gallop_intersect_chunked`]
//!   — explicitly vectorized 8-wide unrolled block kernels for the sparse
//!   case (branchless lane sweeps the optimizer turns into packed
//!   compares).
//!
//! On top of the concrete kernels sits the [`TidSet`] trait — support,
//! (bounded/metered) join, multi-way look-ahead folds, and a byte-size
//! hook — implemented by [`TidList`], [`diffset::DiffSet`], the adaptive
//! galloping wrapper [`GallopList`], the chunked-kernel wrapper
//! [`ChunkedList`], the fixed-width bitmap [`BitmapSet`] (word `AND` +
//! popcount joins for dense classes), and the mid-recursion switching
//! [`AdaptiveSet`]. The mining recursion in the `eclat` crate is generic
//! over it, so every algorithm variant can run on any representation.

pub mod adaptive;
pub mod bitmap;
pub mod diffset;
mod list;
pub mod set;

pub use adaptive::AdaptiveSet;
pub use bitmap::BitmapSet;
pub use list::{IntersectOutcome, TidList, LANES};
pub use set::{ChunkedList, GallopList, TidSet};
