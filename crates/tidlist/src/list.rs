//! The [`TidList`] type and intersection kernels.

use mining_types::{OpMeter, Tid};
use std::fmt;

/// A sorted, duplicate-free list of transaction identifiers.
///
/// The cardinality of an itemset's tid-list *is* its support count — "We
/// can immediately determine the support by counting the number of elements
/// in the tid-list" (§4.2).
///
/// ```
/// use tidlist::TidList;
/// // the paper's §4.2 example: T(AB) ∩ T(AC) = T(ABC)
/// let ab = TidList::of(&[1, 5, 7, 10, 50]);
/// let ac = TidList::of(&[1, 4, 7, 10, 11]);
/// let abc = ab.intersect(&ac);
/// assert_eq!(abc, TidList::of(&[1, 7, 10]));
/// assert_eq!(abc.support(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct TidList {
    tids: Vec<Tid>,
}

/// Result of a short-circuited intersection (§5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntersectOutcome {
    /// The full intersection was computed and met the minimum support.
    Frequent(TidList),
    /// The kernel proved the result cannot reach the minimum support and
    /// stopped early. No (complete) list is materialized.
    Infrequent,
}

impl IntersectOutcome {
    /// The tid-list if frequent.
    pub fn into_frequent(self) -> Option<TidList> {
        match self {
            IntersectOutcome::Frequent(t) => Some(t),
            IntersectOutcome::Infrequent => None,
        }
    }

    /// Whether the join met the support threshold.
    pub fn is_frequent(&self) -> bool {
        matches!(self, IntersectOutcome::Frequent(_))
    }
}

impl TidList {
    /// The empty tid-list.
    pub fn new() -> Self {
        TidList { tids: Vec::new() }
    }

    /// Empty tid-list with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        TidList {
            tids: Vec::with_capacity(cap),
        }
    }

    /// Build from a vector that is already sorted strictly ascending.
    ///
    /// # Panics
    /// Panics if the invariant does not hold.
    pub fn from_sorted(tids: Vec<Tid>) -> Self {
        assert!(
            tids.windows(2).all(|w| w[0] < w[1]),
            "tid-list must be strictly ascending"
        );
        TidList { tids }
    }

    /// Build from raw `u32` tids, sorting and deduplicating as needed.
    pub fn from_unsorted<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut tids: Vec<Tid> = iter.into_iter().map(Tid).collect();
        tids.sort_unstable();
        tids.dedup();
        TidList { tids }
    }

    /// Convenience constructor from raw tids (used pervasively in tests).
    pub fn of(raw: &[u32]) -> Self {
        Self::from_unsorted(raw.iter().copied())
    }

    /// Append a tid that must exceed the current maximum — the natural way
    /// the vertical transformation builds lists while scanning transactions
    /// in tid order (§6.3's "monotonically increasing" ranges).
    ///
    /// # Panics
    /// Panics if `tid` is not strictly greater than the last element.
    #[inline]
    pub fn push(&mut self, tid: Tid) {
        if let Some(&last) = self.tids.last() {
            assert!(tid > last, "tids must be appended in increasing order");
        }
        self.tids.push(tid);
    }

    /// Concatenate another tid-list whose smallest tid exceeds our largest.
    ///
    /// This is the §6.3 offset-placement trick: because the database is
    /// block-partitioned with disjoint, monotonically increasing tid
    /// ranges, the global tid-list of an itemset is the concatenation of
    /// the per-processor partial lists in processor order — no sorting.
    ///
    /// # Panics
    /// Panics if the ranges are not disjoint-and-ordered.
    pub fn append_partial(&mut self, other: &TidList) {
        if let (Some(&last), Some(&first)) = (self.tids.last(), other.tids.first()) {
            assert!(
                first > last,
                "partial tid-lists must arrive in ascending tid-range order"
            );
        }
        self.tids.extend_from_slice(&other.tids);
    }

    /// Append a sorted slice of tids whose smallest exceeds our largest —
    /// the streaming-ingest append path. Equivalent to
    /// [`TidList::append_partial`] without materializing the delta as a
    /// `TidList`: a transaction batch arrives with tids strictly above
    /// everything already ingested (the same §6.3 disjoint ascending
    /// ranges), so the incremental engine extends each item's list in
    /// place.
    ///
    /// # Panics
    /// Panics if `tids` is not strictly increasing or does not start
    /// above the current last tid.
    pub fn append_tids(&mut self, tids: &[Tid]) {
        let mut last = self.tids.last().copied();
        for &t in tids {
            if let Some(prev) = last {
                assert!(t > prev, "appended tids must be strictly increasing");
            }
            last = Some(t);
        }
        self.tids.extend_from_slice(tids);
    }

    /// Support count = number of tids.
    #[inline]
    pub fn support(&self) -> u32 {
        self.tids.len() as u32
    }

    /// Number of tids.
    #[inline]
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True if no transactions contain the itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// The sorted tids.
    #[inline]
    pub fn tids(&self) -> &[Tid] {
        &self.tids
    }

    /// Membership test.
    pub fn contains(&self, tid: Tid) -> bool {
        self.tids.binary_search(&tid).is_ok()
    }

    /// Size in bytes when serialized as raw little-endian `u32`s — the
    /// quantity the Memory Channel exchange and disk cost models price.
    #[inline]
    pub fn byte_size(&self) -> u64 {
        (self.tids.len() as u64) * 4
    }

    /// Plain two-pointer sorted intersection.
    pub fn intersect(&self, other: &TidList) -> TidList {
        let (r, _) = intersect_inner(&self.tids, &other.tids, None);
        r.expect("unbounded intersection always completes")
    }

    /// Number of common tids without materializing the intersection.
    pub fn intersect_count(&self, other: &TidList) -> u32 {
        // Count-only two-pointer walk: no output allocation at all.
        let (a, b) = (&self.tids, &other.tids);
        let (mut i, mut j, mut n) = (0usize, 0usize, 0u32);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Short-circuited intersection against a minimum support (§5.3).
    ///
    /// The paper's example: *"assume that the minimum support is 100, and
    /// we are intersecting two itemsets AB with support 119 and AC with
    /// support 200. We can stop the intersection the moment we have 20
    /// mismatches in AB."* The kernel tracks, for each operand, how many
    /// of its elements have already failed to match; when
    /// `remaining_possible = min(|A| − missesA, |B| − missesB)` falls below
    /// `minsup`, the result cannot be frequent and we bail out.
    pub fn intersect_bounded(&self, other: &TidList, minsup: u32) -> IntersectOutcome {
        let (r, _) = intersect_inner(&self.tids, &other.tids, Some(minsup));
        match r {
            Some(list) if list.support() >= minsup => IntersectOutcome::Frequent(list),
            _ => IntersectOutcome::Infrequent,
        }
    }

    /// [`TidList::intersect_bounded`] plus comparison metering.
    pub fn intersect_bounded_metered(
        &self,
        other: &TidList,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> IntersectOutcome {
        let (r, ops) = intersect_inner(&self.tids, &other.tids, Some(minsup));
        meter.tid_cmp += ops;
        match r {
            Some(list) if list.support() >= minsup => IntersectOutcome::Frequent(list),
            _ => IntersectOutcome::Infrequent,
        }
    }

    /// [`TidList::intersect`] plus comparison metering.
    pub fn intersect_metered(&self, other: &TidList, meter: &mut OpMeter) -> TidList {
        let (r, ops) = intersect_inner(&self.tids, &other.tids, None);
        meter.tid_cmp += ops;
        r.expect("unbounded intersection always completes")
    }

    /// Galloping intersection: binary-search advances through the longer
    /// list. Asymptotically better when `|A| ≪ |B|`; used adaptively.
    pub fn gallop_intersect(&self, other: &TidList) -> TidList {
        let (out, _) = self.gallop_dispatch(other);
        out
    }

    /// [`TidList::gallop_intersect`] plus search-probe metering: every
    /// stride-doubling check and binary-search probe counts as one element
    /// comparison, so galloping runs are visible to the same `tid_cmp`
    /// counter as the two-pointer kernels.
    pub fn gallop_intersect_metered(&self, other: &TidList, meter: &mut OpMeter) -> TidList {
        let (out, ops) = self.gallop_dispatch(other);
        meter.tid_cmp += ops;
        out
    }

    fn gallop_dispatch(&self, other: &TidList) -> (TidList, u64) {
        let (short, long) = if self.len() <= other.len() {
            (&self.tids, &other.tids)
        } else {
            (&other.tids, &self.tids)
        };
        gallop_inner(short, long)
    }

    /// Whether the operand lengths are skewed enough (more than 16×) for
    /// galloping to beat the two-pointer merge — the classic
    /// merge-vs-search cutover; the ablation bench measures it.
    pub(crate) fn gallop_pays(&self, other: &TidList) -> bool {
        let (a, b) = (self.len().max(1), other.len().max(1));
        a * 16 < b || b * 16 < a
    }

    /// Adaptive intersection: galloping when [`gallop_pays`] says the
    /// lengths are skewed, two-pointer otherwise.
    ///
    /// [`gallop_pays`]: #method.gallop_pays
    pub fn intersect_adaptive(&self, other: &TidList) -> TidList {
        if self.gallop_pays(other) {
            self.gallop_intersect(other)
        } else {
            self.intersect(other)
        }
    }

    /// [`TidList::intersect_adaptive`] plus comparison metering — whichever
    /// kernel runs, its probes land in `meter.tid_cmp`.
    pub fn intersect_adaptive_metered(&self, other: &TidList, meter: &mut OpMeter) -> TidList {
        if self.gallop_pays(other) {
            self.gallop_intersect_metered(other, meter)
        } else {
            self.intersect_metered(other, meter)
        }
    }

    /// Chunked (8-wide unrolled) two-pointer intersection — the
    /// explicitly vectorized sparse kernel. See `chunked_inner` for the
    /// block algorithm and op accounting.
    pub fn intersect_chunked(&self, other: &TidList) -> TidList {
        let (r, _) = chunked_inner(&self.tids, &other.tids, None);
        r.expect("unbounded intersection always completes")
    }

    /// [`TidList::intersect_chunked`] plus lane-op metering.
    pub fn intersect_chunked_metered(&self, other: &TidList, meter: &mut OpMeter) -> TidList {
        let (r, ops) = chunked_inner(&self.tids, &other.tids, None);
        meter.tid_cmp += ops;
        r.expect("unbounded intersection always completes")
    }

    /// Chunked intersection with the §5.3 short-circuit: the
    /// remaining-elements bound is re-checked after every block step, so
    /// a hopeless candidate is abandoned within one block of where the
    /// scalar kernel would stop.
    pub fn intersect_chunked_bounded(&self, other: &TidList, minsup: u32) -> IntersectOutcome {
        let (r, _) = chunked_inner(&self.tids, &other.tids, Some(minsup));
        match r {
            Some(list) if list.support() >= minsup => IntersectOutcome::Frequent(list),
            _ => IntersectOutcome::Infrequent,
        }
    }

    /// [`TidList::intersect_chunked_bounded`] plus lane-op metering.
    pub fn intersect_chunked_bounded_metered(
        &self,
        other: &TidList,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> IntersectOutcome {
        let (r, ops) = chunked_inner(&self.tids, &other.tids, Some(minsup));
        meter.tid_cmp += ops;
        match r {
            Some(list) if list.support() >= minsup => IntersectOutcome::Frequent(list),
            _ => IntersectOutcome::Infrequent,
        }
    }

    /// Galloping intersection whose located window is resolved with a
    /// chunked final block: binary search narrows only to [`LANES`]
    /// elements and one branchless 8-lane sweep finds the position.
    pub fn gallop_intersect_chunked(&self, other: &TidList) -> TidList {
        let (out, _) = self.gallop_chunked_dispatch(other);
        out
    }

    /// [`TidList::gallop_intersect_chunked`] plus probe metering.
    pub fn gallop_intersect_chunked_metered(
        &self,
        other: &TidList,
        meter: &mut OpMeter,
    ) -> TidList {
        let (out, ops) = self.gallop_chunked_dispatch(other);
        meter.tid_cmp += ops;
        out
    }

    fn gallop_chunked_dispatch(&self, other: &TidList) -> (TidList, u64) {
        let (short, long) = if self.len() <= other.len() {
            (&self.tids, &other.tids)
        } else {
            (&other.tids, &self.tids)
        };
        gallop_chunked_inner(short, long)
    }

    /// Chunked adaptive intersection: chunked galloping on 16×-skewed
    /// operands, the 8-wide block merge otherwise — the sparse side of
    /// the `auto-density` representation.
    pub fn intersect_chunked_adaptive(&self, other: &TidList) -> TidList {
        if self.gallop_pays(other) {
            self.gallop_intersect_chunked(other)
        } else {
            self.intersect_chunked(other)
        }
    }

    /// [`TidList::intersect_chunked_adaptive`] plus metering.
    pub fn intersect_chunked_adaptive_metered(
        &self,
        other: &TidList,
        meter: &mut OpMeter,
    ) -> TidList {
        if self.gallop_pays(other) {
            self.gallop_intersect_chunked_metered(other, meter)
        } else {
            self.intersect_chunked_metered(other, meter)
        }
    }

    /// Sorted union.
    pub fn union(&self, other: &TidList) -> TidList {
        let (out, _) = union_inner(&self.tids, &other.tids);
        out
    }

    /// [`TidList::union`] plus exact comparison metering — one op per
    /// three-way merge probe, as in the intersection/difference kernels.
    pub fn union_metered(&self, other: &TidList, meter: &mut OpMeter) -> TidList {
        let (out, ops) = union_inner(&self.tids, &other.tids);
        meter.tid_cmp += ops;
        out
    }

    /// Sorted difference `self − other` — the d-Eclat *diffset* kernel.
    pub fn difference(&self, other: &TidList) -> TidList {
        let (r, _) = difference_inner(&self.tids, &other.tids, None);
        r.expect("unbounded difference always completes")
    }

    /// [`TidList::difference`] plus exact comparison metering.
    pub fn difference_metered(&self, other: &TidList, meter: &mut OpMeter) -> TidList {
        let (r, ops) = difference_inner(&self.tids, &other.tids, None);
        meter.tid_cmp += ops;
        r.expect("unbounded difference always completes")
    }

    /// Split into the tids `< bound` and the tids `>= bound` — used when
    /// re-partitioning a global list back into block ranges.
    pub fn split_at_tid(&self, bound: Tid) -> (TidList, TidList) {
        let pos = self.tids.partition_point(|&t| t < bound);
        (
            TidList {
                tids: self.tids[..pos].to_vec(),
            },
            TidList {
                tids: self.tids[pos..].to_vec(),
            },
        )
    }

    /// Consume into the raw tid vector.
    pub fn into_vec(self) -> Vec<Tid> {
        self.tids
    }
}

/// Shared two-pointer kernel. With `minsup = Some(s)`, applies the §5.3
/// short-circuit and returns `None` on early exit. Always returns the
/// number of element comparisons performed.
fn intersect_inner(a: &[Tid], b: &[Tid], minsup: Option<u32>) -> (Option<TidList>, u64) {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    let mut ops = 0u64;
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
        if let Some(s) = minsup {
            // Upper bound on achievable matches: already matched plus
            // whatever remains of the *shorter* residue.
            let remaining = (a.len() - i).min(b.len() - j);
            if (out.len() + remaining) < s as usize {
                return (None, ops);
            }
        }
    }
    (Some(TidList { tids: out }), ops)
}

/// Shared merge-difference kernel `a − b`. With `budget = Some(n)`,
/// abandons with `None` the moment the output would exceed `n` elements —
/// the d-Eclat analogue of the §5.3 short-circuit (a diffset longer than
/// `support(prefix) − minsup` proves the candidate infrequent). Always
/// returns the number of element comparisons performed: one per
/// three-way `a[i] <=> b[j]` probe, so `ops <= |a| + |b|`.
pub(crate) fn difference_inner(
    a: &[Tid],
    b: &[Tid],
    budget: Option<usize>,
) -> (Option<TidList>, u64) {
    let cap = budget.map_or(a.len(), |n| n.min(a.len()));
    let mut out = Vec::with_capacity(cap);
    let mut j = 0usize;
    let mut ops = 0u64;
    for &x in a {
        let keep = loop {
            if j >= b.len() {
                break true;
            }
            ops += 1;
            match b[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => break false,
                std::cmp::Ordering::Greater => break true,
            }
        };
        if keep {
            if let Some(limit) = budget {
                if out.len() >= limit {
                    return (None, ops);
                }
            }
            out.push(x);
        }
    }
    (Some(TidList { tids: out }), ops)
}

/// Galloping (exponential-search) intersection kernel. `short` must be the
/// shorter operand. Returns the intersection plus an op count comparable to
/// the two-pointer kernels': one op per stride-doubling probe and
/// `⌈log2(window)⌉ + 1` ops per binary search over the located window.
fn gallop_inner(short: &[Tid], long: &[Tid]) -> (TidList, u64) {
    let mut out = Vec::with_capacity(short.len());
    let mut base = 0usize;
    let mut ops = 0u64;
    for &x in short {
        if base >= long.len() {
            break;
        }
        // Exponential search: find a window end such that
        // long[end-1] >= x (or end == len), doubling the stride.
        let mut stride = 1usize;
        ops += 1;
        while base + stride < long.len() && long[base + stride] < x {
            stride <<= 1;
            ops += 1;
        }
        let end = (base + stride + 1).min(long.len());
        // First position in [base, end) with long[pos] >= x.
        let window = end - base;
        ops += (usize::BITS - window.leading_zeros()) as u64;
        let pos = base + long[base..end].partition_point(|&v| v < x);
        if pos < long.len() && long[pos] == x {
            out.push(x);
            base = pos + 1;
        } else {
            base = pos;
        }
    }
    (TidList { tids: out }, ops)
}

/// Lane width of the chunked kernels: 8 × `u32` tids = two 128-bit (or
/// one 256-bit) vector register(s), the shape the compiler's
/// auto-vectorizer turns the branchless sweeps below into packed compares.
pub const LANES: usize = 8;

/// One branchless 8-lane membership sweep: is `x` present in the block?
/// The fold compiles to eight data-independent equality tests OR-ed
/// together — no early exit, so the optimizer can keep the whole block in
/// vector registers.
#[inline]
fn lane_contains(block: &[Tid; LANES], x: Tid) -> bool {
    block.iter().fold(false, |acc, &y| acc | (y == x))
}

/// Chunked (8-wide unrolled) two-pointer kernel. Works on whole blocks of
/// [`LANES`] tids:
///
/// * disjoint blocks (`max(A-block) < min(B-block)` or vice versa) are
///   skipped in one probe;
/// * overlapping blocks run a branchless 8×8 membership sweep (one
///   [`lane_contains`] per element of the A-block), then the block whose
///   maximum is smaller advances — every cross-block match ≤ that maximum
///   has already been tested, so no pair is missed;
/// * the scalar two-pointer tail finishes the sub-`LANES` remainders.
///
/// With `minsup = Some(s)`, re-checks the §5.3 remaining-elements bound
/// after every block step and scalar-tail probe, returning `None` on
/// early exit exactly like [`intersect_inner`].
///
/// Op accounting: 1 per disjoint-block skip, [`LANES`] per 8×8 sweep (one
/// per 8-lane compare issued), 1 per scalar-tail probe — so a chunked run
/// over dense overlapping data costs about the same `tid_cmp` as the
/// scalar merge while touching memory a block at a time.
fn chunked_inner(a: &[Tid], b: &[Tid], minsup: Option<u32>) -> (Option<TidList>, u64) {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    let mut ops = 0u64;
    while i + LANES <= a.len() && j + LANES <= b.len() {
        let ab: &[Tid; LANES] = a[i..i + LANES].try_into().expect("block is LANES wide");
        let bb: &[Tid; LANES] = b[j..j + LANES].try_into().expect("block is LANES wide");
        let (amax, bmax) = (ab[LANES - 1], bb[LANES - 1]);
        if amax < bb[0] {
            ops += 1;
            i += LANES;
        } else if bmax < ab[0] {
            ops += 1;
            j += LANES;
        } else {
            ops += LANES as u64;
            for &x in ab {
                if lane_contains(bb, x) {
                    out.push(x);
                }
            }
            // Advance past the lower maximum (both on a tie): every
            // element ≤ the advanced block's max was just swept against
            // the other block, and earlier blocks are already exhausted.
            if amax <= bmax {
                i += LANES;
            }
            if bmax <= amax {
                j += LANES;
            }
        }
        if let Some(s) = minsup {
            let remaining = (a.len() - i).min(b.len() - j);
            if (out.len() + remaining) < s as usize {
                return (None, ops);
            }
        }
    }
    // Scalar tail: identical to `intersect_inner`, continuing the same
    // output and bound state.
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
        if let Some(s) = minsup {
            let remaining = (a.len() - i).min(b.len() - j);
            if (out.len() + remaining) < s as usize {
                return (None, ops);
            }
        }
    }
    (Some(TidList { tids: out }), ops)
}

/// Galloping kernel with a chunked final block: the exponential search is
/// [`gallop_inner`]'s, but the located window is narrowed by binary
/// search only while it is wider than [`LANES`]; the final block is then
/// resolved by one branchless rank sweep (`pos = lo + #{v < x}` — exactly
/// `partition_point` on a sorted block, without its data-dependent
/// branches). `short` must be the shorter operand. Ops: 1 per
/// stride-doubling probe, 1 per binary-search halving, 1 per final-block
/// sweep.
fn gallop_chunked_inner(short: &[Tid], long: &[Tid]) -> (TidList, u64) {
    let mut out = Vec::with_capacity(short.len());
    let mut base = 0usize;
    let mut ops = 0u64;
    for &x in short {
        if base >= long.len() {
            break;
        }
        let mut stride = 1usize;
        ops += 1;
        while base + stride < long.len() && long[base + stride] < x {
            stride <<= 1;
            ops += 1;
        }
        let end = (base + stride + 1).min(long.len());
        // Binary search [lo, hi) down to a final block of ≤ LANES.
        let (mut lo, mut hi) = (base, end);
        while hi - lo > LANES {
            ops += 1;
            let mid = lo + (hi - lo) / 2;
            if long[mid] < x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Branchless final block: rank of x = count of elements < x.
        ops += 1;
        let pos = lo
            + long[lo..hi]
                .iter()
                .map(|&v| usize::from(v < x))
                .sum::<usize>();
        if pos < long.len() && long[pos] == x {
            out.push(x);
            base = pos + 1;
        } else {
            base = pos;
        }
    }
    (TidList { tids: out }, ops)
}

/// Shared merge-union kernel. Returns the union plus the number of
/// three-way `a[i] <=> b[j]` probes performed.
fn union_inner(a: &[Tid], b: &[Tid]) -> (TidList, u64) {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut ops = 0u64;
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    (TidList { tids: out }, ops)
}

impl fmt::Debug for TidList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T[")?;
        for (n, t) in self.tids.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", t.0)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Tid> for TidList {
    fn from_iter<I: IntoIterator<Item = Tid>>(iter: I) -> Self {
        let mut tids: Vec<Tid> = iter.into_iter().collect();
        tids.sort_unstable();
        tids.dedup();
        TidList { tids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_abc() {
        // §4.2: T(AB) = {1,5,7,10,50}, T(AC) = {1,4,7,10,11}
        // → T(ABC) = {1,7,10}
        let ab = TidList::of(&[1, 5, 7, 10, 50]);
        let ac = TidList::of(&[1, 4, 7, 10, 11]);
        let abc = ab.intersect(&ac);
        assert_eq!(abc, TidList::of(&[1, 7, 10]));
        assert_eq!(abc.support(), 3);
        assert_eq!(ab.intersect_count(&ac), 3);
    }

    #[test]
    fn from_sorted_enforces_invariant() {
        TidList::from_sorted(vec![Tid(1), Tid(2), Tid(9)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_duplicates() {
        TidList::from_sorted(vec![Tid(1), Tid(1)]);
    }

    #[test]
    fn push_enforces_order() {
        let mut t = TidList::new();
        t.push(Tid(3));
        t.push(Tid(7));
        assert_eq!(t, TidList::of(&[3, 7]));
    }

    #[test]
    #[should_panic(expected = "increasing order")]
    fn push_rejects_regression() {
        let mut t = TidList::of(&[5]);
        t.push(Tid(5));
    }

    #[test]
    fn append_partial_concatenates_block_ranges() {
        let mut global = TidList::of(&[0, 3, 9]);
        global.append_partial(&TidList::of(&[10, 11, 40]));
        assert_eq!(global, TidList::of(&[0, 3, 9, 10, 11, 40]));
        // appending an empty partial is fine
        global.append_partial(&TidList::new());
        assert_eq!(global.len(), 6);
    }

    #[test]
    #[should_panic(expected = "ascending tid-range order")]
    fn append_partial_rejects_overlap() {
        let mut global = TidList::of(&[0, 3, 9]);
        global.append_partial(&TidList::of(&[9, 10]));
    }

    #[test]
    fn short_circuit_matches_paper_narrative() {
        // minsup 100, |AB| = 119, |AC| = 200: after 20 mismatches on AB
        // the intersection cannot reach 100.
        // Construct AB so its first 20 elements miss AC entirely.
        let ab: Vec<u32> = (0..20).map(|i| i * 2 + 1).chain(1000..1099).collect();
        let ac: Vec<u32> = (0..20)
            .map(|i| i * 2)
            .chain(1000..1099)
            .chain(5000..5081)
            .collect();
        let ab = TidList::of(&ab);
        let ac = TidList::of(&ac);
        assert_eq!(ab.support(), 119);
        assert_eq!(ac.support(), 200);
        // True intersection has 99 elements — below minsup 100.
        assert_eq!(ab.intersect(&ac).support(), 99);
        assert_eq!(ab.intersect_bounded(&ac, 100), IntersectOutcome::Infrequent);
        // With minsup 99 it is frequent and fully materialized.
        let out = ab.intersect_bounded(&ac, 99);
        assert_eq!(out.into_frequent().unwrap().support(), 99);
    }

    #[test]
    fn bounded_agrees_with_unbounded_on_frequent_results() {
        let a = TidList::of(&[1, 2, 3, 5, 8, 13, 21]);
        let b = TidList::of(&[2, 3, 5, 7, 11, 13]);
        let full = a.intersect(&b);
        assert_eq!(full, TidList::of(&[2, 3, 5, 13]));
        for minsup in 1..=4 {
            assert_eq!(
                a.intersect_bounded(&b, minsup),
                IntersectOutcome::Frequent(full.clone()),
                "minsup {minsup}"
            );
        }
        assert_eq!(a.intersect_bounded(&b, 5), IntersectOutcome::Infrequent);
    }

    #[test]
    fn bounded_saves_comparisons() {
        // Disjoint ranges: full intersection walks both lists, but with a
        // high minsup the bound trips almost immediately.
        let a = TidList::of(&(0..1000).collect::<Vec<_>>());
        let b = TidList::of(&(10_000..11_000).collect::<Vec<_>>());
        let mut m_full = OpMeter::new();
        let mut m_bounded = OpMeter::new();
        a.intersect_metered(&b, &mut m_full);
        let out = a.intersect_bounded_metered(&b, 999, &mut m_bounded);
        assert_eq!(out, IntersectOutcome::Infrequent);
        assert!(
            m_bounded.tid_cmp * 10 < m_full.tid_cmp,
            "short-circuit should cut comparisons by >10x here: {} vs {}",
            m_bounded.tid_cmp,
            m_full.tid_cmp
        );
    }

    #[test]
    fn gallop_matches_two_pointer() {
        let a = TidList::of(&[5, 100, 250, 251, 90_000]);
        let b = TidList::of(&(0..100_000).step_by(5).collect::<Vec<_>>());
        assert_eq!(a.gallop_intersect(&b), a.intersect(&b));
        assert_eq!(b.gallop_intersect(&a), a.intersect(&b));
        assert_eq!(a.intersect_adaptive(&b), a.intersect(&b));
    }

    #[test]
    fn gallop_edge_cases() {
        let e = TidList::new();
        let a = TidList::of(&[1, 2, 3]);
        assert_eq!(e.gallop_intersect(&a), TidList::new());
        assert_eq!(a.gallop_intersect(&e), TidList::new());
        assert_eq!(a.gallop_intersect(&a), a);
        // single elements at boundaries
        let first = TidList::of(&[1]);
        let last = TidList::of(&[3]);
        assert_eq!(first.gallop_intersect(&a), first);
        assert_eq!(last.gallop_intersect(&a), last);
    }

    #[test]
    fn gallop_metered_counts_probes() {
        let a = TidList::of(&[5, 100, 250, 251, 90_000]);
        let b = TidList::of(&(0..100_000).step_by(5).collect::<Vec<_>>());
        let mut m = OpMeter::new();
        assert_eq!(a.gallop_intersect_metered(&b, &mut m), a.intersect(&b));
        assert!(m.tid_cmp > 0, "galloping probes must be metered");
        // Galloping on heavily skewed operands must beat the linear merge.
        let mut m_two = OpMeter::new();
        a.intersect_metered(&b, &mut m_two);
        assert!(
            m.tid_cmp * 10 < m_two.tid_cmp,
            "gallop {} vs two-pointer {}",
            m.tid_cmp,
            m_two.tid_cmp
        );
        // The adaptive dispatch picks galloping here and meters the same.
        let mut m_ad = OpMeter::new();
        assert_eq!(a.intersect_adaptive_metered(&b, &mut m_ad), a.intersect(&b));
        assert_eq!(m_ad.tid_cmp, m.tid_cmp);
    }

    #[test]
    fn adaptive_metered_uses_merge_on_balanced_operands() {
        let a = TidList::of(&[1, 2, 3, 5, 8, 13, 21]);
        let b = TidList::of(&[2, 3, 5, 7, 11, 13]);
        let mut m_ad = OpMeter::new();
        let mut m_two = OpMeter::new();
        assert_eq!(
            a.intersect_adaptive_metered(&b, &mut m_ad),
            a.intersect_metered(&b, &mut m_two)
        );
        assert_eq!(m_ad.tid_cmp, m_two.tid_cmp);
    }

    #[test]
    fn union_metered_counts_merge_probes() {
        let a = TidList::of(&[1, 3, 5, 7]);
        let b = TidList::of(&[3, 4, 7, 8]);
        let mut m = OpMeter::new();
        assert_eq!(a.union_metered(&b, &mut m), a.union(&b));
        assert!(m.tid_cmp > 0 && m.tid_cmp <= 8);
        // Union with empty never probes.
        let mut m0 = OpMeter::new();
        assert_eq!(a.union_metered(&TidList::new(), &mut m0), a);
        assert_eq!(m0.tid_cmp, 0);
    }

    #[test]
    fn union_and_difference() {
        let a = TidList::of(&[1, 3, 5, 7]);
        let b = TidList::of(&[3, 4, 7, 8]);
        assert_eq!(a.union(&b), TidList::of(&[1, 3, 4, 5, 7, 8]));
        assert_eq!(a.difference(&b), TidList::of(&[1, 5]));
        assert_eq!(b.difference(&a), TidList::of(&[4, 8]));
        assert_eq!(a.difference(&a), TidList::new());
        assert_eq!(a.union(&TidList::new()), a);
        assert_eq!(a.difference(&TidList::new()), a);
        assert_eq!(TidList::new().difference(&a), TidList::new());
    }

    #[test]
    fn split_at_tid() {
        let a = TidList::of(&[1, 3, 5, 7]);
        let (lo, hi) = a.split_at_tid(Tid(5));
        assert_eq!(lo, TidList::of(&[1, 3]));
        assert_eq!(hi, TidList::of(&[5, 7]));
        let (lo, hi) = a.split_at_tid(Tid(0));
        assert_eq!(lo, TidList::new());
        assert_eq!(hi, a);
        let (lo, hi) = a.split_at_tid(Tid(100));
        assert_eq!(lo, a);
        assert_eq!(hi, TidList::new());
    }

    #[test]
    fn byte_size_counts_u32s() {
        assert_eq!(TidList::of(&[1, 2, 3]).byte_size(), 12);
        assert_eq!(TidList::new().byte_size(), 0);
    }

    #[test]
    fn contains_and_from_iterator() {
        let t: TidList = [Tid(9), Tid(1), Tid(9), Tid(4)].into_iter().collect();
        assert_eq!(t, TidList::of(&[1, 4, 9]));
        assert!(t.contains(Tid(4)));
        assert!(!t.contains(Tid(5)));
    }

    #[test]
    fn intersect_bounded_zero_minsup_is_frequent_even_when_empty() {
        let a = TidList::of(&[1]);
        let b = TidList::of(&[2]);
        // minsup 0 is degenerate but must not panic: empty ∩ counts as
        // frequent (0 >= 0).
        assert!(a.intersect_bounded(&b, 0).is_frequent());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", TidList::of(&[1, 2])), "T[1,2]");
        assert_eq!(format!("{:?}", TidList::new()), "T[]");
    }

    #[test]
    fn append_tids_extends_in_place() {
        let mut t = TidList::of(&[1, 4]);
        t.append_tids(&[Tid(7), Tid(9)]);
        assert_eq!(t, TidList::of(&[1, 4, 7, 9]));
        t.append_tids(&[]);
        assert_eq!(t, TidList::of(&[1, 4, 7, 9]));
        let mut empty = TidList::new();
        empty.append_tids(&[Tid(0), Tid(2)]);
        assert_eq!(empty, TidList::of(&[0, 2]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn append_tids_rejects_overlap() {
        let mut t = TidList::of(&[1, 4]);
        t.append_tids(&[Tid(4)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn append_tids_rejects_unsorted_slice() {
        let mut t = TidList::new();
        t.append_tids(&[Tid(3), Tid(2)]);
    }
}
