//! Diffsets — the d-Eclat extension of the paper's tid-list clustering.
//!
//! Zaki's follow-up work ("Fast Vertical Mining Using Diffsets", KDD 2003)
//! keeps, for an itemset `P ∪ {x}`, the *difference* `d(Px) = t(P) − t(x)`
//! instead of the intersection `t(Px)`. Supports then obey
//!
//! ```text
//! support(Pxy) = support(Px) − |d(Pxy)|,   d(Pxy) = d(Py) − d(Px)
//! ```
//!
//! Deep in the lattice diffsets shrink much faster than tid-lists, cutting
//! memory and intersection cost. The paper lists better memory utilization
//! as ongoing work (§5.3, §9); this module implements that extension and
//! the `ablation` bench compares both representations.

use crate::list::difference_inner;
use crate::TidList;
use mining_types::OpMeter;

/// An itemset's vertical representation in diffset form: the support count
/// plus the tids of the *prefix* that do **not** contain the itemset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffSet {
    /// `d(P x)` — tids in `t(P)` but not in `t(P x)`.
    pub diff: TidList,
    /// Absolute support of the itemset this diffset represents.
    pub support: u32,
}

impl DiffSet {
    /// Root conversion: a 2-itemset's diffset relative to its first item.
    ///
    /// `d(xy) = t(x) − t(y)`; `support(xy)` is supplied by the caller (the
    /// initialization phase's triangular counts) or derived as
    /// `|t(x)| − |d(xy)|`.
    pub fn from_tidlists(t_prefix: &TidList, t_ext: &TidList) -> DiffSet {
        let diff = t_prefix.difference(t_ext);
        let support = t_prefix.support() - diff.support();
        DiffSet { diff, support }
    }

    /// [`DiffSet::from_tidlists`] plus exact comparison metering.
    pub fn from_tidlists_metered(
        t_prefix: &TidList,
        t_ext: &TidList,
        meter: &mut OpMeter,
    ) -> DiffSet {
        let diff = t_prefix.difference_metered(t_ext, meter);
        let support = t_prefix.support() - diff.support();
        DiffSet { diff, support }
    }

    /// Bounded root conversion: `None` when the resulting itemset cannot
    /// reach `minsup`. Since `support = |t_prefix| − |diff|`, the
    /// difference can stop once it grows past `|t_prefix| − minsup` —
    /// the same §5.3 budget argument as [`DiffSet::join_bounded`].
    pub fn from_tidlists_bounded(
        t_prefix: &TidList,
        t_ext: &TidList,
        minsup: u32,
    ) -> Option<DiffSet> {
        Self::from_tidlists_bounded_inner(t_prefix, t_ext, minsup, &mut OpMeter::new())
    }

    /// [`DiffSet::from_tidlists_bounded`] plus exact comparison metering.
    pub fn from_tidlists_bounded_metered(
        t_prefix: &TidList,
        t_ext: &TidList,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<DiffSet> {
        Self::from_tidlists_bounded_inner(t_prefix, t_ext, minsup, meter)
    }

    fn from_tidlists_bounded_inner(
        t_prefix: &TidList,
        t_ext: &TidList,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<DiffSet> {
        if t_prefix.support() < minsup {
            return None;
        }
        let budget = (t_prefix.support() - minsup) as usize;
        let (out, ops) = difference_inner(t_prefix.tids(), t_ext.tids(), Some(budget));
        meter.tid_cmp += ops;
        out.map(|diff| {
            let support = t_prefix.support() - diff.support();
            debug_assert!(support >= minsup);
            DiffSet { diff, support }
        })
    }

    /// Join two diffsets sharing the same prefix `P`: given `d(Px)` (self)
    /// and `d(Py)` (other) with `x < y`, produce `d(Pxy) = d(Py) − d(Px)`
    /// and `support(Pxy) = support(Px) − |d(Pxy)|`.
    pub fn join(&self, other: &DiffSet) -> DiffSet {
        let diff = other.diff.difference(&self.diff);
        let support = self.support - diff.support();
        DiffSet { diff, support }
    }

    /// [`DiffSet::join`] plus exact comparison metering.
    pub fn join_metered(&self, other: &DiffSet, meter: &mut OpMeter) -> DiffSet {
        let diff = other.diff.difference_metered(&self.diff, meter);
        let support = self.support - diff.support();
        DiffSet { diff, support }
    }

    /// Join with a short-circuit: `None` when `support(Pxy) < minsup`.
    ///
    /// Because `support(Pxy) = support(Px) − |d(Pxy)|`, the join can stop
    /// as soon as the diffset grows past `support(Px) − minsup`.
    pub fn join_bounded(&self, other: &DiffSet, minsup: u32) -> Option<DiffSet> {
        self.join_bounded_inner(other, minsup, &mut OpMeter::new())
    }

    /// [`DiffSet::join_bounded`] plus exact comparison metering.
    pub fn join_bounded_metered(
        &self,
        other: &DiffSet,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<DiffSet> {
        self.join_bounded_inner(other, minsup, meter)
    }

    fn join_bounded_inner(
        &self,
        other: &DiffSet,
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<DiffSet> {
        if self.support < minsup {
            return None;
        }
        let budget = (self.support - minsup) as usize;
        // Early-exit difference: abandon once the output exceeds budget.
        let (out, ops) = difference_inner(other.diff.tids(), self.diff.tids(), Some(budget));
        meter.tid_cmp += ops;
        out.map(|diff| {
            let support = self.support - diff.support();
            debug_assert!(support >= minsup);
            DiffSet { diff, support }
        })
    }

    /// Serialized size in bytes: the diff tids plus the support word —
    /// what the cost model charges for shipping this representation.
    pub fn byte_size(&self) -> u64 {
        self.diff.byte_size() + 4
    }

    /// Multi-way join of class siblings `d(Px₁)` (self), `d(Px₂)`, …,
    /// `d(Px_k)` (rest), producing `d(Px₁x₂…x_k)` relative to `Px₁`.
    ///
    /// Chaining pairwise [`DiffSet::join`]s is **wrong** here: after one
    /// join the accumulator's diff is relative to `Px₁`, while the
    /// remaining members' diffs are still relative to `P`, so a second
    /// pairwise join would subtract incomparable sets and report a bogus
    /// support. The correct multi-way identity keeps every operand
    /// relative to `P`:
    ///
    /// ```text
    /// d(Px₁x₂…x_k) rel Px₁ = (d(Px₂) ∪ … ∪ d(Px_k)) − d(Px₁)
    /// support(Px₁…x_k)     = support(Px₁) − |d(Px₁…x_k)|
    /// ```
    ///
    /// computed incrementally as `acc ∪= (d(Px_j) − d(Px₁))`. With
    /// `minsup = Some(s)` the fold bails as soon as `|acc|` exceeds
    /// `support(Px₁) − s` — sound because unions only grow (§5.3 budget
    /// argument). Returns `None` exactly when the union is infrequent.
    pub fn fold_join_with(
        &self,
        rest: &[&DiffSet],
        minsup: Option<u32>,
        meter: &mut OpMeter,
    ) -> Option<DiffSet> {
        let budget = match minsup {
            Some(s) if self.support < s => return None,
            Some(s) => Some((self.support - s) as usize),
            None => None,
        };
        if rest.is_empty() {
            // Zero joins leave the operand unchanged (still relative to P),
            // matching the pairwise chain convention.
            return Some(self.clone());
        }
        let mut acc = TidList::new();
        for m in rest {
            let contrib = m.diff.difference_metered(&self.diff, meter);
            acc = acc.union_metered(&contrib, meter);
            if let Some(b) = budget {
                if acc.len() > b {
                    return None;
                }
            }
        }
        let support = self.support - acc.support();
        Some(DiffSet { diff: acc, support })
    }
}

/// Cross-check helper: reconstruct `t(Px)` from `t(P)` and `d(Px)`.
pub fn reconstruct_tidlist(t_prefix: &TidList, d: &DiffSet) -> TidList {
    t_prefix.difference(&d.diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tidlists_basic() {
        let tx = TidList::of(&[1, 2, 3, 4, 5]);
        let ty = TidList::of(&[2, 4, 6]);
        let d = DiffSet::from_tidlists(&tx, &ty);
        assert_eq!(d.diff, TidList::of(&[1, 3, 5]));
        assert_eq!(d.support, 2); // {2,4}
        assert_eq!(reconstruct_tidlist(&tx, &d), TidList::of(&[2, 4]));
    }

    #[test]
    fn join_matches_tidlist_semantics() {
        // Prefix P = A. t(A)=1..10, t(B)={1,2,3,4,5,7}, t(C)={2,4,5,8,9}
        let ta = TidList::of(&(1..=10).collect::<Vec<_>>());
        let tb = TidList::of(&[1, 2, 3, 4, 5, 7]);
        let tc = TidList::of(&[2, 4, 5, 8, 9]);
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        let dabc = dab.join(&dac);
        // Ground truth via tid-lists:
        let tab = ta.intersect(&tb);
        let tabc = tab.intersect(&tc);
        assert_eq!(dabc.support, tabc.support());
        assert_eq!(reconstruct_tidlist(&tab, &dabc), tabc);
    }

    #[test]
    fn join_bounded_agrees_with_join() {
        let ta = TidList::of(&(0..50).collect::<Vec<_>>());
        let tb = TidList::of(&(0..50).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let tc = TidList::of(&(0..50).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        let full = dab.join(&dac);
        for minsup in 1..=full.support {
            let bounded = dab.join_bounded(&dac, minsup).expect("frequent");
            assert_eq!(bounded, full, "minsup {minsup}");
        }
        assert_eq!(dab.join_bounded(&dac, full.support + 1), None);
    }

    #[test]
    fn join_bounded_short_circuits_below_prefix_support() {
        let d = DiffSet {
            diff: TidList::new(),
            support: 5,
        };
        let other = DiffSet {
            diff: TidList::of(&(0..100).collect::<Vec<_>>()),
            support: 5,
        };
        assert_eq!(
            d.join_bounded(&other, 6),
            None,
            "prefix support below minsup"
        );
    }

    #[test]
    fn bounded_difference_budget() {
        let diff = |a: &TidList, b: &TidList, budget: usize| {
            difference_inner(a.tids(), b.tids(), Some(budget)).0
        };
        let a = TidList::of(&[1, 2, 3, 4]);
        let b = TidList::of(&[2]);
        assert_eq!(diff(&a, &b, 3), Some(TidList::of(&[1, 3, 4])));
        assert_eq!(diff(&a, &b, 2), None);
        assert_eq!(diff(&a, &a, 0), Some(TidList::new()));
    }

    #[test]
    fn metered_join_counts_exact_comparisons() {
        let ta = TidList::of(&(0..100).collect::<Vec<_>>());
        let tb = TidList::of(&(0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let tc = TidList::of(&(0..100).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        let mut m = OpMeter::new();
        let full = dab.join_metered(&dac, &mut m);
        assert_eq!(full, dab.join(&dac));
        // One three-way probe per advance: never more than both inputs.
        assert!(m.tid_cmp > 0);
        assert!(m.tid_cmp <= (dab.diff.len() + dac.diff.len()) as u64);
        // Bounded + metered agrees and never does more work than the
        // unbounded join.
        let mut mb = OpMeter::new();
        let bounded = dab
            .join_bounded_metered(&dac, 1, &mut mb)
            .expect("frequent");
        assert_eq!(bounded, full);
        assert!(mb.tid_cmp <= m.tid_cmp);
    }

    #[test]
    fn fold_join_matches_tidlist_ground_truth() {
        // Class prefix P = A with four extensions; verify the multi-way
        // fold against tid-list intersections — including the case where
        // chained pairwise joins would get the support wrong.
        let ta = TidList::of(&(0..30).collect::<Vec<_>>());
        let exts: Vec<TidList> = [2u32, 3, 5, 7]
            .iter()
            .map(|&k| TidList::of(&(0..30).filter(|x| x % k != 1).collect::<Vec<_>>()))
            .collect();
        let diffs: Vec<DiffSet> = exts
            .iter()
            .map(|t| DiffSet::from_tidlists(&ta, t))
            .collect();
        // Ground truth: t(A) ∩ all extensions.
        let truth = exts.iter().fold(ta.clone(), |acc, t| acc.intersect(t));
        let rest: Vec<&DiffSet> = diffs[1..].iter().collect();
        let mut m = OpMeter::new();
        let folded = diffs[0]
            .fold_join_with(&rest, None, &mut m)
            .expect("unbounded fold always completes");
        assert_eq!(folded.support, truth.support());
        assert!(m.tid_cmp > 0);
        // Reconstruct: t(Px₁…x_k) = t(Px₁) − d rel Px₁.
        let tax1 = ta.intersect(&exts[0]);
        assert_eq!(reconstruct_tidlist(&tax1, &folded), truth);
        // Bounded fold agrees below/at the support and bails above it.
        for minsup in 1..=truth.support() {
            let b = diffs[0]
                .fold_join_with(&rest, Some(minsup), &mut OpMeter::new())
                .expect("frequent");
            assert_eq!(b, folded, "minsup {minsup}");
        }
        assert_eq!(
            diffs[0].fold_join_with(&rest, Some(truth.support() + 1), &mut OpMeter::new()),
            None
        );
        // Empty rest: the fold is just self.
        assert_eq!(
            diffs[0].fold_join_with(&[], None, &mut OpMeter::new()),
            Some(diffs[0].clone())
        );
    }

    #[test]
    fn bounded_root_conversion_agrees_with_full() {
        let tx = TidList::of(&(0..40).collect::<Vec<_>>());
        let ty = TidList::of(&(0..40).filter(|x| x % 4 != 0).collect::<Vec<_>>());
        let full = DiffSet::from_tidlists(&tx, &ty);
        for minsup in 1..=full.support {
            assert_eq!(
                DiffSet::from_tidlists_bounded(&tx, &ty, minsup),
                Some(full.clone()),
                "minsup {minsup}"
            );
        }
        assert_eq!(
            DiffSet::from_tidlists_bounded(&tx, &ty, full.support + 1),
            None
        );
        let mut m = OpMeter::new();
        let metered = DiffSet::from_tidlists_metered(&tx, &ty, &mut m);
        assert_eq!(metered, full);
        assert!(m.tid_cmp > 0);
    }
}
