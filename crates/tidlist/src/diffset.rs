//! Diffsets — the d-Eclat extension of the paper's tid-list clustering.
//!
//! Zaki's follow-up work ("Fast Vertical Mining Using Diffsets", KDD 2003)
//! keeps, for an itemset `P ∪ {x}`, the *difference* `d(Px) = t(P) − t(x)`
//! instead of the intersection `t(Px)`. Supports then obey
//!
//! ```text
//! support(Pxy) = support(Px) − |d(Pxy)|,   d(Pxy) = d(Py) − d(Px)
//! ```
//!
//! Deep in the lattice diffsets shrink much faster than tid-lists, cutting
//! memory and intersection cost. The paper lists better memory utilization
//! as ongoing work (§5.3, §9); this module implements that extension and
//! the `ablation` bench compares both representations.

use crate::TidList;

/// An itemset's vertical representation in diffset form: the support count
/// plus the tids of the *prefix* that do **not** contain the itemset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffSet {
    /// `d(P x)` — tids in `t(P)` but not in `t(P x)`.
    pub diff: TidList,
    /// Absolute support of the itemset this diffset represents.
    pub support: u32,
}

impl DiffSet {
    /// Root conversion: a 2-itemset's diffset relative to its first item.
    ///
    /// `d(xy) = t(x) − t(y)`; `support(xy)` is supplied by the caller (the
    /// initialization phase's triangular counts) or derived as
    /// `|t(x)| − |d(xy)|`.
    pub fn from_tidlists(t_prefix: &TidList, t_ext: &TidList) -> DiffSet {
        let diff = t_prefix.difference(t_ext);
        let support = t_prefix.support() - diff.support();
        DiffSet { diff, support }
    }

    /// Join two diffsets sharing the same prefix `P`: given `d(Px)` (self)
    /// and `d(Py)` (other) with `x < y`, produce `d(Pxy) = d(Py) − d(Px)`
    /// and `support(Pxy) = support(Px) − |d(Pxy)|`.
    pub fn join(&self, other: &DiffSet) -> DiffSet {
        let diff = other.diff.difference(&self.diff);
        let support = self.support - diff.support();
        DiffSet { diff, support }
    }

    /// Join with a short-circuit: `None` when `support(Pxy) < minsup`.
    ///
    /// Because `support(Pxy) = support(Px) − |d(Pxy)|`, the join can stop
    /// as soon as the diffset grows past `support(Px) − minsup`.
    pub fn join_bounded(&self, other: &DiffSet, minsup: u32) -> Option<DiffSet> {
        if self.support < minsup {
            return None;
        }
        let budget = (self.support - minsup) as usize;
        // Early-exit difference: abandon once the output exceeds budget.
        let out = bounded_difference(&other.diff, &self.diff, budget);
        match out {
            Some(diff) => {
                let support = self.support - diff.support();
                debug_assert!(support >= minsup);
                Some(DiffSet { diff, support })
            }
            None => None,
        }
    }
}

/// `a − b`, abandoning with `None` as soon as the output would exceed
/// `budget` elements.
fn bounded_difference(a: &TidList, b: &TidList, budget: usize) -> Option<TidList> {
    let mut out = TidList::with_capacity(budget.min(a.len()));
    let bt = b.tids();
    let mut j = 0usize;
    let mut n = 0usize;
    for &x in a.tids() {
        while j < bt.len() && bt[j] < x {
            j += 1;
        }
        if j >= bt.len() || bt[j] != x {
            n += 1;
            if n > budget {
                return None;
            }
            out.push(x);
        }
    }
    Some(out)
}

/// Cross-check helper: reconstruct `t(Px)` from `t(P)` and `d(Px)`.
pub fn reconstruct_tidlist(t_prefix: &TidList, d: &DiffSet) -> TidList {
    t_prefix.difference(&d.diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tidlists_basic() {
        let tx = TidList::of(&[1, 2, 3, 4, 5]);
        let ty = TidList::of(&[2, 4, 6]);
        let d = DiffSet::from_tidlists(&tx, &ty);
        assert_eq!(d.diff, TidList::of(&[1, 3, 5]));
        assert_eq!(d.support, 2); // {2,4}
        assert_eq!(reconstruct_tidlist(&tx, &d), TidList::of(&[2, 4]));
    }

    #[test]
    fn join_matches_tidlist_semantics() {
        // Prefix P = A. t(A)=1..10, t(B)={1,2,3,4,5,7}, t(C)={2,4,5,8,9}
        let ta = TidList::of(&(1..=10).collect::<Vec<_>>());
        let tb = TidList::of(&[1, 2, 3, 4, 5, 7]);
        let tc = TidList::of(&[2, 4, 5, 8, 9]);
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        let dabc = dab.join(&dac);
        // Ground truth via tid-lists:
        let tab = ta.intersect(&tb);
        let tabc = tab.intersect(&tc);
        assert_eq!(dabc.support, tabc.support());
        assert_eq!(reconstruct_tidlist(&tab, &dabc), tabc);
    }

    #[test]
    fn join_bounded_agrees_with_join() {
        let ta = TidList::of(&(0..50).collect::<Vec<_>>());
        let tb = TidList::of(&(0..50).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let tc = TidList::of(&(0..50).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        let full = dab.join(&dac);
        for minsup in 1..=full.support {
            let bounded = dab.join_bounded(&dac, minsup).expect("frequent");
            assert_eq!(bounded, full, "minsup {minsup}");
        }
        assert_eq!(dab.join_bounded(&dac, full.support + 1), None);
    }

    #[test]
    fn join_bounded_short_circuits_below_prefix_support() {
        let d = DiffSet {
            diff: TidList::new(),
            support: 5,
        };
        let other = DiffSet {
            diff: TidList::of(&(0..100).collect::<Vec<_>>()),
            support: 5,
        };
        assert_eq!(d.join_bounded(&other, 6), None, "prefix support below minsup");
    }

    #[test]
    fn bounded_difference_budget() {
        let a = TidList::of(&[1, 2, 3, 4]);
        let b = TidList::of(&[2]);
        assert_eq!(bounded_difference(&a, &b, 3), Some(TidList::of(&[1, 3, 4])));
        assert_eq!(bounded_difference(&a, &b, 2), None);
        assert_eq!(bounded_difference(&a, &a, 0), Some(TidList::new()));
    }
}
