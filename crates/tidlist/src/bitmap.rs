//! Fixed-width bitmap tid-sets: the dense-class representation.
//!
//! A [`BitmapSet`] stores an itemset's transactions as one bit per tid in
//! a fixed window of `u64` words, so a join is a word-wise `AND` plus a
//! `popcount` — branch-free, 64 tids per operation, and exactly what the
//! RDD-Eclat bitvector variants and the many-core FIM literature report
//! large wins from on dense databases. On sparse data the window is
//! mostly zeros and the tid-list merge wins; the `AutoDensity`
//! representation in the `eclat` crate picks per class.
//!
//! All members of one equivalence class share the same *frame* — a
//! word-aligned `[base, base + 64·words)` tid window covering every
//! member (see [`BitmapSet::frame_of`]). Joins only ever intersect, so
//! every set produced below `L2` stays inside its class frame and
//! word-wise `AND` is always aligned; [`BitmapSet::join`] asserts this.
//!
//! Metering: one `tid_cmp` op per word `AND`+`popcount` processed, so a
//! bitmap join of a `w`-word frame costs exactly `w` ops (or fewer when
//! the §5.3-style bound bails early) and lands in the same counter the
//! merge kernels feed — the ablation's representation axis compares one
//! op per 64-tid word against one op per element probe.

use crate::list::TidList;
use crate::set::TidSet;
use mining_types::{OpMeter, Tid};
use std::fmt;

/// Bits per bitmap word.
const WORD_BITS: u32 = 64;

/// A fixed-width bitmap over the tid window `[base, base + 64·words)`.
///
/// ```
/// use tidlist::{BitmapSet, TidList, TidSet};
/// let a = TidList::of(&[1, 5, 7, 10, 50]);
/// let b = TidList::of(&[1, 4, 7, 10, 11]);
/// let (base, words) = BitmapSet::frame_of([&a, &b]);
/// let ba = BitmapSet::from_tidlist(&a, base, words);
/// let bb = BitmapSet::from_tidlist(&b, base, words);
/// let joined = ba.join(&bb);
/// assert_eq!(joined.support(), 3);
/// assert_eq!(joined.to_tidlist(), a.intersect(&b));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitmapSet {
    /// First tid of the window; always a multiple of 64 so that bit `i`
    /// of word `w` is tid `base + 64·w + i`.
    base: u32,
    /// The window, fixed-width across a whole class subtree.
    words: Vec<u64>,
    /// Cached popcount — support reads must be O(1) like the other
    /// representations'.
    support: u32,
}

impl BitmapSet {
    /// The word-aligned frame `(base, words)` covering every tid of every
    /// list: `base` is the smallest tid rounded down to a word boundary
    /// (so distributed workers owning high tid ranges do not pay for the
    /// empty low range), `words` reaches past the largest tid.
    pub fn frame_of<'a, I>(lists: I) -> (Tid, usize)
    where
        I: IntoIterator<Item = &'a TidList>,
    {
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        let mut any = false;
        for l in lists {
            if let (Some(&first), Some(&last)) = (l.tids().first(), l.tids().last()) {
                any = true;
                lo = lo.min(first.0);
                hi = hi.max(last.0);
            }
        }
        if !any {
            return (Tid(0), 0);
        }
        let base = lo - lo % WORD_BITS;
        // hi − base < 2^32 always fits; +1 bit, rounded up to words.
        let span = (hi - base) as u64 + 1;
        (Tid(base), span.div_ceil(u64::from(WORD_BITS)) as usize)
    }

    /// Build the bitmap of `list` inside the given frame.
    ///
    /// # Panics
    /// Panics if any tid falls outside `[base, base + 64·words)`.
    pub fn from_tidlist(list: &TidList, base: Tid, words: usize) -> Self {
        assert_eq!(base.0 % WORD_BITS, 0, "frame base must be word-aligned");
        let mut v = vec![0u64; words];
        for &t in list.tids() {
            let off = t.0.checked_sub(base.0).expect("tid below the bitmap frame");
            let w = (off / WORD_BITS) as usize;
            assert!(w < words, "tid beyond the bitmap frame");
            v[w] |= 1u64 << (off % WORD_BITS);
        }
        BitmapSet {
            base: base.0,
            words: v,
            support: list.support(),
        }
    }

    /// Exact support (cached popcount).
    #[inline]
    pub fn support(&self) -> u32 {
        self.support
    }

    /// Window width in words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Decode back to a sorted tid-list (tests and spot checks).
    pub fn to_tidlist(&self) -> TidList {
        let mut out = TidList::with_capacity(self.support as usize);
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = bits.trailing_zeros();
                out.push(Tid(self.base + w as u32 * WORD_BITS + i));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Word-wise `AND` + popcount. With `minsup = Some(s)`, applies the
    /// §5.3-style bound — after word `k`, at most `64·(w−k−1)` more bits
    /// can match, so the join bails the moment
    /// `count + 64·remaining < s` — and returns `None` exactly when the
    /// intersection's support is below `s`. Returns the word ops spent.
    fn and_inner(&self, other: &Self, minsup: Option<u32>) -> (Option<BitmapSet>, u64) {
        assert_eq!(
            (self.base, self.words.len()),
            (other.base, other.words.len()),
            "bitmap joins require class siblings sharing one frame"
        );
        let n = self.words.len();
        let mut out = vec![0u64; n];
        let mut count = 0u32;
        let mut ops = 0u64;
        for (k, slot) in out.iter_mut().enumerate() {
            let w = self.words[k] & other.words[k];
            ops += 1;
            count += w.count_ones();
            *slot = w;
            if let Some(s) = minsup {
                let remaining = (n - k - 1) as u64 * u64::from(WORD_BITS);
                if u64::from(count) + remaining < u64::from(s) {
                    return (None, ops);
                }
            }
        }
        if minsup.is_some_and(|s| count < s) {
            return (None, ops);
        }
        (
            Some(BitmapSet {
                base: self.base,
                words: out,
                support: count,
            }),
            ops,
        )
    }
}

impl TidSet for BitmapSet {
    fn support(&self) -> u32 {
        self.support
    }

    /// Bytes of the fixed window — what the representation actually holds
    /// live, which is precisely the dense-vs-sparse trade the ablation
    /// and the peak-bytes statistic measure.
    fn byte_size(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    fn join(&self, other: &Self) -> Self {
        let (r, _) = self.and_inner(other, None);
        r.expect("unbounded bitmap join always completes")
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        let (r, _) = self.and_inner(other, Some(minsup));
        r
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        let (r, ops) = self.and_inner(other, None);
        meter.tid_cmp += ops;
        r.expect("unbounded bitmap join always completes")
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        let (r, ops) = self.and_inner(other, Some(minsup));
        meter.tid_cmp += ops;
        r
    }
}

impl fmt::Debug for BitmapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "B[base={},words={},{:?}]",
            self.base,
            self.words.len(),
            self.to_tidlist()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: &[u32], b: &[u32]) -> (BitmapSet, BitmapSet, TidList) {
        let (ta, tb) = (TidList::of(a), TidList::of(b));
        let (base, words) = BitmapSet::frame_of([&ta, &tb]);
        (
            BitmapSet::from_tidlist(&ta, base, words),
            BitmapSet::from_tidlist(&tb, base, words),
            ta.intersect(&tb),
        )
    }

    #[test]
    fn roundtrip_and_join_match_tidlist() {
        let (ba, bb, truth) = pair(&[1, 5, 7, 10, 50], &[1, 4, 7, 10, 11]);
        assert_eq!(ba.join(&bb).to_tidlist(), truth);
        assert_eq!(ba.join(&bb).support(), 3);
        let mut m = OpMeter::new();
        assert_eq!(ba.join_metered(&bb, &mut m).to_tidlist(), truth);
        assert_eq!(m.tid_cmp, ba.num_words() as u64);
    }

    #[test]
    fn frame_is_word_aligned_and_offset() {
        // High tid range: the frame must not start at zero.
        let t = TidList::of(&[1000, 1001, 1100]);
        let (base, words) = BitmapSet::frame_of([&t]);
        assert_eq!(base.0 % 64, 0);
        assert!(base.0 <= 1000 && base.0 + 64 > 1000 - 63);
        assert_eq!(words, ((1100 - base.0) as usize) / 64 + 1);
        let b = BitmapSet::from_tidlist(&t, base, words);
        assert_eq!(b.to_tidlist(), t);
        assert_eq!(b.byte_size(), words as u64 * 8);
    }

    #[test]
    fn empty_frame_and_empty_lists() {
        let e = TidList::new();
        let (base, words) = BitmapSet::frame_of([&e, &e]);
        assert_eq!((base, words), (Tid(0), 0));
        let b = BitmapSet::from_tidlist(&e, base, words);
        assert_eq!(b.support(), 0);
        assert_eq!(b.join(&b).support(), 0);
        assert_eq!(b.join_bounded(&b, 1), None);
        assert!(b.join_bounded(&b, 0).is_some());
    }

    #[test]
    fn bounded_is_none_iff_infrequent() {
        let (ba, bb, truth) = pair(
            &(0..200).collect::<Vec<_>>(),
            &(0..400).filter(|x| x % 2 == 0).collect::<Vec<_>>(),
        );
        let s = truth.support();
        assert!(s > 0);
        for minsup in [0, 1, s - 1, s] {
            assert_eq!(
                ba.join_bounded(&bb, minsup).map(|r| r.support()),
                Some(s),
                "minsup {minsup}"
            );
        }
        assert_eq!(ba.join_bounded(&bb, s + 1), None);
        let mut m = OpMeter::new();
        assert_eq!(
            ba.join_bounded_metered(&bb, s, &mut m).unwrap().support(),
            s
        );
        assert!(m.tid_cmp > 0);
    }

    #[test]
    fn bounded_bails_early_on_hopeless_joins() {
        // Two disjoint halves of a wide window: with a high minsup the
        // word bound trips long before the last word.
        let a: Vec<u32> = (0..6400).collect();
        let b: Vec<u32> = (6400..12800).collect();
        let (ba, bb, _) = pair(&a, &b);
        let mut bounded = OpMeter::new();
        let mut full = OpMeter::new();
        // The word bound credits 64 possible bits per remaining word, so
        // with minsup = |a| it trips right after a's last populated word
        // (~halfway through the 200-word frame) instead of walking b's
        // empty half too.
        assert_eq!(ba.join_bounded_metered(&bb, 6400, &mut bounded), None);
        ba.join_metered(&bb, &mut full);
        assert!(
            bounded.tid_cmp <= full.tid_cmp / 2 + 2,
            "bound should save word ops: {} vs {}",
            bounded.tid_cmp,
            full.tid_cmp
        );
    }

    #[test]
    fn fold_join_chains_pairwise() {
        // Bitmaps are prefix-free: the default pairwise fold is exact.
        let lists: Vec<TidList> = [2u32, 3, 5]
            .iter()
            .map(|&k| TidList::of(&(0..120).filter(|x| x % k != 1).collect::<Vec<_>>()))
            .collect();
        let (base, words) = BitmapSet::frame_of(lists.iter());
        let maps: Vec<BitmapSet> = lists
            .iter()
            .map(|t| BitmapSet::from_tidlist(t, base, words))
            .collect();
        let truth = lists[1..]
            .iter()
            .fold(lists[0].clone(), |a, t| a.intersect(t));
        let rest: Vec<&BitmapSet> = maps[1..].iter().collect();
        assert_eq!(maps[0].fold_join(&rest).to_tidlist(), truth);
        for minsup in 1..=truth.support() + 2 {
            assert_eq!(
                maps[0]
                    .fold_join_bounded(&rest, minsup)
                    .map(|b| b.support()),
                (truth.support() >= minsup).then_some(truth.support()),
                "minsup {minsup}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sharing one frame")]
    fn mismatched_frames_panic() {
        let a = BitmapSet::from_tidlist(&TidList::of(&[1]), Tid(0), 1);
        let b = BitmapSet::from_tidlist(&TidList::of(&[1]), Tid(0), 2);
        a.join(&b);
    }

    #[test]
    fn tid_u32_max_fits_in_frame() {
        let t = TidList::of(&[u32::MAX - 1, u32::MAX]);
        let (base, words) = BitmapSet::frame_of([&t]);
        let b = BitmapSet::from_tidlist(&t, base, words);
        assert_eq!(b.to_tidlist(), t);
        assert_eq!(b.join(&b).to_tidlist(), t);
    }
}
