//! The [`TidSet`] abstraction: anything that can play the role of an
//! itemset's vertical representation inside the `Compute_Frequent`
//! recursion (Figure 3).
//!
//! The paper's kernel only ever does three things with a member's
//! vertical data: read its support, join it with a sibling (optionally
//! short-circuited against `minsup`, §5.3), and price its bytes for the
//! scheduling/exchange cost model (§5.2.1, §6.3). Abstracting exactly
//! those operations lets one generic recursion serve tid-lists
//! ([`TidList`]), d-Eclat diffsets ([`DiffSet`]), and the mid-recursion
//! switching representation ([`crate::adaptive::AdaptiveSet`]).

use crate::diffset::DiffSet;
use crate::{IntersectOutcome, TidList};
use mining_types::OpMeter;

/// A vertical representation of one itemset, joinable with a sibling
/// sharing the same equivalence-class prefix.
///
/// # Contract
/// For members `x`, `y` of the same class (in member order, `x` before
/// `y`), `x.join(&y)` represents the candidate `x ∪ y` and reports its
/// exact support. `join_bounded` returns `None` **iff** that support is
/// below `minsup`, and otherwise equals `join`'s result. The metered
/// variants are behaviorally identical and additionally add their element
/// comparisons to `meter.tid_cmp`, so ablations across representations
/// (A1) compare like with like.
pub trait TidSet: Clone + std::fmt::Debug {
    /// Exact support of the represented itemset.
    fn support(&self) -> u32;

    /// Serialized size in bytes — what the §6.3 exchange and the
    /// scheduling cost model charge for this member.
    fn byte_size(&self) -> u64;

    /// Join with the next member of the class (unbounded).
    fn join(&self, other: &Self) -> Self;

    /// Join, abandoning early when the result provably cannot reach
    /// `minsup` (§5.3). `None` exactly when the candidate is infrequent.
    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self>;

    /// [`TidSet::join`] with comparison metering.
    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self;

    /// [`TidSet::join_bounded`] with comparison metering.
    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self>;

    /// True when this member has switched representation mid-recursion
    /// (only [`crate::adaptive::AdaptiveSet`] ever does). The stats layer
    /// compares parent vs child to count switch events.
    fn is_switched(&self) -> bool {
        false
    }

    /// Multi-way join: fold `self` with every member of `rest`, producing
    /// the representation of `self ∪ rest[0] ∪ … ∪ rest[k-1]`. This is the
    /// MaxEclat look-ahead primitive (§5): one call answers "is the whole
    /// class union frequent?".
    ///
    /// # Contract
    /// All operands must be members of the **same equivalence class**, in
    /// member order with `self` first. The default implementation chains
    /// pairwise [`TidSet::join`]s, which is correct only when each partial
    /// join result is itself a valid class sibling of the remaining
    /// members — true for prefix-free representations like tid-lists,
    /// **wrong** for prefix-relative ones ([`DiffSet`] diffs are relative
    /// to the shared class prefix, so after one join the accumulator no
    /// longer shares a prefix with the rest). Prefix-relative
    /// representations override this with a multi-way kernel.
    fn fold_join(&self, rest: &[&Self]) -> Self {
        let mut acc = self.clone();
        for m in rest {
            acc = acc.join(m);
        }
        acc
    }

    /// [`TidSet::fold_join`], abandoning with `None` as soon as the fold
    /// proves the union cannot reach `minsup` (§5.3 applied per step).
    /// `None` exactly when the union's support is below `minsup`.
    fn fold_join_bounded(&self, rest: &[&Self], minsup: u32) -> Option<Self> {
        let mut acc = self.clone();
        for m in rest {
            acc = acc.join_bounded(m, minsup)?;
        }
        (acc.support() >= minsup).then_some(acc)
    }

    /// [`TidSet::fold_join`] with comparison metering.
    fn fold_join_metered(&self, rest: &[&Self], meter: &mut OpMeter) -> Self {
        let mut acc = self.clone();
        for m in rest {
            acc = acc.join_metered(m, meter);
        }
        acc
    }

    /// [`TidSet::fold_join_bounded`] with comparison metering.
    fn fold_join_bounded_metered(
        &self,
        rest: &[&Self],
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<Self> {
        let mut acc = self.clone();
        for m in rest {
            acc = acc.join_bounded_metered(m, minsup, meter)?;
        }
        (acc.support() >= minsup).then_some(acc)
    }
}

impl TidSet for TidList {
    fn support(&self) -> u32 {
        TidList::support(self)
    }

    fn byte_size(&self) -> u64 {
        TidList::byte_size(self)
    }

    fn join(&self, other: &Self) -> Self {
        self.intersect(other)
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        self.intersect_bounded(other, minsup).into_frequent()
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        self.intersect_metered(other, meter)
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        match self.intersect_bounded_metered(other, minsup, meter) {
            IntersectOutcome::Frequent(t) => Some(t),
            IntersectOutcome::Infrequent => None,
        }
    }
}

impl TidSet for DiffSet {
    fn support(&self) -> u32 {
        self.support
    }

    fn byte_size(&self) -> u64 {
        DiffSet::byte_size(self)
    }

    fn join(&self, other: &Self) -> Self {
        DiffSet::join(self, other)
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        DiffSet::join_bounded(self, other, minsup)
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        DiffSet::join_metered(self, other, meter)
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        DiffSet::join_bounded_metered(self, other, minsup, meter)
    }

    // Diffsets are prefix-relative, so the pairwise default fold is wrong
    // for them (see `DiffSet::fold_join_with`): override with the
    // union-based multi-way kernel.

    fn fold_join(&self, rest: &[&Self]) -> Self {
        self.fold_join_with(rest, None, &mut OpMeter::new())
            .expect("unbounded fold always completes")
    }

    fn fold_join_bounded(&self, rest: &[&Self], minsup: u32) -> Option<Self> {
        self.fold_join_with(rest, Some(minsup), &mut OpMeter::new())
    }

    fn fold_join_metered(&self, rest: &[&Self], meter: &mut OpMeter) -> Self {
        self.fold_join_with(rest, None, meter)
            .expect("unbounded fold always completes")
    }

    fn fold_join_bounded_metered(
        &self,
        rest: &[&Self],
        minsup: u32,
        meter: &mut OpMeter,
    ) -> Option<Self> {
        self.fold_join_with(rest, Some(minsup), meter)
    }
}

/// A [`TidList`] whose joins go through the adaptive galloping kernel
/// ([`TidList::intersect_adaptive`]): exponential search through the longer
/// operand when the lengths are skewed by more than 16×, two-pointer merge
/// otherwise. Enabled by `EclatConfig::gallop` in the mining kernel.
///
/// Galloping has no §5.3 short-circuit analogue (it never walks the
/// operands linearly), so the bounded joins compute the full intersection
/// and then apply the threshold — the trait contract (`None` iff
/// infrequent) still holds exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GallopList(pub TidList);

impl TidSet for GallopList {
    fn support(&self) -> u32 {
        self.0.support()
    }

    fn byte_size(&self) -> u64 {
        self.0.byte_size()
    }

    fn join(&self, other: &Self) -> Self {
        GallopList(self.0.intersect_adaptive(&other.0))
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        let out = self.join(other);
        (out.support() >= minsup).then_some(out)
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        GallopList(self.0.intersect_adaptive_metered(&other.0, meter))
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        let out = self.join_metered(other, meter);
        (out.support() >= minsup).then_some(out)
    }
}

/// A [`TidList`] whose joins run the explicitly vectorized chunked
/// kernels: the 8-wide unrolled block merge
/// ([`TidList::intersect_chunked`]) on balanced operands, the
/// chunked-final-block galloping kernel
/// ([`TidList::gallop_intersect_chunked`]) when the lengths are skewed by
/// more than 16×. This is the sparse side of the `auto-density`
/// representation — dense classes go to [`crate::BitmapSet`] instead.
///
/// The bounded joins keep the §5.3 short-circuit on the merge path
/// (re-checked per block); the galloping path computes the full
/// intersection and thresholds, like [`GallopList`]. Either way the trait
/// contract (`None` iff infrequent) holds exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkedList(pub TidList);

impl ChunkedList {
    fn skewed(&self, other: &Self) -> bool {
        self.0.gallop_pays(&other.0)
    }
}

impl TidSet for ChunkedList {
    fn support(&self) -> u32 {
        self.0.support()
    }

    fn byte_size(&self) -> u64 {
        self.0.byte_size()
    }

    fn join(&self, other: &Self) -> Self {
        ChunkedList(self.0.intersect_chunked_adaptive(&other.0))
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        if self.skewed(other) {
            let out = self.join(other);
            return (out.support() >= minsup).then_some(out);
        }
        self.0
            .intersect_chunked_bounded(&other.0, minsup)
            .into_frequent()
            .map(ChunkedList)
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        ChunkedList(self.0.intersect_chunked_adaptive_metered(&other.0, meter))
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        if self.skewed(other) {
            let out = self.join_metered(other, meter);
            return (out.support() >= minsup).then_some(out);
        }
        match self
            .0
            .intersect_chunked_bounded_metered(&other.0, minsup, meter)
        {
            IntersectOutcome::Frequent(t) => Some(ChunkedList(t)),
            IntersectOutcome::Infrequent => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<S: TidSet>(a: &S, b: &S, minsup: u32) -> (u32, Option<u32>) {
        let full = a.join(b);
        let bounded = a.join_bounded(b, minsup);
        let mut m = OpMeter::new();
        assert_eq!(a.join_metered(b, &mut m).support(), full.support());
        (full.support(), bounded.map(|s| s.support()))
    }

    #[test]
    fn tidlist_and_diffset_agree_through_the_trait() {
        // members of class [A]: t(AB), t(AC) with t(A) = 0..20
        let ta = TidList::of(&(0..20).collect::<Vec<_>>());
        let tb = TidList::of(&(0..20).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let tc = TidList::of(&(0..20).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let tab = ta.intersect(&tb);
        let tac = ta.intersect(&tc);
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        for minsup in 1..=8 {
            let (ts, tbnd) = generic_roundtrip(&tab, &tac, minsup);
            let (ds, dbnd) = generic_roundtrip(&dab, &dac, minsup);
            assert_eq!(ts, ds, "support minsup {minsup}");
            assert_eq!(tbnd, dbnd, "bounded minsup {minsup}");
        }
    }

    /// A 5-member class over prefix A with tid-list ground truth for the
    /// full union — the shape the MaxEclat look-ahead folds.
    fn lookahead_class() -> (Vec<TidList>, Vec<DiffSet>, TidList) {
        let ta = TidList::of(&(0..60).collect::<Vec<_>>());
        let exts: Vec<TidList> = [2u32, 3, 5, 7, 11]
            .iter()
            .map(|&k| TidList::of(&(0..60).filter(|x| x % k != 1).collect::<Vec<_>>()))
            .collect();
        let tids: Vec<TidList> = exts.iter().map(|t| ta.intersect(t)).collect();
        let diffs: Vec<DiffSet> = exts
            .iter()
            .map(|t| DiffSet::from_tidlists(&ta, t))
            .collect();
        let truth = tids
            .iter()
            .skip(1)
            .fold(tids[0].clone(), |a, t| a.intersect(t));
        (tids, diffs, truth)
    }

    #[test]
    fn fold_join_agrees_across_representations() {
        let (tids, diffs, truth) = lookahead_class();
        let t_rest: Vec<&TidList> = tids[1..].iter().collect();
        let d_rest: Vec<&DiffSet> = diffs[1..].iter().collect();
        let mut mt = OpMeter::new();
        let mut md = OpMeter::new();
        assert_eq!(tids[0].fold_join(&t_rest), truth);
        assert_eq!(
            tids[0].fold_join_metered(&t_rest, &mut mt).support(),
            truth.support()
        );
        assert_eq!(diffs[0].fold_join(&d_rest).support, truth.support());
        assert_eq!(
            diffs[0].fold_join_metered(&d_rest, &mut md).support,
            truth.support()
        );
        assert!(mt.tid_cmp > 0 && md.tid_cmp > 0);
        for minsup in 1..=truth.support() + 2 {
            let tb = tids[0]
                .fold_join_bounded(&t_rest, minsup)
                .map(|s| s.support());
            let db = diffs[0]
                .fold_join_bounded(&d_rest, minsup)
                .map(|s| s.support());
            let expect = (truth.support() >= minsup).then_some(truth.support());
            assert_eq!(tb, expect, "tidlist minsup {minsup}");
            assert_eq!(db, expect, "diffset minsup {minsup}");
            let mut m = OpMeter::new();
            assert_eq!(
                diffs[0]
                    .fold_join_bounded_metered(&d_rest, minsup, &mut m)
                    .map(|s| s.support()),
                expect,
                "metered diffset minsup {minsup}"
            );
        }
    }

    #[test]
    fn gallop_list_agrees_with_tidlist_through_the_trait() {
        let (tids, _, truth) = lookahead_class();
        let galls: Vec<GallopList> = tids.iter().cloned().map(GallopList).collect();
        let g_rest: Vec<&GallopList> = galls[1..].iter().collect();
        let mut m = OpMeter::new();
        assert_eq!(galls[0].fold_join(&g_rest).0, truth);
        assert_eq!(galls[0].fold_join_metered(&g_rest, &mut m).0, truth);
        assert!(m.tid_cmp > 0);
        for minsup in 1..=truth.support() + 2 {
            assert_eq!(
                galls[0]
                    .fold_join_bounded(&g_rest, minsup)
                    .map(|g| g.support()),
                (truth.support() >= minsup).then_some(truth.support()),
                "minsup {minsup}"
            );
        }
        // Skewed pair exercises the galloping branch through the trait.
        let a = GallopList(TidList::of(&[5, 100, 250]));
        let b = GallopList(TidList::of(&(0..100_000).step_by(5).collect::<Vec<_>>()));
        assert_eq!(a.join(&b).0, a.0.intersect(&b.0));
    }

    #[test]
    fn byte_size_hooks() {
        let t = TidList::of(&[1, 2, 3]);
        assert_eq!(TidSet::byte_size(&t), 12);
        let d = DiffSet {
            diff: TidList::of(&[4, 5]),
            support: 9,
        };
        assert_eq!(TidSet::byte_size(&d), 12); // 2 tids + support word
    }
}
