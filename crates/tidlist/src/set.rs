//! The [`TidSet`] abstraction: anything that can play the role of an
//! itemset's vertical representation inside the `Compute_Frequent`
//! recursion (Figure 3).
//!
//! The paper's kernel only ever does three things with a member's
//! vertical data: read its support, join it with a sibling (optionally
//! short-circuited against `minsup`, §5.3), and price its bytes for the
//! scheduling/exchange cost model (§5.2.1, §6.3). Abstracting exactly
//! those operations lets one generic recursion serve tid-lists
//! ([`TidList`]), d-Eclat diffsets ([`DiffSet`]), and the mid-recursion
//! switching representation ([`crate::adaptive::AdaptiveSet`]).

use crate::diffset::DiffSet;
use crate::{IntersectOutcome, TidList};
use mining_types::OpMeter;

/// A vertical representation of one itemset, joinable with a sibling
/// sharing the same equivalence-class prefix.
///
/// # Contract
/// For members `x`, `y` of the same class (in member order, `x` before
/// `y`), `x.join(&y)` represents the candidate `x ∪ y` and reports its
/// exact support. `join_bounded` returns `None` **iff** that support is
/// below `minsup`, and otherwise equals `join`'s result. The metered
/// variants are behaviorally identical and additionally add their element
/// comparisons to `meter.tid_cmp`, so ablations across representations
/// (A1) compare like with like.
pub trait TidSet: Clone + std::fmt::Debug {
    /// Exact support of the represented itemset.
    fn support(&self) -> u32;

    /// Serialized size in bytes — what the §6.3 exchange and the
    /// scheduling cost model charge for this member.
    fn byte_size(&self) -> u64;

    /// Join with the next member of the class (unbounded).
    fn join(&self, other: &Self) -> Self;

    /// Join, abandoning early when the result provably cannot reach
    /// `minsup` (§5.3). `None` exactly when the candidate is infrequent.
    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self>;

    /// [`TidSet::join`] with comparison metering.
    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self;

    /// [`TidSet::join_bounded`] with comparison metering.
    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self>;

    /// True when this member has switched representation mid-recursion
    /// (only [`crate::adaptive::AdaptiveSet`] ever does). The stats layer
    /// compares parent vs child to count switch events.
    fn is_switched(&self) -> bool {
        false
    }
}

impl TidSet for TidList {
    fn support(&self) -> u32 {
        TidList::support(self)
    }

    fn byte_size(&self) -> u64 {
        TidList::byte_size(self)
    }

    fn join(&self, other: &Self) -> Self {
        self.intersect(other)
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        self.intersect_bounded(other, minsup).into_frequent()
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        self.intersect_metered(other, meter)
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        match self.intersect_bounded_metered(other, minsup, meter) {
            IntersectOutcome::Frequent(t) => Some(t),
            IntersectOutcome::Infrequent => None,
        }
    }
}

impl TidSet for DiffSet {
    fn support(&self) -> u32 {
        self.support
    }

    fn byte_size(&self) -> u64 {
        DiffSet::byte_size(self)
    }

    fn join(&self, other: &Self) -> Self {
        DiffSet::join(self, other)
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        DiffSet::join_bounded(self, other, minsup)
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        DiffSet::join_metered(self, other, meter)
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        DiffSet::join_bounded_metered(self, other, minsup, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<S: TidSet>(a: &S, b: &S, minsup: u32) -> (u32, Option<u32>) {
        let full = a.join(b);
        let bounded = a.join_bounded(b, minsup);
        let mut m = OpMeter::new();
        assert_eq!(a.join_metered(b, &mut m).support(), full.support());
        (full.support(), bounded.map(|s| s.support()))
    }

    #[test]
    fn tidlist_and_diffset_agree_through_the_trait() {
        // members of class [A]: t(AB), t(AC) with t(A) = 0..20
        let ta = TidList::of(&(0..20).collect::<Vec<_>>());
        let tb = TidList::of(&(0..20).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let tc = TidList::of(&(0..20).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let tab = ta.intersect(&tb);
        let tac = ta.intersect(&tc);
        let dab = DiffSet::from_tidlists(&ta, &tb);
        let dac = DiffSet::from_tidlists(&ta, &tc);
        for minsup in 1..=8 {
            let (ts, tbnd) = generic_roundtrip(&tab, &tac, minsup);
            let (ds, dbnd) = generic_roundtrip(&dab, &dac, minsup);
            assert_eq!(ts, ds, "support minsup {minsup}");
            assert_eq!(tbnd, dbnd, "bounded minsup {minsup}");
        }
    }

    #[test]
    fn byte_size_hooks() {
        let t = TidList::of(&[1, 2, 3]);
        assert_eq!(TidSet::byte_size(&t), 12);
        let d = DiffSet {
            diff: TidList::of(&[4, 5]),
            support: 9,
        };
        assert_eq!(TidSet::byte_size(&d), 12); // 2 tids + support word
    }
}
