//! [`AdaptiveSet`]: a [`TidSet`] that starts as a tid-list and switches
//! to the diffset representation mid-recursion.
//!
//! Tid-lists are compact near the top of the lattice (short lists, sparse
//! overlap); diffsets win deep down, where siblings share almost all of
//! their tids and the differences are near-empty (§5.3's
//! memory-utilization remark, Zaki's d-Eclat follow-up). `AdaptiveSet`
//! carries a per-member `fuel` counter: each tid-list join burns one unit,
//! and the join performed at zero fuel *converts* — it produces
//! `d(P ∪ xy) = t(Px) − t(Py)` via [`DiffSet::from_tidlists`], after
//! which the subtree continues purely in diffset form. Fuel `0` therefore
//! means "switch at the first join", i.e. a pure-diffset run, and a fuel
//! larger than the recursion depth never switches at all.
//!
//! All members of one equivalence class share the same fuel (they were
//! produced by the same number of joins), so a join never sees mixed
//! representations — that invariant is asserted.

use crate::diffset::DiffSet;
use crate::set::TidSet;
use crate::TidList;
use mining_types::OpMeter;

/// Vertical representation that switches from tid-lists to diffsets after
/// a configured number of join levels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdaptiveSet {
    /// Still in tid-list form; `fuel` joins remain before the switch.
    Tids {
        /// The member's tid-list.
        tids: TidList,
        /// Remaining tid-list joins before converting to diffsets.
        fuel: u32,
    },
    /// Switched: diffset relative to the prefix at conversion depth.
    Diff(DiffSet),
}

impl AdaptiveSet {
    /// Wrap an `L2` member's tid-list with a switch budget. `fuel = 0`
    /// converts on the very first join (pure d-Eclat below `L2`).
    pub fn with_fuel(tids: TidList, fuel: u32) -> AdaptiveSet {
        AdaptiveSet::Tids { tids, fuel }
    }

    /// True once the member has switched to diffset form.
    pub fn is_diffset(&self) -> bool {
        matches!(self, AdaptiveSet::Diff(_))
    }
}

/// Both operands of a join, which the class invariant guarantees are in
/// the same representation.
enum Pair<'a> {
    Tids(&'a TidList, &'a TidList, u32),
    Diffs(&'a DiffSet, &'a DiffSet),
}

fn pair<'a>(a: &'a AdaptiveSet, b: &'a AdaptiveSet) -> Pair<'a> {
    match (a, b) {
        (AdaptiveSet::Tids { tids: ta, fuel }, AdaptiveSet::Tids { tids: tb, .. }) => {
            Pair::Tids(ta, tb, *fuel)
        }
        (AdaptiveSet::Diff(da), AdaptiveSet::Diff(db)) => Pair::Diffs(da, db),
        _ => unreachable!(
            "class members must share a representation: all members of an \
             equivalence class are produced by the same number of joins"
        ),
    }
}

impl TidSet for AdaptiveSet {
    fn support(&self) -> u32 {
        match self {
            AdaptiveSet::Tids { tids, .. } => tids.support(),
            AdaptiveSet::Diff(d) => d.support,
        }
    }

    fn byte_size(&self) -> u64 {
        match self {
            AdaptiveSet::Tids { tids, .. } => tids.byte_size(),
            AdaptiveSet::Diff(d) => d.byte_size(),
        }
    }

    fn join(&self, other: &Self) -> Self {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => AdaptiveSet::Tids {
                tids: ta.intersect(tb),
                fuel: fuel - 1,
            },
            Pair::Tids(ta, tb, _) => AdaptiveSet::Diff(DiffSet::from_tidlists(ta, tb)),
            Pair::Diffs(da, db) => AdaptiveSet::Diff(da.join(db)),
        }
    }

    fn join_bounded(&self, other: &Self, minsup: u32) -> Option<Self> {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => ta
                .intersect_bounded(tb, minsup)
                .into_frequent()
                .map(|tids| AdaptiveSet::Tids {
                    tids,
                    fuel: fuel - 1,
                }),
            Pair::Tids(ta, tb, _) => {
                DiffSet::from_tidlists_bounded(ta, tb, minsup).map(AdaptiveSet::Diff)
            }
            Pair::Diffs(da, db) => da.join_bounded(db, minsup).map(AdaptiveSet::Diff),
        }
    }

    fn join_metered(&self, other: &Self, meter: &mut OpMeter) -> Self {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => AdaptiveSet::Tids {
                tids: ta.intersect_metered(tb, meter),
                fuel: fuel - 1,
            },
            Pair::Tids(ta, tb, _) => {
                AdaptiveSet::Diff(DiffSet::from_tidlists_metered(ta, tb, meter))
            }
            Pair::Diffs(da, db) => AdaptiveSet::Diff(da.join_metered(db, meter)),
        }
    }

    fn join_bounded_metered(&self, other: &Self, minsup: u32, meter: &mut OpMeter) -> Option<Self> {
        match pair(self, other) {
            Pair::Tids(ta, tb, fuel) if fuel > 0 => {
                match ta.intersect_bounded_metered(tb, minsup, meter) {
                    crate::IntersectOutcome::Frequent(tids) => Some(AdaptiveSet::Tids {
                        tids,
                        fuel: fuel - 1,
                    }),
                    crate::IntersectOutcome::Infrequent => None,
                }
            }
            Pair::Tids(ta, tb, _) => {
                DiffSet::from_tidlists_bounded_metered(ta, tb, minsup, meter).map(AdaptiveSet::Diff)
            }
            Pair::Diffs(da, db) => da
                .join_bounded_metered(db, minsup, meter)
                .map(AdaptiveSet::Diff),
        }
    }

    fn is_switched(&self) -> bool {
        self.is_diffset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists() -> (TidList, TidList, TidList) {
        let ta = TidList::of(&(0..60).collect::<Vec<_>>());
        let tb = TidList::of(&(0..60).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let tc = TidList::of(&(0..60).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        (ta, tb, tc)
    }

    #[test]
    fn fuel_counts_down_then_switches() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 1);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 1);
        let j1 = a.join(&b);
        assert!(!j1.is_diffset(), "fuel 1: first join stays tid-list");
        match &j1 {
            AdaptiveSet::Tids { fuel, .. } => assert_eq!(*fuel, 0),
            _ => unreachable!(),
        }
        // Second-level join (fuel exhausted) converts.
        let sibling = AdaptiveSet::with_fuel(ta.intersect(&tb), 1).join(&b);
        let j2 = j1.join(&sibling);
        assert!(j2.is_diffset(), "fuel 0: join converts to diffset");
    }

    #[test]
    fn supports_agree_with_pure_tidlists_across_fuel() {
        let (ta, tb, tc) = lists();
        let tab = ta.intersect(&tb);
        let tac = ta.intersect(&tc);
        let expected = tab.intersect(&tac).support();
        for fuel in [0u32, 1, 2, 10] {
            let a = AdaptiveSet::with_fuel(tab.clone(), fuel);
            let b = AdaptiveSet::with_fuel(tac.clone(), fuel);
            assert_eq!(a.join(&b).support(), expected, "fuel {fuel}");
            for minsup in 1..=expected + 2 {
                let bounded = a.join_bounded(&b, minsup).map(|s| s.support());
                assert_eq!(
                    bounded,
                    (expected >= minsup).then_some(expected),
                    "fuel {fuel} minsup {minsup}"
                );
                let mut m = OpMeter::new();
                let metered = a
                    .join_bounded_metered(&b, minsup, &mut m)
                    .map(|s| s.support());
                assert_eq!(bounded, metered);
            }
        }
    }

    #[test]
    fn diffset_joins_after_switch_agree() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 0);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 0);
        let ab = a.join(&b); // converts
        assert!(ab.is_diffset());
        // Join two diffset members of the next class.
        let c = AdaptiveSet::with_fuel(ta.clone(), 0);
        let d = AdaptiveSet::with_fuel(tb.clone(), 0);
        let cd = c.join(&d);
        assert!(cd.is_diffset());
        assert_eq!(cd.support(), ta.intersect(&tb).support());
    }

    #[test]
    fn is_switched_tracks_representation() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 0);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 0);
        assert!(!a.is_switched());
        assert!(a.join(&b).is_switched());
        // Plain tid-lists / diffsets report false via the trait default.
        assert!(!TidSet::is_switched(&ta));
        assert!(!TidSet::is_switched(&DiffSet::from_tidlists(&ta, &tb)));
    }

    #[test]
    fn metered_join_accounts_comparisons() {
        let (ta, tb, tc) = lists();
        let a = AdaptiveSet::with_fuel(ta.intersect(&tb), 0);
        let b = AdaptiveSet::with_fuel(ta.intersect(&tc), 0);
        let mut m = OpMeter::new();
        let j = a.join_metered(&b, &mut m);
        assert!(j.is_diffset());
        assert!(m.tid_cmp > 0, "conversion join must meter comparisons");
    }
}
